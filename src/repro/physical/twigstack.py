"""TwigStack: holistic twig join (Bruno, Koudas, Srivastava — reference [7]).

The join-based comparator of the paper's experiments (the "TS" columns
of Table 3).  TwigStack consumes one document-ordered, region-labeled
stream per query vertex — supplied by the tag-name index — and uses a
chain of stacks to encode ancestor relationships compactly.  It is I/O
and memory optimal when every twig edge is ``//``; with ``/`` edges it
may emit path solutions that do not extend to full twig matches, which
a post-phase must filter.

Implementation notes
--------------------
* ``getNext`` follows the published algorithm, with explicit handling
  of exhausted streams: a child whose whole subtree is exhausted is
  skipped, so sibling branches keep draining (solutions pairing new
  elements with already-stacked ancestors are still found).
* Instead of merging root-to-leaf path solutions combinatorially, we
  collect the *parent-child node pairs* witnessed by path solutions and
  run a bottom-up validity pass followed by a top-down reachability
  pass over those pair sets.  For tree-shaped queries this yields
  exactly the nodes participating in at least one full twig match, in
  time linear in the number of witnessed pairs — and it is immune to
  the path-merge blowup on low-selectivity queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.obs.metrics import REGISTRY
from repro.pattern.blossom import BlossomTree, BlossomVertex
from repro.xmlkit.index import TagIndex
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document, Node
from repro.xpath.evaluator import EvalContext, XPathEvaluator, boolean_value

__all__ = ["TwigStackOperator", "twig_supported"]

_INF = float("inf")

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def twig_supported(tree: BlossomTree) -> bool:
    """Can this BlossomTree run as a single holistic twig?

    Requires one pattern root, no crossing edges, and only child /
    descendant tree edges — i.e. a classic twig query.  (Mandatory-mode
    information is ignored: TwigStack treats every branch as required,
    which matches bare-path queries where all edges are mandatory.)
    """
    if len(tree.roots) != 1 or tree.crossing_edges or tree.residual_where:
        return False
    for edge in tree.tree_edges:
        if edge.axis not in ("child", "descendant"):
            return False
        if edge.mode != "f":
            return False
        if getattr(edge.child, "after_vid", None) is not None:
            return False
    return True


@dataclass
class _QNode:
    """One twig query node with its stream and stack."""

    vertex: BlossomVertex
    parent: _QNode | None
    axis: str                    # edge axis from parent ("descendant" at root)
    children: list[_QNode] = field(default_factory=list)
    stream: list[Node] = field(default_factory=list)
    pos: int = 0
    # stack holds (node, parent_stack_size_at_push)
    stack: list[tuple[Node, int]] = field(default_factory=list)

    # -- stream cursor --------------------------------------------------

    def eof(self) -> bool:
        return self.pos >= len(self.stream)

    def next_start(self) -> float:
        return self.stream[self.pos].start if not self.eof() else _INF

    def next_end(self) -> float:
        return self.stream[self.pos].end if not self.eof() else _INF

    def head(self) -> Node:
        return self.stream[self.pos]

    def advance(self) -> None:
        self.pos += 1

    def exhausted_subtree(self) -> bool:
        return self.eof() and all(c.exhausted_subtree() for c in self.children)

    def is_leaf(self) -> bool:
        return not self.children


class TwigStackOperator:
    """Evaluates one twig pattern holistically over a tag index.

    Parameters
    ----------
    tree:
        A BlossomTree accepted by :func:`twig_supported`.
    doc / index:
        The document and its tag-name index (built on demand).
    counters:
        Work counters; stream construction charges ``nodes_scanned``
        (index I/O) and predicate checks charge ``comparisons``.
    """

    def __init__(self, tree: BlossomTree, doc: Document,
                 index: TagIndex | None = None,
                 counters: ScanCounters | None = None) -> None:
        if not twig_supported(tree):
            raise ExecutionError("BlossomTree is not a single twig; "
                                 "TwigStack is not applicable")
        self.tree = tree
        self.doc = doc
        self.index = index if index is not None else TagIndex(doc)
        self.counters = counters if counters is not None else ScanCounters()
        self._evaluator = XPathEvaluator()
        self.root_q = self._build_query_tree()
        #: (parent_vid, child_vid) -> set of (parent_nid, child_nid) pairs
        self._pairs: dict[tuple[int, int], set[tuple[int, int]]] = {}
        #: vid -> nids seen in any path solution
        self._seen: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------

    def _build_query_tree(self) -> _QNode:
        root_vertex = self.tree.roots[0]
        # The #root vertex maps to the document node; its (single) child
        # becomes the twig root.  A child-axis edge from #root means the
        # twig root must be the document element (level == 1).
        edges = root_vertex.child_edges
        if len(edges) != 1:
            raise ExecutionError("TwigStack requires a single twig root")
        top_edge = edges[0]
        root_q = self._make_qnode(top_edge.child, None, top_edge.axis)
        if top_edge.axis == "child":
            root_q.stream = [n for n in root_q.stream if n.level == 1]
        return root_q

    def _make_qnode(self, vertex: BlossomVertex, parent: _QNode | None,
                    axis: str) -> _QNode:
        qnode = _QNode(vertex, parent, axis)
        qnode.stream = self._stream_for(vertex)
        for edge in vertex.child_edges:
            qnode.children.append(self._make_qnode(edge.child, qnode, edge.axis))
        return qnode

    def _stream_for(self, vertex: BlossomVertex) -> list[Node]:
        if vertex.name == "*":
            nodes = [n for n in self.doc.elements()]
        else:
            nodes = self.index.nodes(vertex.name)
        self.counters.nodes_scanned += len(nodes)
        if not vertex.value_predicates:
            return nodes
        kept: list[Node] = []
        for node in nodes:
            context = EvalContext(node)
            ok = True
            for predicate in vertex.value_predicates:
                self.counters.comparisons += 1
                if not boolean_value(self._evaluator.evaluate(predicate, context)):
                    ok = False
                    break
            if ok:
                kept.append(node)
        return kept

    # ------------------------------------------------------------------
    # The TwigStack main loop.
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Consume all streams, recording witnessed parent-child pairs."""
        root = self.root_q
        token = self.counters.cancellation
        while not root.exhausted_subtree():
            if token is not None:
                token.checkpoint()
            q = self._get_next(root)
            if q.eof():
                break  # no branch can make further progress
            head = q.head()
            if q.parent is not None:
                self._clean_stack(q.parent, head)
            if q.parent is None or q.parent.stack:
                self._clean_stack(q, head)
                parent_size = len(q.parent.stack) if q.parent is not None else 0
                q.stack.append((head, parent_size))
                self.counters.note_buffer(sum(len(x.stack) for x in self._all_qnodes()))
                if q.is_leaf():
                    self._emit_paths(q)
                    q.stack.pop()
            q.advance()

    def _all_qnodes(self) -> list[_QNode]:
        out: list[_QNode] = []
        stack = [self.root_q]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    def _get_next(self, q: _QNode) -> _QNode:
        if q.is_leaf():
            return q
        active = [c for c in q.children if not c.exhausted_subtree()]
        if not active:
            return q
        returned: list[_QNode] = []
        for child in active:
            ni = self._get_next(child)
            if ni is not child:
                return ni
            returned.append(ni)
        qmin = min(returned, key=lambda c: c.next_start())
        qmax = max(returned, key=lambda c: c.next_start())
        while q.next_end() < qmax.next_start():
            self.counters.comparisons += 1
            q.advance()
        if q.next_start() < qmin.next_start():
            return q
        return qmin

    def _clean_stack(self, q: _QNode, head: Node) -> None:
        while q.stack and q.stack[-1][0].end < head.start:
            q.stack.pop()

    # ------------------------------------------------------------------
    # Path-solution recording.
    # ------------------------------------------------------------------

    def _emit_paths(self, leaf: _QNode) -> None:
        """Record the parent-child pairs of every root-to-leaf solution
        ending at the leaf's just-pushed element.

        Child-axis edges are enforced here (parent identity); descendant
        edges accept any stacked ancestor at or below the recorded
        parent-stack watermark.
        """
        node, parent_size = leaf.stack[-1]
        self._record_chain(leaf, node, parent_size)

    def _record_chain(self, q: _QNode, node: Node, parent_watermark: int) -> None:
        self._seen.setdefault(q.vertex.vid, set()).add(node.nid)
        parent_q = q.parent
        if parent_q is None:
            return
        key = (parent_q.vertex.vid, q.vertex.vid)
        pairs = self._pairs.setdefault(key, set())
        for index in range(parent_watermark):
            ancestor, grand_watermark = parent_q.stack[index]
            self.counters.comparisons += 1
            if q.axis == "child" and ancestor is not node.parent:
                continue
            if not (ancestor.start < node.start and node.end < ancestor.end):
                continue
            if (ancestor.nid, node.nid) not in pairs:
                pairs.add((ancestor.nid, node.nid))
                self._record_chain(parent_q, ancestor, grand_watermark)

    # ------------------------------------------------------------------
    # Result extraction.
    # ------------------------------------------------------------------

    def matching_nodes(self, output: BlossomVertex) -> list[Node]:
        """Distinct nodes of ``output`` participating in a full twig match.

        Bottom-up validity (a node needs a valid witness in every child
        branch) then top-down reachability (a node needs a valid parent
        chain to the twig root); tree-shaped queries make the two passes
        exact.
        """
        self.run()
        valid = self._bottom_up_valid()
        reachable = self._top_down_reachable(valid)
        nids = reachable.get(output.vid, set())
        nodes = [self.doc.nodes[nid] for nid in sorted(nids)]
        _INVOCATIONS.inc(operator="twigstack")
        _OUTPUT.inc(len(nodes), operator="twigstack")
        return nodes

    def _bottom_up_valid(self) -> dict[int, set[int]]:
        valid: dict[int, set[int]] = {}

        def visit(q: _QNode) -> None:
            for child in q.children:
                visit(child)
            nids = set(self._seen.get(q.vertex.vid, set()))
            for child in q.children:
                key = (q.vertex.vid, child.vertex.vid)
                child_valid = valid.get(child.vertex.vid, set())
                witnesses = {p for (p, c) in self._pairs.get(key, set())
                             if c in child_valid}
                nids &= witnesses
            valid[q.vertex.vid] = nids

        visit(self.root_q)
        return valid

    def _top_down_reachable(self, valid: dict[int, set[int]]) -> dict[int, set[int]]:
        reachable: dict[int, set[int]] = {
            self.root_q.vertex.vid: set(valid.get(self.root_q.vertex.vid, set()))}

        def visit(q: _QNode) -> None:
            for child in q.children:
                key = (q.vertex.vid, child.vertex.vid)
                parents = reachable.get(q.vertex.vid, set())
                child_valid = valid.get(child.vertex.vid, set())
                reach = {c for (p, c) in self._pairs.get(key, set())
                         if p in parents and c in child_valid}
                reachable[child.vertex.vid] = reach
                visit(child)

        visit(self.root_q)
        return reachable
