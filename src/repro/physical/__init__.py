"""Physical operators: NoK matching, merged scans, structural joins,
nested loops, TwigStack (paper Section 4)."""

from repro.physical.nested_loop import (
    bounded_nested_loop_join,
    naive_nested_loop_join,
    nested_loop_pairs,
)
from repro.physical.nok import NoKMatcher, match_subtree
from repro.physical.nok_merge import merged_scan
from repro.physical.pathstack import PathStackOperator, chain_supported
from repro.physical.pipelined_join import caching_desc_join, pipelined_desc_join
from repro.physical.stack_join import stack_desc_join, stack_join_pairs
from repro.physical.streaming import StreamingNoKMatcher, stream_count
from repro.physical.structural import JoinResult, axis_test, left_projection
from repro.physical.twigstack import TwigStackOperator, twig_supported

__all__ = [
    "JoinResult",
    "NoKMatcher",
    "PathStackOperator",
    "TwigStackOperator",
    "axis_test",
    "bounded_nested_loop_join",
    "caching_desc_join",
    "chain_supported",
    "left_projection",
    "match_subtree",
    "merged_scan",
    "naive_nested_loop_join",
    "nested_loop_pairs",
    "pipelined_desc_join",
    "stack_desc_join",
    "stack_join_pairs",
    "StreamingNoKMatcher",
    "stream_count",
    "twig_supported",
]
