"""NoK pattern-tree matching (paper Algorithm 2 / Section 4.1).

The matcher evaluates one NoK pattern tree — only local axes — against
a document with a single sequential scan, producing a sequence of
NestedLists ordered by the document order of their root matches.  That
emission order is what Theorem 1's order-preservation proof rests on,
and the pipelined join relies on it.

Differences from the pseudo-code, for exactness:

* Algorithm 2 interleaves result construction with frontier deletion;
  we construct the child groups with a recursive depth-first match that
  implements the declared Definition-1 semantics directly (mandatory
  children need at least one match, optional children may be empty, all
  matches of a child are grouped).  The produced physical structure is
  the Figure-6 layout (see :mod:`repro.algebra.nested_list`).
* ``following-sibling`` edges are handled as the frontier mechanism
  does: a sibling-constrained child only becomes eligible after its
  predecessor has matched among the same parent's children.
* Value constraints evaluate through the full XPath evaluator with the
  candidate element as context node, so constraints like
  ``[. = "Smith"]``, ``[@year = "2000"]`` or ``[not(author)]`` behave
  identically in every engine in this repository.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.pattern.blossom import MODE_MANDATORY, BlossomVertex
from repro.pattern.decompose import NoKTree
from repro.xmlkit.storage import ScanCounters, SequentialScan
from repro.xmlkit.tree import DOCUMENT, ELEMENT, Document, Node
from repro.xpath.evaluator import EvalContext, XPathEvaluator, boolean_value
from repro.algebra.nested_list import NLEntry

__all__ = ["NoKMatcher", "match_subtree"]


class NoKMatcher:
    """Evaluates one NoK pattern tree over one document.

    Parameters
    ----------
    nok:
        The NoK pattern tree (from :func:`repro.pattern.decompose.decompose`).
    doc:
        The input document.
    counters:
        Shared work counters; the driving sequential scan reports its
        I/O here and every predicate evaluation counts a comparison.
    start_nid, stop_nid:
        Optional scan range (pre-order ranks).  The bounded nested-loop
        join re-runs matchers over subtree ranges through these.
    """

    def __init__(self, nok: NoKTree, doc: Document,
                 counters: ScanCounters | None = None,
                 start_nid: int = 0, stop_nid: int | None = None) -> None:
        self.nok = nok
        self.doc = doc
        self.counters = counters if counters is not None else ScanCounters()
        self.start_nid = start_nid
        self.stop_nid = stop_nid
        self._evaluator = XPathEvaluator()

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def matches(self) -> list[NLEntry]:
        """All matches, in document order of their root nodes."""
        return list(self.iter_matches())

    def iter_matches(self) -> Iterator[NLEntry]:
        """Pipelined form: the GetNext interface of Section 4.2 is
        ``next()`` on this generator."""
        root = self.nok.root
        if root.name == "#root":
            # Pattern-tree roots match the document node itself.
            entry = match_subtree(root, self.doc.document_node,
                                  self.counters, self._evaluator)
            if entry is not None:
                yield entry
            return
        scan = SequentialScan(self.doc, self.counters,
                              self.start_nid, self.stop_nid)
        for node in scan:
            if not root.matches_tag(node.tag):
                continue
            entry = match_subtree(root, node, self.counters, self._evaluator)
            if entry is not None:
                yield entry


def match_subtree(vertex: BlossomVertex, node: Node,
                  counters: ScanCounters,
                  evaluator: XPathEvaluator | None = None) -> NLEntry | None:
    """Match a NoK pattern subtree rooted at ``vertex`` against ``node``.

    The caller must have verified the tag-name test (scan-level
    filtering); this function checks value constraints and children.
    Returns the NestedList entry, or ``None`` when a mandatory child has
    no match or a value constraint fails.
    """
    if evaluator is None:
        evaluator = XPathEvaluator()

    if not _value_constraints_hold(vertex, node, counters, evaluator):
        return None

    entry = NLEntry(vertex, node, len(vertex.child_edges))
    local = [(index, edge) for index, edge in enumerate(vertex.child_edges)
             if not getattr(edge, "cut", False)]
    if not local:
        return entry

    # matched_vids drives both the mandatory check and the
    # following-sibling eligibility rule (a child with an ``after_vid``
    # constraint joins the frontier only once its predecessor matched).
    matched_vids: set[int] = set()
    for child_node in node.children:
        if child_node.kind != ELEMENT:
            continue
        for index, edge in local:
            child_vertex = edge.child
            after = getattr(child_vertex, "after_vid", None)
            if after is not None and after not in matched_vids:
                continue
            if not child_vertex.matches_tag(child_node.tag):
                continue
            counters.comparisons += 1
            sub = match_subtree(child_vertex, child_node, counters, evaluator)
            if sub is None:
                continue
            matched_vids.add(child_vertex.vid)
            if child_vertex.returning:
                entry.groups[index].append(sub)
            # Non-kept (purely existential) children record only the
            # fact of the match; their subtrees are discarded.

    for index, edge in local:
        if edge.mode == MODE_MANDATORY and edge.child.vid not in matched_vids:
            return None
    return entry


def _value_constraints_hold(vertex: BlossomVertex, node: Node,
                            counters: ScanCounters,
                            evaluator: XPathEvaluator) -> bool:
    if not vertex.value_predicates:
        return True
    if node.kind == DOCUMENT:
        return True
    context = EvalContext(node)
    for predicate in vertex.value_predicates:
        counters.comparisons += 1
        if not boolean_value(evaluator.evaluate(predicate, context)):
            return False
    return True
