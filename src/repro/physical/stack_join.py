"""Stack-based binary structural join (Al-Khalifa et al., reference [2]).

The general ancestor-descendant merge join over two document-ordered
region-labeled inputs.  Unlike the strict pipelined merge it is correct
when *both* sides nest (recursive documents), at the cost of a stack
whose depth is bounded by the input tree depth — the memory behaviour
Section 2.1 attributes to the advanced join-based algorithms.

The engine's optimizer picks this join for ``//`` inter edges on
recursive documents, where the pipelined merge is unsound and nested
loops are too slow.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.metrics import REGISTRY
from repro.pattern.decompose import InterEdge
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Node
from repro.algebra.nested_list import NLEntry
from repro.physical.structural import JoinResult

__all__ = ["stack_desc_join", "stack_join_pairs"]

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def stack_desc_join(left_nodes: Iterable[Node],
                    right_entries: Iterable[NLEntry],
                    edge: InterEdge,
                    counters: ScanCounters | None = None) -> JoinResult:
    """Ancestor-descendant stack merge producing join adjacency.

    Both inputs must be document-ordered; nesting is allowed on both
    sides.  Equivalent output to
    :func:`~repro.physical.pipelined_join.caching_desc_join` — the two
    differ in provenance (this is the classic binary structural join,
    that is the paper's pipelined GetNext with caching bolted on) and
    are cross-checked in the tests.
    """
    if counters is None:
        counters = ScanCounters()
    result = JoinResult(edge)
    pairs = stack_join_pairs(
        list(left_nodes),
        [(e.node, e) for e in right_entries],
        counters)
    for ancestor, (_, entry) in pairs:
        result.add(ancestor, entry)
    _INVOCATIONS.inc(operator="stack_join")
    _OUTPUT.inc(result.pair_count(), operator="stack_join")
    return result


def stack_join_pairs(ancestors: list[Node],
                     descendants: list[tuple[Node, object]],
                     counters: ScanCounters | None = None
                     ) -> list[tuple[Node, tuple[Node, object]]]:
    """Core stack merge over (node, payload) descendant items.

    Returns (ancestor, descendant-item) pairs ordered by descendant,
    then ancestor depth.  ``counters.peak_buffered`` records the maximum
    stack depth.
    """
    if counters is None:
        counters = ScanCounters()
    out: list[tuple[Node, tuple[Node, object]]] = []
    stack: list[Node] = []
    ai = 0
    n_anc = len(ancestors)
    token = counters.cancellation

    for item in descendants:
        if token is not None:
            token.checkpoint()
        node = item[0]
        assert node is not None
        # Push every ancestor that starts before this descendant,
        # popping closed regions first.
        while ai < n_anc and ancestors[ai].start < node.start:
            candidate = ancestors[ai]
            ai += 1
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            stack.append(candidate)
            counters.note_buffer(len(stack))
        while stack and stack[-1].end < node.start:
            stack.pop()
        for ancestor in stack:
            counters.comparisons += 1
            if ancestor.start < node.start and node.end < ancestor.end:
                out.append((ancestor, item))
    return out
