"""Pipelined (merge-style) ``//``-join — Section 4.2's GetNext algorithm.

Both inputs arrive in document order: the left side by Theorem 1
(projection over a NoK sequential scan), the right side because NoK
matches are emitted in document order of their roots.  The join then
runs as a single merge pass, never materializing either input — the
"pipelined NoK" technique whose I/O savings Section 4.2 argues for.

Two variants:

* :func:`pipelined_desc_join` — the strict merge of the paper's
  GetNext pseudo-code, correct when left nodes do not nest (one tag
  cannot contain itself: non-recursive documents, Theorem 2).  It keeps
  exactly one candidate ancestor, i.e. O(1) buffering.
* :func:`caching_desc_join` — the "modification with caching
  capability" the paper sketches for recursive inputs: a stack of open
  ancestors whose peak depth equals the document's recursion degree.
  The peak is recorded in ``counters.peak_buffered``, which is what the
  recursion-memory ablation measures (reference [3]'s bound).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ExecutionError
from repro.obs.metrics import REGISTRY
from repro.pattern.decompose import InterEdge
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Node
from repro.algebra.nested_list import NLEntry
from repro.physical.structural import JoinResult

__all__ = ["pipelined_desc_join", "caching_desc_join"]

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def pipelined_desc_join(left_nodes: Iterable[Node],
                        right_entries: Iterable[NLEntry],
                        edge: InterEdge,
                        counters: ScanCounters | None = None) -> JoinResult:
    """Strict merge join for a ``//`` inter edge on non-nesting input.

    ``left_nodes`` must be document-ordered and non-nesting (the
    optimizer guarantees this by only choosing the pipelined join on
    non-recursive documents); ``right_entries`` must be document-ordered
    by root.  Raises :class:`~repro.errors.ExecutionError` if nesting is
    detected, because silently producing partial output here is exactly
    the Example-5 trap the paper warns about.
    """
    if counters is None:
        counters = ScanCounters()
    result = JoinResult(edge)
    left_iter = iter(left_nodes)
    current: Node | None = next(left_iter, None)
    token = counters.cancellation

    for entry in right_entries:
        if token is not None:
            token.checkpoint()
        node = entry.node
        assert node is not None
        # Advance the left cursor past ancestors that end before the
        # right node starts (the m << n branch of the GetNext code).
        while current is not None and current.end < node.start:
            nxt = next(left_iter, None)
            if nxt is not None and nxt.start < current.end:
                raise ExecutionError(
                    "pipelined //-join received nesting left input; use the "
                    "caching variant or a nested-loop join on recursive data")
            current = nxt
        if current is None:
            break
        counters.comparisons += 1
        if current.start < node.start and node.end < current.end:
            result.add(current, entry)
        # else: node precedes the current candidate; skip it (the
        # n << m branch — advance the right side).
    counters.note_buffer(1)
    _INVOCATIONS.inc(operator="pipelined_join")
    _OUTPUT.inc(result.pair_count(), operator="pipelined_join")
    return result


def caching_desc_join(left_nodes: Iterable[Node],
                      right_entries: Iterable[NLEntry],
                      edge: InterEdge,
                      counters: ScanCounters | None = None) -> JoinResult:
    """Merge join with an ancestor stack — correct on recursive input.

    The stack holds every left node whose region is still open at the
    current right position, so each right entry pairs with *all* of its
    stacked ancestors.  Peak stack depth (recorded in
    ``counters.peak_buffered``) is bounded by the recursion degree of
    the left tag — the memory requirement the paper trades off against
    nested-loop I/O in Section 4.2.
    """
    if counters is None:
        counters = ScanCounters()
    result = JoinResult(edge)
    left_iter = iter(left_nodes)
    pending: Node | None = next(left_iter, None)
    stack: list[Node] = []
    token = counters.cancellation

    for entry in right_entries:
        if token is not None:
            token.checkpoint()
        node = entry.node
        assert node is not None
        # Open every left node that starts before this right node.
        while pending is not None and pending.start < node.start:
            while stack and stack[-1].end < pending.start:
                stack.pop()
            stack.append(pending)
            counters.note_buffer(len(stack))
            pending = next(left_iter, None)
        # Close finished ancestors.
        while stack and stack[-1].end < node.start:
            stack.pop()
        for ancestor in stack:
            counters.comparisons += 1
            if ancestor.start < node.start and node.end < ancestor.end:
                result.add(ancestor, entry)
    _INVOCATIONS.inc(operator="caching_join")
    _OUTPUT.inc(result.pair_count(), operator="caching_join")
    return result
