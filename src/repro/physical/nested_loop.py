"""Nested-loop joins (paper Section 4.3).

For joins that are not order-preserving (``<<``, ``following``,
``isnot``, value joins) or when merge inputs cannot be trusted
(recursive documents), the paper falls back to nested loops:

* :func:`bounded_nested_loop_join` (BNLJ) — the paper's optimization
  for ``//`` edges: the outer side piggybacks the region ``(p1, p2)``
  of each ancestor match, and the inner NoK re-matches only within that
  subtree range instead of the whole document.
* :func:`naive_nested_loop_join` — the strawman the BNLJ ablation
  compares against: one full document scan of the inner NoK per outer
  node.
* :func:`nested_loop_pairs` — the generic all-pairs join used for
  ``<<``-style and value-based relationships (a Cartesian product with
  a predicate, as Section 4.3 concedes is unavoidable).

Both structural variants re-discover the inner matches by *scanning*,
which is what makes NL "require too many scans of the input" and DNF on
large recursive data in Table 3 — the scans charge
``counters.nodes_scanned`` and therefore burn the work budget.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.obs.metrics import REGISTRY
from repro.pattern.decompose import InterEdge, NoKTree
from repro.physical.nok import NoKMatcher
from repro.physical.structural import JoinResult, axis_test
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document, Node
from repro.algebra.nested_list import NLEntry

__all__ = [
    "bounded_nested_loop_join",
    "naive_nested_loop_join",
    "nested_loop_pairs",
]

L = TypeVar("L")
R = TypeVar("R")

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def bounded_nested_loop_join(left_nodes: Iterable[Node], inner_nok: NoKTree,
                             doc: Document, edge: InterEdge,
                             counters: ScanCounters | None = None,
                             canonical: dict[int, NLEntry] | None = None
                             ) -> JoinResult:
    """BNLJ: per outer node, re-match the inner NoK within its subtree.

    The outer NoK "piggybacks the range (p1, p2)" — here the pre-order
    rank range of the subtree — so the inner scan touches exactly the
    nodes below the outer match.  On bushy, shallow data the ranges are
    small and BNLJ is cheap; on deep recursive data ranges overlap
    heavily and the repeated scanning shows up directly in
    ``nodes_scanned``.

    ``canonical`` reconciles the rediscovered matches with the
    executor's already-reduced right-side entries (keyed by root nid):
    a rematch whose root is absent there was eliminated by a deeper
    mandatory join and must not resurface, and present ones must map to
    the *filtered* entry so downstream navigation sees reduced groups.
    """
    if counters is None:
        counters = ScanCounters()
    result = JoinResult(edge)
    token = counters.cancellation
    for outer in left_nodes:
        if token is not None:
            token.checkpoint()
        start = outer.nid + 1
        stop = outer.nid + outer.subtree_size()
        matcher = NoKMatcher(inner_nok, doc, counters, start_nid=start, stop_nid=stop)
        for entry in matcher.iter_matches():
            entry = _reconcile(entry, canonical)
            if entry is not None:
                result.add(outer, entry)
    _INVOCATIONS.inc(operator="bnlj")
    _OUTPUT.inc(result.pair_count(), operator="bnlj")
    return result


def naive_nested_loop_join(left_nodes: Iterable[Node], inner_nok: NoKTree,
                           doc: Document, edge: InterEdge,
                           counters: ScanCounters | None = None,
                           canonical: dict[int, NLEntry] | None = None
                           ) -> JoinResult:
    """Unbounded nested loop: full inner scan per outer node.

    The ablation baseline for BNLJ's range optimization and the
    harness's "NL" system.  See :func:`bounded_nested_loop_join` for
    the ``canonical`` reconciliation contract.
    """
    if counters is None:
        counters = ScanCounters()
    result = JoinResult(edge)
    token = counters.cancellation
    for outer in left_nodes:
        if token is not None:
            token.checkpoint()
        matcher = NoKMatcher(inner_nok, doc, counters)
        for entry in matcher.iter_matches():
            node = entry.node
            assert node is not None
            counters.comparisons += 1
            if not axis_test(edge.axis, outer, node):
                continue
            reconciled = _reconcile(entry, canonical)
            if reconciled is not None:
                result.add(outer, reconciled)
    _INVOCATIONS.inc(operator="nl")
    _OUTPUT.inc(result.pair_count(), operator="nl")
    return result


def _reconcile(entry: NLEntry,
               canonical: dict[int, NLEntry] | None) -> NLEntry | None:
    """Map a rediscovered match onto the canonical (reduced) entry."""
    if canonical is None:
        return entry
    assert entry.node is not None
    return canonical.get(entry.node.nid)


def nested_loop_pairs(left_items: Iterable[L], right_items: Iterable[R],
                      predicate: Callable[[L, R], bool],
                      counters: ScanCounters | None = None) -> list[tuple[L, R]]:
    """All-pairs join with a predicate (``<<``, value and mixed joins).

    Destroys document order on its output (Example 5), so nothing
    order-sensitive may be composed above it — the executor only feeds
    its output into order-insensitive tuple filtering.
    """
    if counters is None:
        counters = ScanCounters()
    right_list = list(right_items)
    out: list[tuple[L, R]] = []
    token = counters.cancellation
    for litem in left_items:
        if token is not None:
            token.checkpoint()
        for ritem in right_list:
            counters.comparisons += 1
            if predicate(litem, ritem):
                out.append((litem, ritem))
    _INVOCATIONS.inc(operator="nl_pairs")
    _OUTPUT.inc(len(out), operator="nl_pairs")
    return out
