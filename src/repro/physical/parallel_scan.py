"""Partition-parallel merged NoK evaluation.

The parallel twin of :func:`~repro.physical.nok_merge.merged_scan`:
the document is cut into Dewey-contiguous subtree partitions
(:mod:`repro.xmlkit.partition`), each partition is scanned by an
executor task running the same dispatch loop as the serial merged scan,
and the per-NoK match lists are concatenated in partition order.

Correctness rests on Theorem 1's order argument: the serial scan emits
matches in document order, each partition is a contiguous slice of that
order, and the partitions tile the arena — so concatenation in
partition order *is* the serial output, bit for bit.  The differential
test suite asserts exactly that, match list by match list.

Deviations from the serial operator, by design:

* ``counters.scans_started`` grows by one per partition (each partition
  opens its own :class:`~repro.xmlkit.storage.SequentialScan`);
  ``nodes_scanned`` still counts every arena slot exactly once.
* The work ``budget`` is an approximate **global** cap: partitions fold
  their scanned count into one shared cell every
  :data:`~repro.physical.parallel_scan._BUDGET_STRIDE` nodes and abort
  once the total exceeds the budget.  Keeping the synchronized counter
  off the hottest loop means the cap can overshoot by at most
  ``partitions × stride`` nodes — bounded, unlike the old per-partition
  cap, which could overshoot by ``partitions × budget``.
* Pattern-tree-root (``#root``) NoKs are matched once on the document
  node by the coordinator, never inside a partition task.  Plans that
  reach this operator through the ``parallel`` strategy are refused by
  analyzer rule PL004 when they contain ``#root``-rooted NoKs; calling
  the operator directly with them is still correct.

Cancellation stays cooperative: the shared
:class:`~repro.xmlkit.storage.CancellationToken` is checkpointed from
every partition's scan loop, so a deadline or cancel is observed within
one stride in every task.

Two execution backends share this contract: ``backend="threads"`` runs
the partition tasks on a :class:`~concurrent.futures.ThreadPoolExecutor`
over the live object tree, while ``backend="processes"`` delegates to
:mod:`repro.physical.process_scan`, which replays the same dispatch
loop in worker processes over an mmap-shared flat arena
(:mod:`repro.xmlkit.arena`).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor, ThreadPoolExecutor, wait

from repro.errors import DNFError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Span, Tracer
from repro.pattern.decompose import NoKTree
from repro.physical.nok import match_subtree
from repro.physical.nok_merge import merged_scan
from repro.xmlkit.partition import Partition, partition_document
from repro.xmlkit.stats import DocumentStats
from repro.xmlkit.storage import ScanCounters, SequentialScan
from repro.xmlkit.tree import Document
from repro.xpath.evaluator import XPathEvaluator
from repro.algebra.nested_list import NLEntry

__all__ = ["parallel_merged_scan", "shared_scan_executor"]

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")
_PARTITION_SCANS = REGISTRY.counter(
    "repro_partition_scans_total",
    "Partition scan tasks executed by the parallel merged scan")
_PARTITION_FALLBACKS = REGISTRY.counter(
    "repro_partition_fallbacks_total",
    "Parallel scan requests that collapsed to a single-partition "
    "serial scan")

#: Nodes a partition scans between folds into the shared budget cell.
_BUDGET_STRIDE = 256

_shared_lock = threading.Lock()
_shared_executor: ThreadPoolExecutor | None = None


def shared_scan_executor() -> ThreadPoolExecutor:
    """The process-wide scan pool, created lazily on first parallel scan.

    Serving stacks (``QueryService``) pass their own pool instead, so
    partition tasks ride the same workers as the queries themselves.
    """
    global _shared_executor
    if _shared_executor is None:
        with _shared_lock:
            if _shared_executor is None:
                _shared_executor = ThreadPoolExecutor(
                    max_workers=min(8, os.cpu_count() or 4),
                    thread_name_prefix="repro-scan")
    return _shared_executor


def parallel_merged_scan(noks: list[NoKTree], doc: Document,
                         counters: ScanCounters | None = None,
                         per_nok: dict[int, ScanCounters] | None = None,
                         *,
                         parallelism: int = 2,
                         stats: DocumentStats | None = None,
                         partitions: list[Partition] | None = None,
                         executor: Executor | None = None,
                         backend: str = "threads",
                         process_backend: object | None = None,
                         tracer: Tracer | None = None,
                         ) -> dict[int, list[NLEntry]]:
    """Evaluate several NoK pattern trees over partition-parallel scans.

    Same contract as :func:`~repro.physical.nok_merge.merged_scan`
    (per-NoK match lists in document order; optional ``per_nok`` work
    attribution folded back into the shared ``counters``), evaluated as
    one scan task per partition on ``executor`` (``backend="threads"``)
    or on a :class:`~repro.physical.process_scan.ProcessScanBackend`
    worker pool over the mmap-shared arena (``backend="processes"``).

    ``partitions`` overrides the stats-driven partitioning (tests use
    this to force fine-grained cuts on small documents); with a single
    partition the call degenerates to the serial merged scan.
    """
    if counters is None:
        counters = ScanCounters()
    if partitions is None:
        partitions = partition_document(doc, parallelism, stats=stats)
    if len(partitions) <= 1:
        _PARTITION_FALLBACKS.inc()
        return merged_scan(noks, doc, counters, per_nok)

    results: dict[int, list[NLEntry]] = {nok.nok_id: [] for nok in noks}

    def counters_for(nok: NoKTree) -> ScanCounters:
        if per_nok is None:
            return counters
        return per_nok.setdefault(nok.nok_id, ScanCounters())

    # #root NoKs match the document node directly, exactly once, in the
    # coordinator — they are independent of the element scan.
    evaluator = XPathEvaluator()
    scannable: list[NoKTree] = []
    for nok in noks:
        if nok.root.name == "#root":
            entry = match_subtree(nok.root, doc.document_node,
                                  counters_for(nok), evaluator)
            if entry is not None:
                results[nok.nok_id].append(entry)
        else:
            scannable.append(nok)

    if not scannable:
        _INVOCATIONS.inc(operator="parallel_scan")
        _OUTPUT.inc(sum(len(v) for v in results.values()),
                    operator="parallel_scan")
        return results

    if backend == "processes":
        from repro.physical import process_scan

        pool_backend = (process_backend if process_backend is not None
                        else process_scan.shared_process_backend())
        assert isinstance(pool_backend, process_scan.ProcessScanBackend)
        results = process_scan.run_process_scan(
            pool_backend, doc, scannable, partitions, counters, per_nok,
            results, tracer)
        _INVOCATIONS.inc(operator="parallel_scan")
        _OUTPUT.inc(sum(len(v) for v in results.values()),
                    operator="parallel_scan")
        return results

    # Shared read-only dispatch table (same as the serial merged scan).
    by_tag: dict[str, list[NoKTree]] = {}
    wildcard: list[NoKTree] = []
    for nok in scannable:
        if nok.root.name == "*":
            wildcard.append(nok)
        else:
            by_tag.setdefault(nok.root.name, []).append(nok)

    # Per-partition private state, indexed by partition order so the
    # coordinator can merge deterministically even after an abort.
    n_parts = len(partitions)
    part_results: list[dict[int, list[NLEntry]] | None] = [None] * n_parts
    part_counters: list[ScanCounters | None] = [None] * n_parts
    part_per_nok: list[dict[int, ScanCounters] | None] = [None] * n_parts
    part_times: list[tuple[int, int]] = [(0, 0)] * n_parts

    # The work budget is enforced globally: partitions run with no local
    # budget and instead fold their scanned count into this shared cell
    # every _BUDGET_STRIDE nodes, aborting once the total is over.
    budget = counters.budget
    budget_lock = threading.Lock()
    budget_cell = [counters.nodes_scanned]

    def run_partition(part: Partition) -> None:
        local_counters = ScanCounters(cancellation=counters.cancellation)
        local_per_nok: dict[int, ScanCounters] | None = (
            {} if per_nok is not None else None)
        local: dict[int, list[NLEntry]] = {
            nok.nok_id: [] for nok in scannable}
        part_results[part.index] = local
        part_counters[part.index] = local_counters
        part_per_nok[part.index] = local_per_nok
        local_eval = XPathEvaluator()

        def local_counters_for(nok: NoKTree) -> ScanCounters:
            if local_per_nok is None:
                return local_counters
            return local_per_nok.setdefault(nok.nok_id, ScanCounters())

        flushed = 0

        def flush_budget(enforce: bool) -> None:
            nonlocal flushed
            delta = local_counters.nodes_scanned - flushed
            if not delta:
                return
            flushed = local_counters.nodes_scanned
            with budget_lock:
                budget_cell[0] += delta
                total = budget_cell[0]
            if enforce and budget is not None and total > budget:
                local_counters.trip_budget()
                raise DNFError("parallel scan exceeded the global "
                               "work budget", budget=budget)

        started = time.perf_counter_ns()
        try:
            scan = SequentialScan(doc, local_counters,
                                  part.start_nid, part.stop_nid)
            for node in scan:
                if (budget is not None
                        and local_counters.nodes_scanned - flushed
                        >= _BUDGET_STRIDE):
                    flush_budget(True)
                named = by_tag.get(node.tag)
                candidates = (named + wildcard if named and wildcard
                              else named or wildcard)
                if not candidates:
                    continue
                for nok in candidates:
                    entry = match_subtree(nok.root, node,
                                          local_counters_for(nok),
                                          local_eval)
                    if entry is not None:
                        local[nok.nok_id].append(entry)
            if budget is not None:
                flush_budget(True)
        finally:
            flush_budget(False)
            part_times[part.index] = (started, time.perf_counter_ns())
            _PARTITION_SCANS.inc()

    pool = executor if executor is not None else shared_scan_executor()
    futures = [pool.submit(run_partition, part) for part in partitions]
    wait(futures)

    try:
        # Surface the first failure in partition order (deterministic
        # regardless of thread scheduling); DNF/timeout/cancel all
        # propagate exactly as they do from the serial scan.
        for future in futures:
            exc = future.exception()
            if exc is not None:
                raise exc
    finally:
        # Fold every partition's work into the shared totals — aborted
        # partitions included, mirroring the serial operator's
        # ``finally`` merge of private per-NoK counters.
        for index in range(n_parts):
            local_counters = part_counters[index]
            if local_counters is None:
                continue
            local_per_nok = part_per_nok[index]
            if local_per_nok is not None:
                for nok_id, private in local_per_nok.items():
                    assert per_nok is not None
                    per_nok.setdefault(nok_id, ScanCounters()).merge(private)
                    local_counters.merge(private)
            counters.merge(local_counters)
        _emit_partition_spans(tracer, partitions, part_times, part_results)

    for index in range(n_parts):
        local = part_results[index]
        if local is None:
            continue
        for nok_id, entries in local.items():
            results[nok_id].extend(entries)

    _INVOCATIONS.inc(operator="parallel_scan")
    _OUTPUT.inc(sum(len(v) for v in results.values()),
                operator="parallel_scan")
    return results


def _emit_partition_spans(tracer: Tracer | None,
                          partitions: list[Partition],
                          part_times: list[tuple[int, int]],
                          part_results: list[dict[int, list[NLEntry]] | None],
                          ) -> None:
    """Attach one child span per partition to the open tracer span.

    The tracer's stack is owned by the coordinating thread, so worker
    tasks only record raw timestamps; the coordinator materialises the
    spans after the barrier, preserving measured wall time.
    """
    if tracer is None:
        return
    parent = tracer.current()
    if parent is None:
        return
    for part in partitions:
        started, ended = part_times[part.index]
        local = part_results[part.index]
        span = Span("partition-scan", {
            "partition": part.index,
            "start_nid": part.start_nid,
            "stop_nid": part.stop_nid,
            "matches": (sum(len(v) for v in local.values())
                        if local is not None else 0),
        })
        span.start_ns = started
        span.end_ns = ended
        parent.children.append(span)
