"""Shared machinery for structural joins over NestedList streams.

Every structural join in this repository — pipelined merge, stack-based
merge, bounded and naive nested loops, TwigStack — produces the same
logical thing: for one inter-NoK edge ``u --axis--> v``, the set of
(ancestor-node, descendant-match) pairs.  :class:`JoinResult` is that
set in adjacency-list form, keyed by the ancestor node's pre-order rank
so the executor's tuple enumeration can look up "which matches of the
child NoK hang under this particular u node" in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.pattern.decompose import InterEdge
from repro.xmlkit.tree import Node
from repro.algebra.nested_list import NLEntry, project

__all__ = ["JoinResult", "left_projection", "axis_test"]


@dataclass
class JoinResult:
    """Adjacency form of one structural join's output.

    ``adjacency[u_nid]`` lists the right-side NestedList entries whose
    root node stands in the edge's axis relationship to the left node
    with pre-order rank ``u_nid``.  Nodes with no partners simply do not
    appear — mandatory-edge filtering reads that absence.
    """

    edge: InterEdge
    adjacency: dict[int, list[NLEntry]] = field(default_factory=dict)

    def partners(self, u: Node) -> list[NLEntry]:
        return self.adjacency.get(u.nid, [])

    def has_partner(self, u: Node) -> bool:
        return u.nid in self.adjacency

    def add(self, u: Node, entry: NLEntry) -> None:
        self.adjacency.setdefault(u.nid, []).append(entry)

    def pair_count(self) -> int:
        return sum(len(v) for v in self.adjacency.values())


def left_projection(left_entries: Iterable[NLEntry], edge: InterEdge) -> list[Node]:
    """Document-ordered distinct u-nodes projected from the left stream.

    Theorem 1 makes each per-entry projection document-ordered; entries
    arrive in document order of their roots, and child-axis chains give
    each u node a unique root, so a single merge-free concatenation plus
    a linear dedup pass yields the global document order.  (On recursive
    documents entry subtrees can interleave, so we sort defensively —
    the cost is counted against the operators that need it.)
    """
    nodes: list[Node] = []
    for entry in left_entries:
        nodes.extend(project(entry, edge.parent))
    nodes.sort(key=lambda n: n.nid)
    out: list[Node] = []
    last = -1
    for node in nodes:
        if node.nid != last:
            out.append(node)
            last = node.nid
    return out


def axis_test(axis: str, up: Node, down: Node) -> bool:
    """Does ``down`` stand in ``axis`` relationship below ``up``?

    ``up`` may be the document node (vacuously an ancestor of every
    element), which arises for ``doc(...)//x`` inter edges.
    """
    if axis == "descendant":
        return up.start < down.start and down.end < up.end
    if axis == "descendant-or-self":
        return up is down or (up.start < down.start and down.end < up.end)
    if axis == "child":
        return down.parent is up
    if axis == "following":
        return down.start > up.end
    if axis == "preceding":
        return down.end < up.start
    raise ValueError(f"no structural test for axis {axis!r}")
