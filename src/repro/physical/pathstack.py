"""PathStack: holistic join for *chain* queries (Bruno et al., reference [7]).

TwigStack's simpler sibling: when the query is a pure root-to-leaf
chain (no branching), PathStack merges the per-tag streams with one
chained stack per query node and emits every chain match in a single
pass over the streams — no path-solution merging phase at all.

The engine's cost model does not need PathStack (TwigStack subsumes
it), but the paper's reference [7] evaluates both, and the chain-query
half of the workload (the "c" categories of Table 2) is exactly its
territory; the comparison bench shows PathStack doing the same work
with less machinery on chains.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.obs.metrics import REGISTRY
from repro.pattern.blossom import BlossomTree, BlossomVertex
from repro.xmlkit.index import TagIndex
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document, Node
from repro.xpath.evaluator import EvalContext, XPathEvaluator, boolean_value
from repro.physical.twigstack import twig_supported

__all__ = ["PathStackOperator", "chain_supported"]

_INF = float("inf")

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def chain_supported(tree: BlossomTree) -> bool:
    """True iff the BlossomTree is a single non-branching, all-``//`` chain.

    Child-axis steps are excluded: classic PathStack assumes
    ancestor-descendant edges, and chains with ``/`` steps run through
    TwigStack's generic machinery instead.
    """
    if not twig_supported(tree):
        return False
    vertex = tree.roots[0]
    while vertex.child_edges:
        if len(vertex.child_edges) > 1:
            return False
        if vertex.child_edges[0].axis != "descendant":
            return False
        vertex = vertex.child_edges[0].child
    return True


class PathStackOperator:
    """Single-pass chain matching over tag streams.

    Stacks are chained: each pushed element records the current top of
    its parent stack, so a leaf element's matches are exactly the
    chains through the recorded watermarks.  For node extraction we
    track, per stack entry, whether a full chain through it has been
    witnessed.
    """

    def __init__(self, tree: BlossomTree, doc: Document,
                 index: TagIndex | None = None,
                 counters: ScanCounters | None = None) -> None:
        if not chain_supported(tree):
            raise ExecutionError("PathStack requires a single //-chain query")
        self.tree = tree
        self.doc = doc
        self.index = index if index is not None else TagIndex(doc)
        self.counters = counters if counters is not None else ScanCounters()
        self._evaluator = XPathEvaluator()

        # The chain of query vertices, root-of-chain first.
        self.chain: list[BlossomVertex] = []
        self.axes: list[str] = []
        vertex = tree.roots[0].child_edges[0].child
        self.axes.append(tree.roots[0].child_edges[0].axis)
        while True:
            self.chain.append(vertex)
            if not vertex.child_edges:
                break
            self.axes.append(vertex.child_edges[0].axis)
            vertex = vertex.child_edges[0].child

        self.streams = [self._stream_for(v) for v in self.chain]

    def _stream_for(self, vertex: BlossomVertex) -> list[Node]:
        nodes = (list(self.doc.elements()) if vertex.name == "*"
                 else self.index.nodes(vertex.name))
        self.counters.nodes_scanned += len(nodes)
        if not vertex.value_predicates:
            return nodes
        kept = []
        for node in nodes:
            context = EvalContext(node)
            ok = True
            for predicate in vertex.value_predicates:
                self.counters.comparisons += 1
                if not boolean_value(self._evaluator.evaluate(predicate, context)):
                    ok = False
                    break
            if ok:
                kept.append(node)
        return kept

    # ------------------------------------------------------------------
    # The merge.
    # ------------------------------------------------------------------

    def matching_nodes(self, output: BlossomVertex) -> list[Node]:
        """Distinct nodes of ``output`` on at least one full chain match."""
        try:
            level = self.chain.index(output)
        except ValueError:
            raise ExecutionError("output vertex is not on the chain") from None

        k = len(self.chain)
        positions = [0] * k
        # stacks[i]: list of [node, parent_watermark, witnessed]
        stacks: list[list[list]] = [[] for _ in range(k)]
        results: set[int] = set()

        def next_start(i: int) -> float:
            if positions[i] >= len(self.streams[i]):
                return _INF
            return self.streams[i][positions[i]].start

        def clean(i: int, start: int) -> None:
            while stacks[i] and stacks[i][-1][0].end < start:
                stacks[i].pop()

        def mark_witnessed(leaf_index: int, entry: list) -> None:
            """Propagate 'on a full chain' up through the watermarks."""
            index = leaf_index
            frontier = [entry]
            while frontier and index >= 0:
                next_frontier = []
                for item in frontier:
                    if item[2]:
                        continue
                    item[2] = True
                    if index > 0:
                        next_frontier.extend(stacks[index - 1][:item[1]])
                frontier = next_frontier
                index -= 1

        token = self.counters.cancellation
        while True:
            if token is not None:
                token.checkpoint()
            candidates = [i for i in range(k) if next_start(i) < _INF]
            if not candidates:
                break
            i = min(candidates, key=next_start)
            node = self.streams[i][positions[i]]
            positions[i] += 1
            self.counters.comparisons += 1
            for j in range(k):
                clean(j, node.start)
            if i == 0:
                entry = [node, 0, False]
                stacks[0].append(entry)
                if k == 1:
                    mark_witnessed(0, entry)
            elif stacks[i - 1]:
                # Ancestors must properly contain the node: when the
                # same element sits on the previous level's stack top
                # (same-tag chains like //a//a), it is not its own
                # ancestor and must stay below the watermark.
                watermark = len(stacks[i - 1])
                if stacks[i - 1][-1][0] is node:
                    watermark -= 1
                if watermark > 0:
                    entry = [node, watermark, False]
                    stacks[i].append(entry)
                    self.counters.note_buffer(sum(len(s) for s in stacks))
                    if i == k - 1:
                        mark_witnessed(i, entry)
            # Collect witnessed output nodes eagerly (they may be popped).
            for entry in stacks[level]:
                if entry[2]:
                    results.add(entry[0].nid)

        # Final sweep for entries still stacked at the end.
        for entry in stacks[level]:
            if entry[2]:
                results.add(entry[0].nid)
        _INVOCATIONS.inc(operator="pathstack")
        _OUTPUT.inc(len(results), operator="pathstack")
        return [self.doc.nodes[nid] for nid in sorted(results)]
