"""Process execution backend for the partition-parallel merged scan.

Threads bought the Theorem-1 architecture but not the speed — the GIL
serializes the per-node dispatch loop.  This module runs the same loop
in **worker processes** over the mmap-shared flat arena
(:mod:`repro.xmlkit.arena`):

* a persistent :class:`~concurrent.futures.ProcessPoolExecutor` is kept
  warm per :class:`ProcessScanBackend` owner (engine, database or query
  service); workers attach a snapshot's arena file **once** and keep the
  read-only mapping cached, so steady-state queries ship only the
  pickled NoK trees and four integers per partition;
* results come back as **compact nid arrays** (a pre-order flattening of
  each NestedList: root nid, then per-child-group counts and entries,
  recursively).  The coordinator decodes them against the *real*
  document's nodes in partition order, so downstream joins see ordinary
  identity-stable :class:`~repro.xmlkit.tree.Node` objects and the
  concatenated output is bit-identical to the serial scan (Theorem 1 —
  the order argument is representation-independent);
* cancellation stays cooperative across the process boundary: each
  query run owns a **slot** in two small shared arrays created with the
  pool — a cancel byte the coordinator sets on deadline expiry, failure
  or explicit cancel, and a budget cell every worker folds its scanned
  count into per stride (the approximate *global* work cap);
* a worker crash surfaces as a clean
  :class:`~repro.errors.ExecutionError` — never a hang — and the pool
  is rebuilt for the next query.

Counter semantics mirror the thread backend exactly: workers run real
:class:`~repro.xmlkit.storage.ScanCounters` (plus per-NoK attribution
when requested) and return snapshots the coordinator folds into the
shared totals, aborted partitions included.
"""

from __future__ import annotations

import atexit
import ctypes
import mmap
import multiprocessing
import os
import pickle
import threading
import time
from array import array
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Iterator

from repro.algebra.nested_list import NLEntry
from repro.errors import (DNFError, ExecutionError, QueryCancelledError,
                          QueryTimeoutError, ReproError)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.pattern.decompose import NoKTree
from repro.physical.nok import match_subtree
from repro.xmlkit.arena import ArenaDocument, DocumentArena, arena_file_for
from repro.xmlkit.partition import Partition
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import ELEMENT, Document
from repro.xpath.evaluator import XPathEvaluator

__all__ = ["ProcessScanBackend", "ScanPools", "run_process_scan",
           "shared_process_backend", "shutdown_shared_process_backend"]

_PARTITION_SCANS = REGISTRY.counter(
    "repro_partition_scans_total",
    "Partition scan tasks executed by the parallel merged scan")
_WORKER_CRASHES = REGISTRY.counter(
    "repro_scan_worker_crashes_total",
    "Process-backend scan pools rebuilt after a worker crash")

#: Concurrent process-parallel queries one pool can track; each running
#: query owns one slot in the shared cancel/budget arrays.
_SLOT_COUNT = 64
#: Worker-side checkpoint stride (nodes between shared-state checks),
#: matching the CancellationToken default.
_STRIDE = 256


def _fork_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork``: shared arrays pass to workers by inheritance and
    pool start-up skips a full interpreter boot per worker."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods
                                      else methods[0])


class ProcessScanBackend:
    """A persistent worker-process pool for partition scans.

    Created lazily (constructing the object spawns nothing), rebuilt
    transparently after a crash, shut down deterministically by its
    owner's ``close()``.
    """

    def __init__(self, max_workers: int = 4) -> None:
        self.max_workers = max(1, max_workers)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._cancel: Any = None
        self._budget: Any = None
        self._free: list[int] = []
        self._slot_sem = threading.Semaphore(_SLOT_COUNT)
        self._closed = False

    # -- pool lifecycle -------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise ExecutionError("process scan backend is closed")
            if self._pool is None:
                ctx = _fork_context()
                self._cancel = ctx.Array(ctypes.c_byte, _SLOT_COUNT,
                                         lock=False)
                self._budget = ctx.Array(ctypes.c_longlong, _SLOT_COUNT,
                                         lock=True)
                self._free = list(range(_SLOT_COUNT))
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=ctx,
                    initializer=_attach_shared,
                    initargs=(self._cancel, self._budget))
            return self._pool

    def alive(self) -> bool:
        """True when a pool exists (spawned and not shut down)."""
        with self._lock:
            return self._pool is not None

    def _discard_broken(self) -> None:
        """Drop a crashed pool so the next query spawns a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            _WORKER_CRASHES.inc()
            pool.shutdown(wait=True, cancel_futures=True)

    def close(self, wait: bool = True) -> None:
        """Deterministic shutdown: drain, stop workers, free the arrays."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            self._cancel = self._budget = None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    # -- per-query slot protocol ---------------------------------------

    @contextmanager
    def slot(self, initial_scanned: int = 0) -> Iterator[int]:
        """Borrow a cancel/budget slot for one query run."""
        self._ensure()
        self._slot_sem.acquire()
        try:
            with self._lock:
                index = self._free.pop()
                self._cancel[index] = 0
                with self._budget.get_lock():
                    self._budget[index] = initial_scanned
            try:
                yield index
            finally:
                with self._lock:
                    self._free.append(index)
        finally:
            self._slot_sem.release()

    def cancel_slot(self, index: int) -> None:
        """Raise the shared cancel flag; workers observe it per stride."""
        with self._lock:
            if self._cancel is not None:
                self._cancel[index] = 1

    def submit(self, *args: Any) -> Future:
        return self._ensure().submit(_scan_partition_task, *args)


class ScanPools:
    """Owner object for one stack's scan executors, both lazy.

    Engines, databases and query services each hold one; ``close()``
    drains and shuts down whatever was actually spawned (satisfying the
    deterministic-cleanup contract without paying for pools that were
    never used).
    """

    def __init__(self, thread_workers: int | None = None,
                 process_workers: int | None = None,
                 thread_name_prefix: str = "repro-scan") -> None:
        self._thread_workers = thread_workers
        self._process_workers = process_workers
        self._prefix = thread_name_prefix
        self._lock = threading.Lock()
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessScanBackend | None = None

    def thread_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._threads is None:
                workers = self._thread_workers or min(8, os.cpu_count() or 4)
                self._threads = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix=self._prefix)
            return self._threads

    def process_backend(self) -> ProcessScanBackend:
        with self._lock:
            if self._processes is None:
                workers = self._process_workers or min(4, os.cpu_count() or 1)
                self._processes = ProcessScanBackend(max_workers=workers)
            return self._processes

    def close(self, wait: bool = True) -> None:
        with self._lock:
            threads, self._threads = self._threads, None
            processes, self._processes = self._processes, None
        if threads is not None:
            threads.shutdown(wait=wait, cancel_futures=True)
        if processes is not None:
            processes.close(wait=wait)


_shared_lock = threading.Lock()
_shared_backend: ProcessScanBackend | None = None


def shared_process_backend() -> ProcessScanBackend:
    """Process-wide fallback pool for engines without an owner stack
    (mirrors :func:`repro.physical.parallel_scan.shared_scan_executor`)."""
    global _shared_backend
    with _shared_lock:
        if _shared_backend is None:
            _shared_backend = ProcessScanBackend(
                max_workers=min(4, os.cpu_count() or 1))
        return _shared_backend


def shutdown_shared_process_backend() -> None:
    global _shared_backend
    with _shared_lock:
        backend, _shared_backend = _shared_backend, None
    if backend is not None:
        backend.close(wait=True)


atexit.register(shutdown_shared_process_backend)


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------

def run_process_scan(backend: ProcessScanBackend, doc: Document,
                     scannable: list[NoKTree],
                     partitions: list[Partition],
                     counters: ScanCounters,
                     per_nok: dict[int, ScanCounters] | None,
                     results: dict[int, list[NLEntry]],
                     tracer: Tracer | None) -> dict[int, list[NLEntry]]:
    """Fan the partitions out to worker processes and merge in order.

    ``results`` arrives pre-seeded with the coordinator-matched ``#root``
    NoKs; this function extends it with the decoded worker matches in
    partition order and folds every partition's counters back, mirroring
    the thread backend's ``finally`` semantics exactly.
    """
    path = arena_file_for(doc)
    blob = pickle.dumps(scannable, protocol=pickle.HIGHEST_PROTOCOL)
    by_id = {nok.nok_id: nok for nok in scannable}
    token = counters.cancellation
    # A token tripped before dispatch must fail the query up front —
    # the serial scan would raise at its first checkpoint, and small
    # partitions can finish before the poll loop below ever observes
    # the token and raises the shared cancel flag.
    if token is not None:
        if token.cancelled:
            raise QueryCancelledError()
        if token.expired():
            raise QueryTimeoutError(timeout_ms=token.timeout_ms)
    deadline = token.deadline if token is not None else None
    timeout_ms = token.timeout_ms if token is not None else None
    n_parts = len(partitions)
    payloads: list[tuple | None] = [None] * n_parts
    crashed: BrokenProcessPool | None = None

    with backend.slot(initial_scanned=counters.nodes_scanned) as slot:
        try:
            futures = {
                backend.submit(path, blob, part.start_nid, part.stop_nid,
                               slot, counters.budget, deadline, timeout_ms,
                               per_nok is not None): part.index
                for part in partitions}
        except BrokenProcessPool as exc:
            backend._discard_broken()
            raise ExecutionError(
                "parallel scan worker pool is broken; restarting it "
                f"for the next query ({exc})") from exc
        pending = set(futures)
        cancelled_slot = False
        while pending:
            done, pending = futures_wait(pending, timeout=0.05)
            for future in done:
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    crashed = exc
                payload = future.result() if exc is None else None
                if payload is not None:
                    payloads[futures[future]] = payload
                failed = exc is not None or (payload is not None
                                             and payload[0] != "ok")
                if failed and not cancelled_slot:
                    # Tell the surviving partitions to stop within one
                    # stride instead of scanning to completion.
                    backend.cancel_slot(slot)
                    cancelled_slot = True
            if crashed is not None and pending:
                # A dead worker can leave siblings queued forever on a
                # broken pool; everything left fails with the same error.
                for future in pending:
                    future.cancel()
                break
            if (not cancelled_slot and token is not None
                    and (token.cancelled or token.expired())):
                backend.cancel_slot(slot)
                cancelled_slot = True

    first_error: ReproError | None = None
    try:
        if crashed is not None:
            backend._discard_broken()
            raise ExecutionError(
                "parallel scan worker process crashed mid-scan; the "
                f"process pool was rebuilt ({crashed})") from crashed
        for index in range(n_parts):
            payload = payloads[index]
            if payload is None:
                continue
            status, body = payload[0], payload[1]
            if status != "ok" and first_error is None:
                first_error = body if isinstance(body, ReproError) \
                    else ExecutionError(str(body))
        if first_error is not None:
            raise first_error
    finally:
        # Fold every partition's work into the shared totals — aborted
        # partitions included, exactly like the thread backend.
        for index in range(n_parts):
            payload = payloads[index]
            if payload is None:
                continue
            local_counters = _counters_from(payload[2])
            local_per_nok = payload[3]
            if local_per_nok is not None and per_nok is not None:
                for nok_id, snap in local_per_nok.items():
                    private = _counters_from(snap)
                    per_nok.setdefault(nok_id,
                                       ScanCounters()).merge(private)
                    local_counters.merge(private)
            counters.merge(local_counters)
            _PARTITION_SCANS.inc()
        _emit_spans(tracer, partitions, payloads)

    for index in range(n_parts):
        payload = payloads[index]
        if payload is None:
            continue
        for nok_id, data in payload[1].items():
            results[nok_id].extend(
                _decode_match_list(by_id[nok_id].root, data, doc.nodes))
    return results


def _counters_from(snapshot: dict[str, int]) -> ScanCounters:
    counters = ScanCounters()
    for name, value in snapshot.items():
        setattr(counters, name, value)
    return counters


def _emit_spans(tracer: Tracer | None, partitions: list[Partition],
                payloads: list[tuple | None]) -> None:
    if tracer is None:
        return
    parent = tracer.current()
    if parent is None:
        return
    from repro.obs.trace import Span

    for part in partitions:
        payload = payloads[part.index]
        started, ended = payload[4] if payload is not None else (0, 0)
        span = Span("partition-scan", {
            "partition": part.index,
            "start_nid": part.start_nid,
            "stop_nid": part.stop_nid,
            "backend": "processes",
            "matches": (sum(v[0] for v in payload[1].values())
                        if payload is not None and payload[0] == "ok"
                        else 0),
        })
        span.start_ns = started
        span.end_ns = ended
        parent.children.append(span)


# ----------------------------------------------------------------------
# Match-list wire format: a pre-order flattening of each NestedList.
# ----------------------------------------------------------------------

def _encode_match_list(entries: list[NLEntry]) -> array:
    out = array("i", [len(entries)])
    for entry in entries:
        _encode_entry(entry, out)
    return out


def _encode_entry(entry: NLEntry, out: array) -> None:
    out.append(entry.node.nid)
    for group in entry.groups:
        out.append(len(group))
        for sub in group:
            _encode_entry(sub, out)


def _decode_match_list(vertex: Any, data: array, nodes: Any
                       ) -> list[NLEntry]:
    entries: list[NLEntry] = []
    pos = 1
    for _ in range(data[0]):
        entry, pos = _decode_entry(vertex, data, pos, nodes)
        entries.append(entry)
    return entries


def _decode_entry(vertex: Any, data: array, pos: int, nodes: Any
                  ) -> tuple[NLEntry, int]:
    nid = data[pos]
    pos += 1
    entry = NLEntry(vertex, nodes[nid], len(vertex.child_edges))
    for index, edge in enumerate(vertex.child_edges):
        count = data[pos]
        pos += 1
        if count:
            group = entry.groups[index]
            child = edge.child
            for _ in range(count):
                sub, pos = _decode_entry(child, data, pos, nodes)
                group.append(sub)
    return entry, pos


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

_worker_cancel: Any = None
_worker_budget: Any = None
#: path -> attached ArenaDocument; the mapping is the expensive part,
#: so a small LRU keeps recent snapshots warm across queries.
_worker_arenas: OrderedDict[str, ArenaDocument] = OrderedDict()
_WORKER_ARENA_CAP = 8


def _attach_shared(cancel: Any, budget: Any) -> None:
    """Pool initializer: receive the shared slot arrays by inheritance."""
    global _worker_cancel, _worker_budget
    _worker_cancel = cancel
    _worker_budget = budget


def _attached_document(path: str) -> ArenaDocument:
    adoc = _worker_arenas.get(path)
    if adoc is not None:
        _worker_arenas.move_to_end(path)
        return adoc
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    adoc = DocumentArena.from_buffer(mapped).document()
    _worker_arenas[path] = adoc
    while len(_worker_arenas) > _WORKER_ARENA_CAP:
        _worker_arenas.popitem(last=False)
    return adoc


def _scan_partition_task(path: str, noks_blob: bytes, start_nid: int,
                         stop_nid: int, slot: int, budget: int | None,
                         deadline: float | None, timeout_ms: float | None,
                         want_per_nok: bool) -> tuple:
    """One partition's merged-scan dispatch loop, worker-side.

    Mirrors the thread backend's ``run_partition`` over the arena
    columns: every slot in range charges ``nodes_scanned``, elements are
    dispatched to their candidate NoKs by tag id, and
    :func:`~repro.physical.nok.match_subtree` does the (identical)
    recursive matching on lazily-materialized node views.  Shared-state
    checks run once per stride: cancel flag, absolute monotonic deadline
    (CLOCK_MONOTONIC is system-wide on Linux, so the coordinator's
    deadline transfers verbatim), and the global budget cell.

    Failures return as ``("error", exc, ...)`` payloads rather than
    raising, so the coordinator can fold the partial counters of an
    aborted partition exactly like the serial operator's ``finally``.
    """
    started = time.perf_counter_ns()
    adoc = _attached_document(path)
    arena = adoc.arena
    noks: list[NoKTree] = pickle.loads(noks_blob)

    by_tid: dict[int, list[NoKTree]] = {}
    wildcard: list[NoKTree] = []
    for nok in noks:
        if nok.root.name == "*":
            wildcard.append(nok)
        else:
            tid = arena.tag_ids.get(nok.root.name)
            if tid is not None:
                by_tid.setdefault(tid, []).append(nok)

    local = ScanCounters()
    local_per_nok: dict[int, ScanCounters] | None = (
        {} if want_per_nok else None)
    matches: dict[int, list[NLEntry]] = {nok.nok_id: [] for nok in noks}
    evaluator = XPathEvaluator()
    kinds, tags = arena.kind, arena.tag_id
    nodes = adoc.nodes
    flushed = 0

    def checkpoint() -> None:
        nonlocal flushed
        if _worker_cancel is not None and _worker_cancel[slot]:
            raise QueryCancelledError()
        if deadline is not None and time.monotonic() >= deadline:
            raise QueryTimeoutError(timeout_ms=timeout_ms)
        delta = local.nodes_scanned - flushed
        flushed = local.nodes_scanned
        if budget is not None and delta and _worker_budget is not None:
            with _worker_budget.get_lock():
                _worker_budget[slot] += delta
                total = _worker_budget[slot]
            if total > budget:
                local.trip_budget()
                raise DNFError("parallel scan exceeded the global "
                               "work budget", budget=budget)

    failure: ReproError | None = None
    try:
        local.scans_started += 1
        for nid in range(start_nid, min(stop_nid, arena.n_nodes)):
            local.nodes_scanned += 1
            if local.nodes_scanned - flushed >= _STRIDE:
                checkpoint()
            if kinds[nid] != ELEMENT:
                continue
            named = by_tid.get(tags[nid])
            candidates = (named + wildcard if named and wildcard
                          else named or wildcard)
            if not candidates:
                continue
            node = nodes[nid]
            for nok in candidates:
                nok_counters = (local if local_per_nok is None
                                else local_per_nok.setdefault(
                                    nok.nok_id, ScanCounters()))
                entry = match_subtree(nok.root, node, nok_counters,
                                      evaluator)
                if entry is not None:
                    matches[nok.nok_id].append(entry)
        checkpoint()
    except ReproError as exc:
        failure = exc

    per_nok_snaps = ({nok_id: c.snapshot()
                      for nok_id, c in local_per_nok.items()}
                     if local_per_nok is not None else None)
    times = (started, time.perf_counter_ns())
    if failure is not None:
        return ("error", failure, local.snapshot(), per_nok_snaps, times)
    encoded = {nok_id: _encode_match_list(entries)
               for nok_id, entries in matches.items()}
    return ("ok", encoded, local.snapshot(), per_nok_snaps, times)
