"""Merged NoK evaluation: many pattern trees, one sequential scan.

Section 4.2, technique (1): "if both NoK operators use a sequential
scan access method ... we can save I/O by merging multiple NoK
operators into one combined operator and using one scan only", the way
multiple DFAs merge into one NFA — each scanned node is offered to
every NoK's root test.

The per-NoK match lists that come out are identical to what the
individual :class:`~repro.physical.nok.NoKMatcher` scans produce (the
ablation benchmark asserts this), but ``counters.nodes_scanned`` grows
by one document pass instead of one pass per NoK.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY
from repro.pattern.decompose import NoKTree
from repro.physical.nok import match_subtree
from repro.xmlkit.storage import ScanCounters, SequentialScan
from repro.xmlkit.tree import Document
from repro.xpath.evaluator import XPathEvaluator
from repro.algebra.nested_list import NLEntry

__all__ = ["merged_scan"]

_INVOCATIONS = REGISTRY.counter("repro_operator_invocations_total",
                                "Physical operator invocations")
_OUTPUT = REGISTRY.counter("repro_operator_output_total",
                           "Items emitted by physical operators")


def merged_scan(noks: list[NoKTree], doc: Document,
                counters: ScanCounters | None = None,
                per_nok: dict[int, ScanCounters] | None = None
                ) -> dict[int, list[NLEntry]]:
    """Evaluate several NoK pattern trees over one document in one scan.

    Returns ``{nok_id: matches}`` with each match list in document order
    of its root nodes — the same order-preservation contract as the
    single-NoK scan, so downstream merge joins work unchanged.

    ``per_nok`` optionally maps ``nok_id`` to a private
    :class:`ScanCounters` charged with that NoK's match work
    (comparisons), so the tracer can attribute work inside the shared
    scan to individual pattern trees.  The private counters are folded
    back into ``counters`` before returning, keeping the shared totals
    identical either way.
    """
    if counters is None:
        counters = ScanCounters()
    evaluator = XPathEvaluator()
    results: dict[int, list[NLEntry]] = {nok.nok_id: [] for nok in noks}

    def counters_for(nok: NoKTree) -> ScanCounters:
        if per_nok is None:
            return counters
        return per_nok.setdefault(nok.nok_id, ScanCounters())

    # Pattern-tree-root NoKs match the document node directly; they do
    # not need the element scan at all.
    scannable: list[NoKTree] = []
    for nok in noks:
        if nok.root.name == "#root":
            entry = match_subtree(nok.root, doc.document_node,
                                  counters_for(nok), evaluator)
            if entry is not None:
                results[nok.nok_id].append(entry)
        else:
            scannable.append(nok)

    # Dispatch table: plain-name roots are looked up by the scanned
    # node's tag instead of testing every NoK against every node;
    # wildcard roots must still see each element.  Same matches, same
    # counters (the tag test never touched ScanCounters), fewer inner
    # loop iterations — this scan runs once per warm-path execution.
    by_tag: dict[str, list[NoKTree]] = {}
    wildcard: list[NoKTree] = []
    for nok in scannable:
        if nok.root.name == "*":
            wildcard.append(nok)
        else:
            by_tag.setdefault(nok.root.name, []).append(nok)

    try:
        if scannable:
            scan = SequentialScan(doc, counters)
            for node in scan:
                named = by_tag.get(node.tag)
                candidates = (named + wildcard if named and wildcard
                              else named or wildcard)
                if not candidates:
                    continue
                for nok in candidates:
                    entry = match_subtree(nok.root, node, counters_for(nok),
                                          evaluator)
                    if entry is not None:
                        results[nok.nok_id].append(entry)
    finally:
        # Fold private per-NoK work back into the shared totals even when
        # the scan aborts on a budget trip (DNF).
        if per_nok is not None:
            for private in per_nok.values():
                counters.merge(private)

    _INVOCATIONS.inc(operator="merged_scan")
    _OUTPUT.inc(sum(len(v) for v in results.values()), operator="merged_scan")
    return results
