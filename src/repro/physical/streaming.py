"""Streaming NoK pattern matching over SAX events — no tree required.

Section 5.2 remarks that "pipelined algorithm is preferred in the
stream context and in the case where no tag-name indexes are
available"; Section 2.1 notes navigational matchers consume input
"either through SAX event callbacks or ... the underlying storage
system".  This module supplies the SAX form: a NoK pattern tree (local
axes only — the property that makes single-pass matching possible) is
evaluated over the event stream of :mod:`repro.xmlkit.sax`, in one
pass, with memory bounded by document depth × pattern size.

Because there is no tree, results cannot be node references; the
matcher reports match *counts* and, optionally, the string values of
the matched roots — the typical shapes of streaming consumers.

Streamability restrictions (checked up front, raising
:class:`~repro.errors.CompileError`):

* only uncut (local) edges — run :func:`~repro.pattern.decompose.decompose`
  first and stream one NoK at a time;
* value predicates limited to attribute/text equality comparisons,
  which are decidable at the element's start/end events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.pattern.blossom import MODE_MANDATORY, BlossomVertex
from repro.pattern.decompose import NoKTree
from repro.xmlkit.sax import ContentHandler, parse_string
from repro.xpath.ast import Comparison, Literal, LocationPath, NumberLiteral, RootContext, TextTest

__all__ = ["StreamingNoKMatcher", "stream_count"]


def _atoms_equal(expected: str | float, observed: str) -> bool:
    """XPath ``=`` between a literal and an observed string.

    Mirrors the tree evaluator's comparison semantics: a numeric
    literal (``NumberLiteral.value`` is a float) coerces the observed
    string to a number, and a string that does not parse is simply
    unequal — never an error.  String literals keep the exact
    comparison the stream tests always used.
    """
    if isinstance(expected, float):
        try:
            return float(observed.strip()) == expected
        except ValueError:
            return False
    return expected == observed


@dataclass
class _AttrTest:
    name: str
    value: str | float

    def matches(self, observed: str | None) -> bool:
        return observed is not None and _atoms_equal(self.value, observed)


@dataclass
class _TextTest:
    value: str | float

    def matches(self, text: str) -> bool:
        return _atoms_equal(self.value, text.strip())


def _compile_predicate(vertex: BlossomVertex):
    """Translate value predicates to stream-decidable tests."""
    tests: list[object] = []
    for predicate in vertex.value_predicates:
        if not isinstance(predicate, Comparison) or predicate.op != "=":
            raise CompileError(f"predicate {predicate} is not streamable")
        path, literal = predicate.left, predicate.right
        if isinstance(path, (Literal, NumberLiteral)):
            path, literal = literal, path
        if not isinstance(path, LocationPath) \
                or not isinstance(literal, (Literal, NumberLiteral)):
            raise CompileError(f"predicate {predicate} is not streamable")
        if not isinstance(path.root, RootContext) or path.root.absolute:
            raise CompileError(f"predicate {predicate} is not streamable")
        if len(path.steps) == 1 and path.steps[0].axis == "attribute":
            tests.append(_AttrTest(path.steps[0].test.name, literal.value))
        elif not path.steps or (
                len(path.steps) == 1
                and (isinstance(path.steps[0].test, TextTest)
                     or path.steps[0].axis == "self")):
            tests.append(_TextTest(literal.value))
        else:
            raise CompileError(f"predicate {predicate} is not streamable")
    return tests


@dataclass
class _OpenMatch:
    """An in-flight match of one pattern vertex at the current depth."""

    vertex: BlossomVertex
    parent: _OpenMatch | None
    text_parts: list[str] = field(default_factory=list)
    matched_children: set[int] = field(default_factory=set)
    text_tests: list[_TextTest] = field(default_factory=list)

    def satisfied(self) -> bool:
        for edge in self.vertex.child_edges:
            if getattr(edge, "cut", False):
                continue
            if edge.mode == MODE_MANDATORY and \
                    edge.child.vid not in self.matched_children:
                return False
        text = "".join(self.text_parts)
        return all(test.matches(text) for test in self.text_tests)


class StreamingNoKMatcher(ContentHandler):
    """SAX handler matching one NoK pattern tree in a single pass.

    Attributes after the run: ``count`` (completed root matches) and
    ``root_values`` (string values of matched roots, if
    ``collect_values`` was set — note values require buffering the
    candidate subtrees' text, the memory/latency trade streaming
    engines make explicit).
    """

    def __init__(self, nok: NoKTree, collect_values: bool = False) -> None:
        if nok.root.name == "#root":
            raise CompileError("streaming matches element-rooted NoKs; "
                               "the #root pattern is the trivial document match")
        for vertex in nok.vertices:
            if getattr(vertex, "after_vid", None) is not None:
                raise CompileError("following-sibling constraints are not "
                                   "supported by the streaming matcher")
        self.nok = nok
        self.collect_values = collect_values
        self.count = 0
        self.root_values: list[str] = []
        self.max_open = 0
        self._attr_tests = {v.vid: [t for t in _compile_predicate(v)
                                    if isinstance(t, _AttrTest)]
                            for v in nok.vertices}
        self._text_tests = {v.vid: [t for t in _compile_predicate(v)
                                    if isinstance(t, _TextTest)]
                            for v in nok.vertices}
        #: one list of open matches per open element (stack of frames)
        self._frames: list[list[_OpenMatch]] = []
        self._open_total = 0

    # ------------------------------------------------------------------
    # SAX callbacks.
    # ------------------------------------------------------------------

    def start_element(self, tag: str, attrs: dict[str, str]) -> None:
        new_frame: list[_OpenMatch] = []

        def try_open(vertex: BlossomVertex, parent: _OpenMatch | None) -> None:
            if not vertex.matches_tag(tag):
                return
            for test in self._attr_tests[vertex.vid]:
                if not test.matches(attrs.get(test.name)):
                    return
            new_frame.append(_OpenMatch(vertex, parent,
                                        text_tests=self._text_tests[vertex.vid]))

        # The NoK root may start matching at any element.
        try_open(self.nok.root, None)
        # Children of matches open in the enclosing frame.
        if self._frames:
            for parent in self._frames[-1]:
                for edge in parent.vertex.child_edges:
                    if not getattr(edge, "cut", False):
                        try_open(edge.child, parent)

        self._frames.append(new_frame)
        self._open_total += len(new_frame)
        self.max_open = max(self.max_open,
                            self._open_total + len(self._frames))

    def characters(self, text: str) -> None:
        if not self._frames:
            return
        for match in self._frames[-1]:
            if match.text_tests or self.collect_values:
                match.text_parts.append(text)

    def end_element(self, tag: str) -> None:
        frame = self._frames.pop()
        self._open_total -= len(frame)
        for match in frame:
            if not match.satisfied():
                continue
            if match.parent is None:
                self.count += 1
                if self.collect_values:
                    self.root_values.append("".join(match.text_parts))
            else:
                match.parent.matched_children.add(match.vertex.vid)
                if self.collect_values:
                    match.parent.text_parts.extend(match.text_parts)


def stream_count(xml_text: str, nok: NoKTree) -> int:
    """Count a NoK pattern's matches over raw XML text in one pass."""
    handler = StreamingNoKMatcher(nok)
    parse_string(xml_text, handler)
    return handler.count
