"""XML substrate: parser, tree model, labels, index, stats, storage.

Everything above this package (pattern matching, joins, the FLWOR
engine) consumes XML exclusively through these interfaces; no external
XML library is used anywhere in the repository.
"""

from repro.xmlkit.binary import dump as dump_binary, load as load_binary
from repro.xmlkit.index import TagIndex, TagStream
from repro.xmlkit.labeling import Region, region_of
from repro.xmlkit.parser import parse, parse_file
from repro.xmlkit.serialize import pretty, serialize
from repro.xmlkit.stats import DocumentStats, compute_stats
from repro.xmlkit.storage import ScanCounters, SequentialScan
from repro.xmlkit.update import DocumentUpdater, UpdateReport
from repro.xmlkit.tree import (
    DOCUMENT,
    ELEMENT,
    TEXT,
    Document,
    DocumentBuilder,
    Node,
    deep_equal,
    deep_equal_sequences,
)

__all__ = [
    "DOCUMENT",
    "ELEMENT",
    "TEXT",
    "Document",
    "DocumentBuilder",
    "DocumentStats",
    "DocumentUpdater",
    "Node",
    "Region",
    "ScanCounters",
    "SequentialScan",
    "TagIndex",
    "TagStream",
    "UpdateReport",
    "compute_stats",
    "deep_equal",
    "dump_binary",
    "load_binary",
    "deep_equal_sequences",
    "parse",
    "parse_file",
    "pretty",
    "region_of",
    "serialize",
]
