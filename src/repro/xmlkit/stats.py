"""Document statistics.

Computes the per-document quantities the paper reports in Table 1
(node count, average/maximum depth, distinct-tag count, serialized
size) plus the two properties the optimizer needs:

* **recursiveness** — whether any element occurs as a descendant of a
  same-tag element (the paper's definition in Section 5.1), and
* **recursion degree** — the maximum number of same-tag elements on any
  root-to-leaf path, which bounds the memory a pipelined ``//``-join
  needs to cache (Section 4.2 / reference [3]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import ELEMENT, Document

__all__ = ["DocumentStats", "compute_stats"]


@dataclass
class DocumentStats:
    """Summary statistics for one document (Table 1 row)."""

    n_nodes: int = 0            # element + text nodes (paper counts tree nodes)
    n_elements: int = 0
    n_text: int = 0
    avg_depth: float = 0.0      # mean element depth (root = 1)
    max_depth: int = 0
    n_distinct_tags: int = 0
    tag_histogram: dict[str, int] = field(default_factory=dict)
    recursive: bool = False
    recursion_degree: int = 1   # max same-tag count on a root-to-leaf path
    serialized_bytes: int = 0
    #: per-tag mean subtree size (nodes, self included) — the cost
    #: model's rescan-volume statistic for bounded nested loops.
    tag_subtree_avg: dict[str, float] = field(default_factory=dict)

    def avg_subtree_size(self, tag: str) -> float:
        """Mean subtree size of a tag (whole document for unknown tags)."""
        return self.tag_subtree_avg.get(tag, float(max(1, self.n_nodes)))

    def fingerprint(self) -> tuple[int, int, int, int, int]:
        """A cheap structural summary for plan-cache keys.

        Two documents (or two versions of one document) with different
        fingerprints never share cached plans; the optimizer's decisions
        depend exactly on these quantities, so matching fingerprints
        mean the cached :class:`~repro.engine.optimizer.PlanChoice` is
        still the choice the optimizer would make today.
        """
        return (self.n_nodes, self.n_elements, self.n_distinct_tags,
                self.max_depth, self.recursion_degree)

    def table1_row(self, name: str) -> dict[str, object]:
        """Render this summary in the shape of a Table 1 row."""
        return {
            "data set": name,
            "recursive?": "Y" if self.recursive else "N",
            "size (KB)": round(self.serialized_bytes / 1024, 1),
            "#nodes": self.n_nodes,
            "avg. dep.": round(self.avg_depth, 1),
            "max dep.": self.max_depth,
            "|tags|": self.n_distinct_tags,
        }


def compute_stats(doc: Document, with_size: bool = True) -> DocumentStats:
    """Compute :class:`DocumentStats` in a single document-order pass.

    ``with_size=False`` skips serialization (the only expensive part) for
    callers that need only the structural statistics.
    """
    stats = DocumentStats()
    depth_sum = 0
    subtree_totals: dict[str, int] = {}
    # Running root-to-current-path tag multiset, for recursion degree.
    path_counts: dict[str, int] = {}
    max_same_tag = 1 if doc.root is not None else 0

    stack: list[tuple[object, bool]] = [(doc.root, False)] if doc.root else []
    while stack:
        node, leaving = stack.pop()
        if node.kind != ELEMENT:  # type: ignore[union-attr]
            stats.n_text += 1
            continue
        tag = node.tag  # type: ignore[union-attr]
        if leaving:
            path_counts[tag] -= 1
            continue
        subtree_totals[tag] = subtree_totals.get(tag, 0) + node.subtree_size()
        stats.n_elements += 1
        depth_sum += node.level  # type: ignore[union-attr]
        if node.level > stats.max_depth:  # type: ignore[union-attr]
            stats.max_depth = node.level  # type: ignore[union-attr]
        count = path_counts.get(tag, 0) + 1
        path_counts[tag] = count
        if count > max_same_tag:
            max_same_tag = count
        stats.tag_histogram[tag] = stats.tag_histogram.get(tag, 0) + 1
        stack.append((node, True))
        for child in reversed(node.children):  # type: ignore[union-attr]
            stack.append((child, False))

    stats.n_nodes = stats.n_elements + stats.n_text
    stats.n_distinct_tags = len(stats.tag_histogram)
    for tag, total in subtree_totals.items():
        stats.tag_subtree_avg[tag] = total / stats.tag_histogram[tag]
    if stats.n_elements:
        stats.avg_depth = depth_sum / stats.n_elements
    stats.recursion_degree = max_same_tag
    stats.recursive = max_same_tag > 1
    if with_size and doc.root is not None:
        stats.serialized_bytes = len(serialize(doc.root).encode())
    return stats
