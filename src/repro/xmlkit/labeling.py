"""Region labeling utilities and axis predicates over labels.

Every node receives its ``(start, end, level)`` region label at build
time (see :class:`repro.xmlkit.tree.DocumentBuilder`); this module
collects the label-only predicates that the structural-join operators
use, so that a join can decide an axis relationship without touching
the tree at all — exactly the property that makes join-based evaluation
possible (Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlkit.tree import Node

__all__ = [
    "Region",
    "region_of",
    "contains",
    "contained_in",
    "is_parent",
    "is_child",
    "before",
    "after",
    "axis_predicate",
]


@dataclass(frozen=True, order=True)
class Region:
    """A detached ``(start, end, level)`` label.

    Ordering compares ``start`` first, so sorting regions sorts by
    document order — the invariant all merge-style joins rely on.
    """

    start: int
    end: int
    level: int


def region_of(node: Node) -> Region:
    """Extract the region label of a tree node."""
    return Region(node.start, node.end, node.level)


def contains(ancestor: Region, descendant: Region) -> bool:
    """True iff ``ancestor`` properly contains ``descendant`` (// axis)."""
    return ancestor.start < descendant.start and descendant.end < ancestor.end


def contained_in(descendant: Region, ancestor: Region) -> bool:
    """True iff ``descendant`` is properly inside ``ancestor``."""
    return contains(ancestor, descendant)


def is_parent(parent: Region, child: Region) -> bool:
    """True iff ``parent`` contains ``child`` at exactly one level down (/ axis)."""
    return contains(parent, child) and child.level == parent.level + 1


def is_child(child: Region, parent: Region) -> bool:
    """True iff ``child`` is a direct child of ``parent``."""
    return is_parent(parent, child)


def before(a: Region, b: Region) -> bool:
    """Document-order ``<<``: ``a`` starts (and therefore ends) before ``b``.

    Note that an ancestor *precedes* its descendants under ``<<`` (the
    XQuery node-order comparison), unlike the ``preceding`` axis which
    excludes ancestors.
    """
    return a.start < b.start


def after(a: Region, b: Region) -> bool:
    """Document-order ``>>``."""
    return before(b, a)


def preceding(a: Region, b: Region) -> bool:
    """XPath ``preceding`` axis: ``a`` entirely before ``b`` (no overlap)."""
    return a.end < b.start


def following(a: Region, b: Region) -> bool:
    """XPath ``following`` axis: ``a`` entirely after ``b``."""
    return b.end < a.start


_AXIS_PREDICATES = {
    "child": lambda up, down: is_parent(up, down),
    "descendant": lambda up, down: contains(up, down),
    "descendant-or-self": lambda up, down: up == down or contains(up, down),
    "parent": lambda up, down: is_parent(down, up),
    "ancestor": lambda up, down: contains(down, up),
    "self": lambda up, down: up == down,
    "preceding": lambda a, b: preceding(b, a),
    "following": lambda a, b: following(b, a),
    "before": before,
    "after": after,
}


def axis_predicate(axis: str):
    """Return the binary predicate ``pred(from_region, to_region)`` for an axis.

    Raises ``KeyError`` for axes with no purely structural region test.
    """
    return _AXIS_PREDICATES[axis]
