"""DataGuide-style structural summary for static query analysis.

A :class:`StructuralSummary` records every **distinct label path** that
occurs in a document (root-to-element tag sequences), with occurrence
counts, the set of child labels observed below each path, and the set
of attribute names observed on it.  It is the data-shape oracle behind
the ``QL`` query-lint passes (:mod:`repro.analysis.query`): a step
whose label never occurs — or never occurs under the ancestor the
pattern requires — is statically unsatisfiable, so the compiler can cut
the branch (or the whole plan) before a single node is scanned.

The summary is built in one pass over the node arena (same traversal
discipline as :func:`repro.xmlkit.stats.compute_stats`) and is strictly
**conservative**: every query helper answers ``True`` ("may occur")
unless the summary proves absence.  Wildcard and document-root tests
are always satisfiable, and a summary truncated at :data:`MAX_PATHS`
distinct paths answers ``True`` for everything — soundness over
precision, because an over-approximation only costs a wasted scan
while an under-approximation would drop answers.

Per-snapshot caching lives in :class:`repro.serve.Catalog` (alongside
the ``TagIndex``); single-document engines cache one instance and drop
it on mutation, keyed out of the plan cache by :meth:`fingerprint`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.xmlkit.tree import ELEMENT, Document, Node

__all__ = ["MAX_PATHS", "PathInfo", "StructuralSummary", "build_summary"]

#: Distinct-label-path cap.  Real documents have tiny DataGuides (the
#: Table 1 corpora stay under a few hundred paths); hitting the cap
#: flips the summary into always-satisfiable mode rather than spending
#: unbounded memory on adversarial documents.
MAX_PATHS = 10_000

#: Pseudo-label for the document node, used as the parent of root-level
#: elements in :attr:`StructuralSummary.parent_labels`.
DOC_LABEL = "#doc"


@dataclass
class PathInfo:
    """Aggregate facts about one distinct label path."""

    #: How many element nodes sit at exactly this label path.
    count: int = 0
    #: Child element labels observed directly below this path.
    children: set[str] = field(default_factory=set)
    #: Attribute names observed on elements at this path.
    attributes: set[str] = field(default_factory=set)


@dataclass
class StructuralSummary:
    """Distinct label paths of one document, with derived indexes.

    The derived per-label maps (:attr:`label_counts` and friends) are
    computed from :attr:`paths` at construction time — they are pure
    accelerations of path-table lookups, never additional facts.
    """

    #: ``(tag, tag, ...)`` root-to-element label path → aggregate info.
    paths: dict[tuple[str, ...], PathInfo]
    #: Whether the path table was cut off at :data:`MAX_PATHS` (every
    #: query helper then answers ``True``).
    truncated: bool = False

    label_counts: dict[str, int] = field(init=False, default_factory=dict)
    #: label → labels observed as its direct parent (:data:`DOC_LABEL`
    #: for root-level elements).
    parent_labels: dict[str, set[str]] = field(init=False,
                                               default_factory=dict)
    #: label → labels observed as a proper ancestor.
    ancestor_labels: dict[str, set[str]] = field(init=False,
                                                 default_factory=dict)
    #: label → attribute names ever observed on an element of that label.
    label_attributes: dict[str, set[str]] = field(init=False,
                                                  default_factory=dict)
    _digest: str | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        for path, info in self.paths.items():
            label = path[-1]
            self.label_counts[label] = (self.label_counts.get(label, 0)
                                        + info.count)
            parent = path[-2] if len(path) > 1 else DOC_LABEL
            self.parent_labels.setdefault(label, set()).add(parent)
            self.ancestor_labels.setdefault(label, set()).update(path[:-1])
            self.label_attributes.setdefault(label, set()).update(
                info.attributes)

    # -- query helpers (all conservative: True means "may occur") ------

    def _open(self, tag: str) -> bool:
        """True when no absence claim about ``tag`` can be sound."""
        return self.truncated or tag in ("*", "#root", DOC_LABEL)

    def label_occurs(self, tag: str) -> bool:
        """May an element labelled ``tag`` occur anywhere?"""
        return self._open(tag) or tag in self.label_counts

    def occurs_under(self, tag: str, ancestor: str) -> bool:
        """May ``tag`` occur with ``ancestor`` as a proper ancestor?"""
        if self._open(tag) or self._open(ancestor):
            return True
        return ancestor in self.ancestor_labels.get(tag, ())

    def child_occurs(self, parent: str, child: str) -> bool:
        """May ``child`` occur as a direct child of ``parent``?

        ``parent`` may be :data:`DOC_LABEL` to ask about root elements.
        """
        if self._open(child) or (parent != DOC_LABEL and self._open(parent)):
            return True
        return parent in self.parent_labels.get(child, ())

    def attr_occurs(self, tag: str, attr: str) -> bool:
        """May an element labelled ``tag`` carry attribute ``attr``?"""
        if self._open(tag):
            return self.attr_occurs_anywhere(attr)
        return attr in self.label_attributes.get(tag, ())

    def attr_occurs_anywhere(self, attr: str) -> bool:
        """May attribute ``attr`` occur on any element?"""
        if self.truncated:
            return True
        return any(attr in attrs for attrs in self.label_attributes.values())

    def root_labels(self) -> set[str]:
        """Labels observed on root-level elements."""
        return {path[0] for path in self.paths if len(path) == 1}

    # -- identity -------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable digest of the full path table.

        Joins the plan-cache key (via ``Engine.stats_fingerprint``) so
        plans pruned against one document shape can never serve another:
        a summary rebuild after mutation keys every stale pruned plan
        out even when the coarse :class:`DocumentStats` quantities
        happen to coincide.
        """
        if self._digest is None:
            hasher = hashlib.blake2b(digest_size=8)
            if self.truncated:
                hasher.update(b"truncated\x00")
            for path in sorted(self.paths):
                info = self.paths[path]
                hasher.update("/".join(path).encode())
                hasher.update(f"#{info.count}".encode())
                hasher.update(("@" + ",".join(sorted(info.attributes)))
                              .encode())
                hasher.update(b"\x00")
            self._digest = hasher.hexdigest()
        return self._digest

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:
        return (f"<StructuralSummary {len(self.paths)} paths, "
                f"{len(self.label_counts)} labels"
                + (", truncated" if self.truncated else "") + ">")


def _iter_elements(doc: Document) -> Iterator[tuple[Node, bool]]:
    """Yield ``(element, leaving)`` pairs in document order.

    Same explicit-stack discipline as ``compute_stats`` — no recursion,
    so arbitrarily deep documents cannot blow the interpreter stack.
    """
    stack: list[tuple[Node, bool]] = [(doc.root, False)]
    while stack:
        node, leaving = stack.pop()
        if node.kind != ELEMENT:
            continue
        yield node, leaving
        if not leaving:
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))


def build_summary(doc: Document, max_paths: int = MAX_PATHS
                  ) -> StructuralSummary:
    """Build the structural summary in one pass over the node arena."""
    paths: dict[tuple[str, ...], PathInfo] = {}
    label_stack: list[str] = []
    truncated = False
    for node, leaving in _iter_elements(doc):
        if leaving:
            label_stack.pop()
            continue
        label_stack.append(node.tag)
        path = tuple(label_stack)
        info = paths.get(path)
        if info is None:
            if len(paths) >= max_paths:
                truncated = True
                continue
            info = paths[path] = PathInfo()
            if len(path) > 1:
                parent = paths.get(path[:-1])
                if parent is not None:
                    parent.children.add(node.tag)
        info.count += 1
        if node.attrs:
            info.attributes.update(node.attrs)
    return StructuralSummary(paths=paths, truncated=truncated)
