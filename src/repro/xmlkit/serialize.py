"""XML serialization: tree → text.

Used for result construction output, the data generators (writing test
corpora to disk), and round-trip testing of the parser.
"""

from __future__ import annotations

from repro.xmlkit.tree import DOCUMENT, TEXT, Node

__all__ = ["escape_text", "escape_attribute", "serialize", "pretty"]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted output."""
    return escape_text(value).replace('"', "&quot;")


def serialize(node: Node) -> str:
    """Serialize a node (element, text, or document) to compact XML."""
    out: list[str] = []
    _write(node, out)
    return "".join(out)


def _write(node: Node, out: list[str]) -> None:
    if node.kind == DOCUMENT:
        for child in node.children:
            _write(child, out)
        return
    if node.kind == TEXT:
        out.append(escape_text(node.text or ""))
        return
    out.append(f"<{node.tag}")
    for name, value in node.attrs.items():
        out.append(f' {name}="{escape_attribute(value)}"')
    if not node.children:
        out.append("/>")
        return
    out.append(">")
    for child in node.children:
        _write(child, out)
    out.append(f"</{node.tag}>")


def pretty(node: Node, indent: str = "  ") -> str:
    """Serialize with indentation (whitespace-insensitive display form).

    Text content is emitted inline when an element has only text children;
    mixed content falls back to compact serialization for that subtree to
    avoid changing its string value.
    """
    out: list[str] = []
    _write_pretty(node, out, 0, indent)
    return "".join(out)


def _only_text_children(node: Node) -> bool:
    return all(c.kind == TEXT for c in node.children)


def _has_text_children(node: Node) -> bool:
    return any(c.kind == TEXT and (c.text or "").strip() for c in node.children)


def _write_pretty(node: Node, out: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if node.kind == DOCUMENT:
        for child in node.children:
            _write_pretty(child, out, depth, indent)
        return
    if node.kind == TEXT:
        text = (node.text or "").strip()
        if text:
            out.append(f"{pad}{escape_text(text)}\n")
        return
    attrs = "".join(f' {k}="{escape_attribute(v)}"' for k, v in node.attrs.items())
    if not node.children:
        out.append(f"{pad}<{node.tag}{attrs}/>\n")
    elif _only_text_children(node):
        value = escape_text(node.string_value().strip())
        out.append(f"{pad}<{node.tag}{attrs}>{value}</{node.tag}>\n")
    elif _has_text_children(node):
        out.append(f"{pad}{serialize(node)}\n")
    else:
        out.append(f"{pad}<{node.tag}{attrs}>\n")
        for child in node.children:
            _write_pretty(child, out, depth + 1, indent)
        out.append(f"{pad}</{node.tag}>\n")
