"""Succinct binary storage for documents (the reference-[22] theme).

The NoK paper this work builds on ("A Succinct Physical Storage Scheme
for Efficient Evaluation of Path Queries in XML", the authors' own
reference [22]) stores documents as a compact structure stream so that
sequential scans — the access method every NoK matcher uses — read far
fewer bytes than the XML text.  This module provides that storage
story for the repository:

* a **tag dictionary** (each distinct name stored once),
* a **structure stream** of variable-length-encoded opcodes
  (open-element with tag id / text with a string-table id / close),
* a **string table** for text and attribute values.

``dump`` serializes a :class:`~repro.xmlkit.tree.Document` to bytes and
``load`` rebuilds it — including all region labels, which are
recomputed by the ordinary :class:`DocumentBuilder` on load, so a
loaded document is indistinguishable from a parsed one (the round-trip
tests assert byte-identical re-serialization).

The format is deliberately simple (no compression library, pure
varints) — the point is the *shape*: structure separated from content,
tags dictionary-encoded, one sequential read to reconstruct or scan.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ReproError
from repro.xmlkit.tree import ELEMENT, TEXT, Document, DocumentBuilder, Node

__all__ = ["MAGIC", "dump", "load", "StorageError"]

#: File magic of the succinct binary format (format sniffing
#: for :func:`repro.connect`).
MAGIC = b"BTRX1\n"
_MAGIC = MAGIC

# Structure-stream opcodes.
_OP_OPEN = 0          # + tag id varint + attr count + (name id, value id)*
_OP_TEXT = 1          # + string id varint
_OP_CLOSE = 2


class StorageError(ReproError):
    """Raised for malformed binary documents."""


# ----------------------------------------------------------------------
# Varint primitives (LEB128, unsigned).
# ----------------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise StorageError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise StorageError("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise StorageError("varint too long")

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise StorageError("truncated payload")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def eof(self) -> bool:
        return self.pos >= len(self.data)


# ----------------------------------------------------------------------
# Dump.
# ----------------------------------------------------------------------

def dump(doc: Document) -> bytes:
    """Serialize a document to the succinct binary form."""
    tags: dict[str, int] = {}
    strings: dict[str, int] = {}

    def tag_id(name: str) -> int:
        if name not in tags:
            tags[name] = len(tags)
        return tags[name]

    def string_id(value: str) -> int:
        if value not in strings:
            strings[value] = len(strings)
        return strings[value]

    structure = bytearray()
    for node, entering in _events(doc):
        if node.kind == TEXT:
            if entering:
                _write_varint(structure, _OP_TEXT)
                _write_varint(structure, string_id(node.text or ""))
            continue
        if entering:
            _write_varint(structure, _OP_OPEN)
            _write_varint(structure, tag_id(node.tag or ""))
            _write_varint(structure, len(node.attrs))
            for name, value in node.attrs.items():
                _write_varint(structure, string_id(name))
                _write_varint(structure, string_id(value))
        else:
            _write_varint(structure, _OP_CLOSE)

    out = bytearray(_MAGIC)
    _write_varint(out, len(tags))
    for name in tags:  # dict preserves insertion order == id order
        encoded = name.encode()
        _write_varint(out, len(encoded))
        out.extend(encoded)
    _write_varint(out, len(strings))
    for value in strings:
        encoded = value.encode()
        _write_varint(out, len(encoded))
        out.extend(encoded)
    _write_varint(out, len(structure))
    out.extend(structure)
    return bytes(out)


def _events(doc: Document) -> Iterator[tuple[Node, bool]]:
    """(node, entering) pairs in document order, element scope nested."""
    def visit(node: Node) -> Iterator[tuple[Node, bool]]:
        yield node, True
        for child in node.children:
            yield from visit(child)
        if node.kind == ELEMENT:
            yield node, False

    root = doc.root
    if root is None:
        raise StorageError("document has no root element")
    yield from visit(root)


# ----------------------------------------------------------------------
# Load.
# ----------------------------------------------------------------------

def load(data: bytes) -> Document:
    """Rebuild a document from its binary form (labels recomputed)."""
    if not data.startswith(_MAGIC):
        raise StorageError("not a BlossomTree binary document")
    reader = _Reader(data[len(_MAGIC):])

    n_tags = reader.varint()
    tags = [reader.take(reader.varint()).decode("utf-8") for _ in range(n_tags)]
    n_strings = reader.varint()
    strings = [reader.take(reader.varint()).decode("utf-8")
               for _ in range(n_strings)]

    length = reader.varint()
    body = _Reader(reader.take(length))

    builder = DocumentBuilder()
    depth = 0
    while not body.eof():
        opcode = body.varint()
        if opcode == _OP_OPEN:
            tag = _lookup(tags, body.varint(), "tag")
            n_attrs = body.varint()
            attrs = {}
            for _ in range(n_attrs):
                name = _lookup(strings, body.varint(), "attribute name")
                value = _lookup(strings, body.varint(), "attribute value")
                attrs[name] = value
            builder.start_element(tag, attrs or None)
            depth += 1
        elif opcode == _OP_TEXT:
            builder.text(_lookup(strings, body.varint(), "text"))
        elif opcode == _OP_CLOSE:
            if depth == 0:
                raise StorageError("unbalanced close opcode")
            builder.end_element()
            depth -= 1
        else:
            raise StorageError(f"unknown opcode {opcode}")
    if depth != 0:
        raise StorageError("unbalanced structure stream")
    try:
        return builder.finish()
    except ValueError as exc:
        raise StorageError(str(exc)) from exc


def _lookup(table: list[str], index: int, what: str) -> str:
    if index >= len(table):
        raise StorageError(f"{what} id {index} out of range")
    return table[index]
