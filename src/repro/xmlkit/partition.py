"""Dewey-contiguous subtree partitioning for parallel scans.

Theorem 1 of the paper guarantees that NoK pattern matching over a
sequential scan emits matches in document order.  Because the node
arena is stored in pre-order, every subtree occupies one contiguous
``nid`` range — so a document can be cut into contiguous partitions
whose concatenation is exactly the serial scan order.  Matching each
partition independently and concatenating the per-NoK match lists in
partition order therefore reproduces the serial result bit for bit,
with no re-sort (see DESIGN.md, "Subtree partitioning").

The partitioner aligns cuts to subtree boundaries (Dewey-contiguous
runs): a partition never starts in the middle of a top-level subtree
unless that subtree was explicitly *split*.  Splitting is the skew
escape hatch — a document whose root has a single giant child (one
top-level subtree holding nearly every node) would otherwise collapse
to one partition; an oversized subtree is opened up and its child runs
are packed instead, recursively.

Match correctness never depends on the cut positions: the NoK matcher
navigates a candidate's subtree through child pointers, not through the
scan, so a candidate near a partition boundary still sees its whole
subtree.  Partition boundaries only decide which scan delivers a
candidate — and every ``nid`` is covered by exactly one partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import REGISTRY
from repro.xmlkit.stats import DocumentStats
from repro.xmlkit.tree import Document, Node

__all__ = ["Partition", "partition_document", "DEFAULT_MIN_PARTITION_NODES"]

_SPLITS = REGISTRY.counter(
    "repro_partition_splits_total",
    "Oversized subtrees split into child runs by the partitioner")

#: Below this many arena nodes per partition the per-task overhead
#: (executor hand-off, private counters, result merge) dominates any
#: benefit, so the partitioner refuses to cut finer by default.
DEFAULT_MIN_PARTITION_NODES = 256


@dataclass(frozen=True)
class Partition:
    """One contiguous ``nid`` range of the document arena.

    ``stop_nid`` is exclusive, matching
    :class:`~repro.xmlkit.storage.SequentialScan` range semantics.
    Partitions produced by :func:`partition_document` are ordered,
    disjoint, and tile ``[0, len(doc.nodes))`` exactly.
    """

    index: int
    start_nid: int
    stop_nid: int

    @property
    def n_nodes(self) -> int:
        return self.stop_nid - self.start_nid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Partition {self.index} "
                f"[{self.start_nid}, {self.stop_nid}) n={self.n_nodes}>")


def partition_document(doc: Document, parallelism: int,
                       stats: DocumentStats | None = None,
                       min_nodes: int = DEFAULT_MIN_PARTITION_NODES,
                       ) -> list[Partition]:
    """Cut ``doc`` into at most ``parallelism`` contiguous partitions.

    The target partition size is stats-driven: ``n_nodes`` comes from
    the precomputed :class:`~repro.xmlkit.stats.DocumentStats` when
    available (serving snapshots carry them), falling back to the arena
    length.  Runs are subtree-aligned; a run larger than the target is
    split into the subtree root's own slot plus its child runs
    (recursively), which handles skewed documents whose root has one
    dominant child.

    Always returns at least one partition; with ``parallelism <= 1`` or
    a document smaller than ``min_nodes`` the single partition covers
    the whole arena, making the parallel operator degenerate to the
    serial scan.
    """
    n_nodes = len(doc.nodes) if stats is None else max(stats.n_nodes,
                                                       len(doc.nodes))
    if parallelism <= 1 or doc.root is None or n_nodes <= min_nodes:
        return [Partition(0, 0, len(doc.nodes))]

    target = max(min_nodes, -(-n_nodes // parallelism))  # ceil division

    # Collect subtree-aligned runs: (start, stop) ranges, in order,
    # tiling [0, len(doc.nodes)).  The synthetic document node (nid 0)
    # and the document element's own slot form the leading run; every
    # other run is a child subtree — split recursively while oversized.
    runs: list[tuple[int, int]] = [(0, doc.root.nid + 1)]
    _collect_runs(doc.root, target, runs)

    # Greedily pack consecutive runs into partitions of ~target nodes.
    partitions: list[Partition] = []
    start = 0
    size = 0
    for run_start, run_stop in runs:
        size += run_stop - run_start
        if size >= target:
            partitions.append(Partition(len(partitions), start, run_stop))
            start = run_stop
            size = 0
    if size > 0 or not partitions:
        partitions.append(Partition(len(partitions), start, len(doc.nodes)))
    return partitions


def _collect_runs(node: Node, target: int,
                  runs: list[tuple[int, int]]) -> None:
    """Append the child runs of ``node`` (whose own slot is already
    covered by the caller), splitting any child subtree larger than
    ``target`` into its root slot plus grandchild runs."""
    for child in node.children:
        size = child.subtree_size()
        if size > target and child.children:
            _SPLITS.inc()
            runs.append((child.nid, child.nid + 1))
            _collect_runs(child, target, runs)
        else:
            runs.append((child.nid, child.nid + size))
