"""Flat struct-of-arrays document arena for cross-process scans.

A :class:`DocumentArena` is the columnar twin of the object tree in
:mod:`repro.xmlkit.tree`: one fixed-width column per node field (kind,
tag id, parent, first child, next sibling, region label) plus two
variable-length heaps (text content and attribute maps) and a tag-name
dictionary.  The whole arena serializes to **one contiguous buffer**
(magic ``BTRA1``, the columnar sibling of the ``BTRX1`` opcode stream in
:mod:`repro.xmlkit.binary`) so a snapshot can be written to a file once
and mapped **read-only** into worker processes with ``mmap`` — no
per-worker parse, no per-query pickling of the document.

Workers do not rebuild the object tree.  :class:`ArenaDocument` exposes
the familiar :class:`~repro.xmlkit.tree.Document` surface over the raw
columns, materializing :class:`ArenaNode` views lazily and exactly once
per slot (identity-stable, so ``parent.children.index(node)`` and
sibling binary searches behave like the built tree).  ``ArenaNode`` *is
a* :class:`~repro.xmlkit.tree.Node` — the NoK matcher, the XPath
evaluator and the six physical operators run on it unchanged — but its
``parent`` / ``children`` / ``attrs`` are read-only properties backed by
the columns, decoded on first touch.

Why this preserves Theorem 1 across processes: the columns are stored in
pre-order, node ids are pre-order ranks, and the region labels are
copied verbatim from the build — so document order, ancestorship and
subtree ranges are pure integer arithmetic over the buffer, identical in
every process that maps it.  A partition scan over the arena therefore
emits matches in exactly the order the serial object-tree scan would,
and partition-order concatenation reproduces the serial output bit for
bit (the differential suite in ``tests/test_process_backend.py`` pins
this, backend by backend).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import threading
from array import array
from collections.abc import Iterator

from repro.errors import ReproError
from repro.xmlkit.tree import DOCUMENT, ELEMENT, TEXT, Document, Node

__all__ = [
    "ArenaDocument",
    "ArenaNode",
    "DocumentArena",
    "arena_file_for",
    "release_arena",
]

#: Magic prefix of the serialized arena — the columnar sibling of the
#: ``BTRX1`` opcode-stream format.
MAGIC = b"BTRA1\n"

_HEADER = struct.Struct("<6sxxQQQ")  # magic, n_nodes, tag_blob_len, heap_len
_NO_PAYLOAD = -1

# Raw slot-storage descriptors of the shadowed Node fields.  ArenaNode
# overrides ``parent``/``children``/``attrs`` with properties; the
# original member descriptors keep working as hidden cache storage on
# the subclass instances.
_CHILDREN_SLOT = Node.__dict__["children"]
_ATTRS_SLOT = Node.__dict__["attrs"]


def _pad4(n: int) -> int:
    return (4 - n % 4) % 4


class DocumentArena:
    """The columnar snapshot: parallel columns plus heaps over one buffer.

    Build with :meth:`from_document`, serialize with :meth:`to_bytes`,
    reopen zero-copy with :meth:`from_buffer` (typically over an
    ``mmap``).  Column cells are little-endian ``int32``; string data
    stays raw UTF-8 in the heap and is sliced (not copied) until a node
    view actually decodes it.
    """

    __slots__ = ("n_nodes", "tag_names", "tag_ids", "kind", "tag_id",
                 "parent", "first_child", "next_sibling", "start", "end",
                 "level", "payload_off", "payload_len", "heap", "_buffer")

    def __init__(self) -> None:
        self.n_nodes = 0
        #: tag dictionary: id -> name and name -> id.
        self.tag_names: list[str] = []
        self.tag_ids: dict[str, int] = {}
        self.kind: bytes | memoryview = b""
        self.tag_id: array | memoryview = array("i")
        self.parent: array | memoryview = array("i")
        self.first_child: array | memoryview = array("i")
        self.next_sibling: array | memoryview = array("i")
        self.start: array | memoryview = array("i")
        self.end: array | memoryview = array("i")
        self.level: array | memoryview = array("i")
        self.payload_off: array | memoryview = array("i")
        self.payload_len: array | memoryview = array("i")
        self.heap: bytes | memoryview = b""
        #: The backing buffer (mmap or bytes) a zero-copy arena views;
        #: held so the mapping outlives every column view.
        self._buffer: object | None = None

    # ------------------------------------------------------------------
    # Building.
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, doc: Document) -> DocumentArena:
        """Flatten a built object tree into columns (one pass)."""
        arena = cls()
        n = len(doc.nodes)
        arena.n_nodes = n
        kind = bytearray(n)
        tag_id = array("i", bytes(4 * n))
        parent = array("i", bytes(4 * n))
        first_child = array("i", bytes(4 * n))
        next_sibling = array("i", bytes(4 * n))
        start = array("i", bytes(4 * n))
        end = array("i", bytes(4 * n))
        level = array("i", bytes(4 * n))
        payload_off = array("i", bytes(4 * n))
        payload_len = array("i", bytes(4 * n))
        heap = bytearray()
        tag_ids = arena.tag_ids
        tag_names = arena.tag_names
        for node in doc.nodes:
            nid = node.nid
            kind[nid] = node.kind
            if node.tag is None:
                tag_id[nid] = -1
            else:
                tid = tag_ids.get(node.tag)
                if tid is None:
                    tid = tag_ids[node.tag] = len(tag_names)
                    tag_names.append(node.tag)
                tag_id[nid] = tid
            parent[nid] = node.parent.nid if node.parent is not None else -1
            kids = node.children
            first_child[nid] = kids[0].nid if kids else -1
            for a, b in zip(kids, kids[1:]):
                next_sibling[a.nid] = b.nid
            if kids:
                next_sibling[kids[-1].nid] = -1
            start[nid] = node.start
            end[nid] = node.end
            level[nid] = node.level
            payload: bytes | None = None
            if node.kind == TEXT:
                payload = (node.text or "").encode("utf-8")
            elif node.kind == ELEMENT and node.attrs:
                payload = json.dumps(node.attrs,
                                     ensure_ascii=False).encode("utf-8")
            if payload is None:
                payload_off[nid] = _NO_PAYLOAD
                payload_len[nid] = 0
            else:
                payload_off[nid] = len(heap)
                payload_len[nid] = len(payload)
                heap.extend(payload)
        arena.kind = bytes(kind)
        arena.tag_id = tag_id
        arena.parent = parent
        arena.first_child = first_child
        arena.next_sibling = next_sibling
        arena.start = start
        arena.end = end
        arena.level = level
        arena.payload_off = payload_off
        arena.payload_len = payload_len
        arena.heap = bytes(heap)
        return arena

    # ------------------------------------------------------------------
    # Serialization: one contiguous buffer.
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a single contiguous buffer (``BTRA1`` layout)."""
        tag_blob = b"\x00".join(name.encode("utf-8")
                                for name in self.tag_names)
        out = bytearray()
        out += _HEADER.pack(MAGIC, self.n_nodes, len(tag_blob),
                            len(bytes(self.heap)))
        out += tag_blob
        out += b"\x00" * _pad4(len(out))
        out += bytes(self.kind)
        out += b"\x00" * _pad4(self.n_nodes)
        for column in (self.tag_id, self.parent, self.first_child,
                       self.next_sibling, self.start, self.end, self.level,
                       self.payload_off, self.payload_len):
            out += bytes(bytearray(column) if isinstance(column, memoryview)
                         else column.tobytes())
        out += bytes(self.heap)
        return bytes(out)

    @classmethod
    def from_buffer(cls, buf: bytes | bytearray | mmap.mmap
                    ) -> DocumentArena:
        """Reopen a serialized arena **zero-copy**: every column is a
        ``memoryview`` cast over ``buf`` (typically a read-only mmap),
        so attaching costs O(tag-dictionary), not O(document)."""
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise ReproError("arena buffer is truncated")
        magic, n_nodes, tag_blob_len, heap_len = _HEADER.unpack_from(view, 0)
        if magic != MAGIC:
            raise ReproError(
                f"not a BTRA1 arena (bad magic {magic!r})")
        arena = cls()
        arena._buffer = buf
        arena.n_nodes = n_nodes
        pos = _HEADER.size
        tag_blob = bytes(view[pos:pos + tag_blob_len])
        arena.tag_names = ([part.decode("utf-8")
                            for part in tag_blob.split(b"\x00")]
                           if tag_blob else [])
        arena.tag_ids = {name: tid
                         for tid, name in enumerate(arena.tag_names)}
        pos += tag_blob_len
        pos += _pad4(pos)
        arena.kind = view[pos:pos + n_nodes]
        pos += n_nodes + _pad4(n_nodes)
        if pos + 9 * 4 * n_nodes + heap_len > len(view):
            raise ReproError("arena buffer is truncated")
        columns = []
        for _ in range(9):
            columns.append(view[pos:pos + 4 * n_nodes].cast("i"))
            pos += 4 * n_nodes
        (arena.tag_id, arena.parent, arena.first_child, arena.next_sibling,
         arena.start, arena.end, arena.level, arena.payload_off,
         arena.payload_len) = columns
        if pos + heap_len > len(view):
            raise ReproError("arena buffer is truncated (heap)")
        arena.heap = view[pos:pos + heap_len]
        return arena

    # ------------------------------------------------------------------
    # Decoding helpers for node views.
    # ------------------------------------------------------------------

    def tag_of(self, nid: int) -> str | None:
        tid = self.tag_id[nid]
        return self.tag_names[tid] if tid >= 0 else None

    def payload_bytes(self, nid: int) -> bytes | None:
        off = self.payload_off[nid]
        if off < 0:
            return None
        return bytes(self.heap[off:off + self.payload_len[nid]])

    def document(self) -> ArenaDocument:
        """A lazily-materializing :class:`Document` view over this arena."""
        return ArenaDocument(self)


class ArenaNode(Node):
    """A thin lazily-materialized :class:`Node` view over arena columns.

    Scalar fields (kind, tag, text, region label) are decoded at
    materialization; ``parent``/``children``/``attrs`` are read-only
    properties resolved against the columns on first access (children
    and attrs cache their decoded value in the shadowed slot storage).
    The view is created at most once per slot by its owning
    :class:`ArenaDocument`, so node identity works exactly as in the
    object tree.
    """

    __slots__ = ()

    def __init__(self, doc: ArenaDocument, nid: int) -> None:
        # Deliberately does NOT call Node.__init__: parent/children/attrs
        # are shadowed by properties here and must stay unset until the
        # columns resolve them.
        arena = doc.arena
        self.doc = doc
        self.nid = nid
        self.kind = arena.kind[nid]
        self.tag = arena.tag_of(nid)
        if self.kind == TEXT:
            payload = arena.payload_bytes(nid)
            self.text = payload.decode("utf-8") if payload is not None else ""
        else:
            self.text = None
        self.start = arena.start[nid]
        self.end = arena.end[nid]
        self.level = arena.level[nid]
        self._string_value = None

    @property  # type: ignore[override]
    def parent(self) -> Node | None:
        pid = self.doc.arena.parent[self.nid]
        return self.doc.nodes[pid] if pid >= 0 else None

    @property  # type: ignore[override]
    def children(self) -> list[Node]:
        try:
            return _CHILDREN_SLOT.__get__(self, ArenaNode)
        except AttributeError:
            arena = self.doc.arena
            nodes = self.doc.nodes
            kids: list[Node] = []
            child = arena.first_child[self.nid]
            while child >= 0:
                kids.append(nodes[child])
                child = arena.next_sibling[child]
            _CHILDREN_SLOT.__set__(self, kids)
            return kids

    @property  # type: ignore[override]
    def attrs(self) -> dict[str, str]:
        try:
            return _ATTRS_SLOT.__get__(self, ArenaNode)
        except AttributeError:
            attrs: dict[str, str] = {}
            if self.kind == ELEMENT:
                payload = self.doc.arena.payload_bytes(self.nid)
                if payload is not None:
                    attrs = json.loads(payload.decode("utf-8"))
            _ATTRS_SLOT.__set__(self, attrs)
            return attrs

    def first_child(self) -> Node | None:  # type: ignore[override]
        child = self.doc.arena.first_child[self.nid]
        return self.doc.nodes[child] if child >= 0 else None

    def following_sibling(self) -> Node | None:  # type: ignore[override]
        sib = self.doc.arena.next_sibling[self.nid]
        return self.doc.nodes[sib] if sib >= 0 else None


class _LazyNodeList:
    """Identity-stable lazy ``doc.nodes``: one ArenaNode per slot, built
    on first index."""

    __slots__ = ("_doc", "_cache")

    def __init__(self, doc: ArenaDocument, n_nodes: int) -> None:
        self._doc = doc
        self._cache: list[ArenaNode | None] = [None] * n_nodes

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index: int | slice
                    ) -> Node | list[Node]:
        if isinstance(index, slice):
            return [self[i] for i  # type: ignore[misc]
                    in range(*index.indices(len(self._cache)))]
        if index < 0:
            index += len(self._cache)
        node = self._cache[index]
        if node is None:
            node = self._cache[index] = ArenaNode(self._doc, index)
        return node

    def __iter__(self) -> Iterator[Node]:
        for i in range(len(self._cache)):
            yield self[i]  # type: ignore[misc]


class ArenaDocument(Document):
    """A :class:`Document` whose node list materializes lazily from a
    :class:`DocumentArena` — what a worker process sees after mmap."""

    def __init__(self, arena: DocumentArena) -> None:
        # Deliberately does not call Document.__init__ (which would
        # build an object-tree document node).
        self.arena = arena
        self.nodes = _LazyNodeList(  # type: ignore[assignment]
            self, arena.n_nodes)
        self._tag_lists = None
        self.root = None
        root = arena.first_child[0] if arena.n_nodes else -1
        while root >= 0:
            if arena.kind[root] == ELEMENT:
                self.root = self.nodes[root]  # type: ignore[assignment]
                break
            root = arena.next_sibling[root]

    def materialized(self) -> int:
        """Node views built so far (tests/introspection)."""
        nodes = self.nodes
        assert isinstance(nodes, _LazyNodeList)
        return sum(1 for node in nodes._cache if node is not None)


# ----------------------------------------------------------------------
# Snapshot file lifecycle: one arena file per Document, shared by every
# worker that attaches it; released when the owning database closes or
# the serving snapshot retires.
# ----------------------------------------------------------------------

_ARENA_ATTR = "_arena_path"
_arena_lock = threading.Lock()


def arena_file_for(doc: Document) -> str:
    """Serialize ``doc``'s arena to a temp file once; return its path.

    The path is cached on the document, so every query against the same
    snapshot shares one file (workers attach it by path and keep the
    mapping for the snapshot's lifetime).
    """
    path = getattr(doc, _ARENA_ATTR, None)
    if path is not None:
        return path  # type: ignore[return-value]
    with _arena_lock:
        path = getattr(doc, _ARENA_ATTR, None)
        if path is not None:
            return path  # type: ignore[return-value]
        fd, new_path = tempfile.mkstemp(prefix="repro-arena-",
                                        suffix=".btra")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(DocumentArena.from_document(doc).to_bytes())
        except BaseException:
            os.unlink(new_path)
            raise
        setattr(doc, _ARENA_ATTR, new_path)
        return new_path


def release_arena(doc: Document) -> None:
    """Unlink the document's arena file, if one was ever written.

    Workers still holding the mapping keep reading safely (the inode
    lives until the last map drops); new attaches are impossible, which
    is the point — the snapshot is gone.
    """
    with _arena_lock:
        path = getattr(doc, _ARENA_ATTR, None)
        if path is None:
            return
        setattr(doc, _ARENA_ATTR, None)
    try:
        os.unlink(path)
    except OSError:
        pass
