"""XML tree data model.

This module defines the in-memory document representation used by every
layer above it: the navigational NoK matcher, the structural-join
operators, the XPath/XQuery evaluators and the serializer.

Design notes
------------
* Nodes are small ``__slots__`` objects kept in a single document-order
  list on the :class:`Document`; the list position *is* the pre-order rank,
  which makes document-order comparison an integer comparison.
* Every node carries an extended pre/post **region label**
  ``(start, end, level)`` assigned at build time.  ``u`` is an ancestor of
  ``v`` iff ``u.start < v.start and v.end < u.end``.  This is the classic
  encoding used by structural joins and TwigStack (Section 2.1 of the
  paper).
* Elements, text nodes and the document root share one node class,
  distinguished by ``kind``.  Attributes are stored as a dict on the
  element; the pattern-matching subset of the paper never navigates *into*
  attributes structurally, but XPath ``@name`` tests are supported.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "DOCUMENT",
    "ELEMENT",
    "TEXT",
    "Node",
    "Document",
    "DocumentBuilder",
]

# Node kinds.  Plain ints (not an Enum) because kind checks sit on the
# hottest paths of the scan operators.
DOCUMENT = 0
ELEMENT = 1
TEXT = 2

_KIND_NAMES = {DOCUMENT: "document", ELEMENT: "element", TEXT: "text"}


class Node:
    """A single node of an XML tree.

    Attributes
    ----------
    doc:
        Owning :class:`Document`.
    nid:
        Pre-order rank; index of this node in ``doc.nodes``.  Comparing
        ``nid`` values compares document order.
    kind:
        One of :data:`DOCUMENT`, :data:`ELEMENT`, :data:`TEXT`.
    tag:
        Element tag name; ``None`` for text nodes, ``"#document"`` for the
        document node.
    text:
        Character content for text nodes; ``None`` otherwise.
    attrs:
        Attribute dict for elements (empty dict when absent).
    parent:
        Parent node, ``None`` for the document node.
    children:
        Child nodes in document order.
    start, end, level:
        Region label: ``start`` and ``end`` bracket the subtree in a global
        counter sequence; ``level`` is the depth (document node = 0).
    """

    __slots__ = (
        "doc",
        "nid",
        "kind",
        "tag",
        "text",
        "attrs",
        "parent",
        "children",
        "start",
        "end",
        "level",
        "_string_value",
    )

    def __init__(self, doc: Document, nid: int, kind: int, tag: str | None,
                 text: str | None = None):
        self.doc = doc
        self.nid = nid
        self.kind = kind
        self.tag = tag
        self.text = text
        self.attrs: dict[str, str] = {}
        self.parent: Node | None = None
        self.children: list[Node] = []
        self.start = -1
        self.end = -1
        self.level = -1
        self._string_value: str | None = None

    # ------------------------------------------------------------------
    # Navigation primitives (used by Algorithm 2's depth-first traversal).
    # ------------------------------------------------------------------

    def first_child(self) -> Node | None:
        """Return the first child in document order, or ``None``."""
        return self.children[0] if self.children else None

    def following_sibling(self) -> Node | None:
        """Return the next sibling in document order, or ``None``."""
        parent = self.parent
        if parent is None:
            return None
        siblings = parent.children
        # Locate self among siblings by document order (binary search on nid).
        lo, hi = 0, len(siblings) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if siblings[mid].nid < self.nid:
                lo = mid + 1
            elif siblings[mid].nid > self.nid:
                hi = mid - 1
            else:
                return siblings[mid + 1] if mid + 1 < len(siblings) else None
        return None

    def element_children(self) -> Iterator[Node]:
        """Iterate child *elements* only (skipping text nodes)."""
        for child in self.children:
            if child.kind == ELEMENT:
                yield child

    def next_in_document(self) -> Node | None:
        """Return the next node in document order (pre-order successor)."""
        nxt = self.nid + 1
        nodes = self.doc.nodes
        return nodes[nxt] if nxt < len(nodes) else None

    # ------------------------------------------------------------------
    # Structural predicates via region labels.
    # ------------------------------------------------------------------

    def is_ancestor_of(self, other: Node) -> bool:
        """True iff ``self`` is a proper ancestor of ``other``."""
        return self.start < other.start and other.end < self.end

    def is_descendant_of(self, other: Node) -> bool:
        """True iff ``self`` is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    def is_parent_of(self, other: Node) -> bool:
        """True iff ``self`` is the parent of ``other``."""
        return other.parent is self

    def precedes(self, other: Node) -> bool:
        """Document-order ``<<`` comparison (self strictly before other)."""
        return self.nid < other.nid

    def subtree(self) -> Iterator[Node]:
        """Iterate this node and all descendants in document order."""
        nodes = self.doc.nodes
        stop = self.nid + self.subtree_size()
        for i in range(self.nid, stop):
            yield nodes[i]

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (self included)."""
        # Region counters advance by 1 at each entry and exit, so a subtree
        # with k nodes spans exactly 2k counter values.
        return (self.end - self.start + 1) // 2

    def descendants(self) -> Iterator[Node]:
        """Iterate proper descendants in document order."""
        it = self.subtree()
        next(it)  # drop self
        return it

    def ancestors(self) -> Iterator[Node]:
        """Iterate proper ancestors from parent up to the document node."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # ------------------------------------------------------------------
    # Values.
    # ------------------------------------------------------------------

    def string_value(self) -> str:
        """XPath string value: concatenated descendant text (cached)."""
        if self._string_value is None:
            if self.kind == TEXT:
                self._string_value = self.text or ""
            else:
                parts = [n.text or "" for n in self.subtree() if n.kind == TEXT]
                self._string_value = "".join(parts)
        return self._string_value

    def typed_value(self) -> object:
        """Best-effort numeric interpretation of the string value.

        Returns a ``float`` when the trimmed string value parses as a
        number, otherwise the trimmed string itself.  This mirrors XPath
        1.0-style untyped comparison without dragging in a schema system.
        """
        raw = self.string_value().strip()
        try:
            return float(raw)
        except ValueError:
            return raw

    def dewey(self) -> tuple[int, ...]:
        """Dewey label of this node: 1-based child ordinals from the root.

        The paper uses Dewey IDs to address *pattern-tree* returning nodes;
        document-node Dewey labels are provided for diagnostics, examples
        and tests.
        """
        path: list[int] = []
        node: Node | None = self
        while node is not None and node.parent is not None:
            path.append(node.parent.children.index(node) + 1)
            node = node.parent
        path.reverse()
        return tuple(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = _KIND_NAMES[self.kind]
        if self.kind == TEXT:
            snippet = (self.text or "")[:20]
            return f"<Node {kind} {snippet!r} nid={self.nid}>"
        return f"<Node {kind} {self.tag} nid={self.nid} region=({self.start},{self.end},{self.level})>"


def deep_equal(a: Node | None, b: Node | None) -> bool:
    """XQuery ``fn:deep-equal`` over single nodes or ``None``.

    Two ``None`` values (empty sequences) are deep-equal; a node is never
    deep-equal to an empty sequence.  Elements are deep-equal when their
    tags, attribute maps, and normalized child sequences are pairwise
    deep-equal.  Whitespace-only text nodes are ignored, matching how the
    paper's Example 2 compares ``author`` subtrees.
    """
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    if a.kind != b.kind:
        return False
    if a.kind == TEXT:
        return (a.text or "").strip() == (b.text or "").strip()
    if a.tag != b.tag or a.attrs != b.attrs:
        return False
    a_kids = [c for c in a.children if not _ignorable(c)]
    b_kids = [c for c in b.children if not _ignorable(c)]
    if len(a_kids) != len(b_kids):
        return False
    return all(deep_equal(x, y) for x, y in zip(a_kids, b_kids, strict=True))


def deep_equal_sequences(xs: Iterable[Node | None], ys: Iterable[Node | None]) -> bool:
    """``fn:deep-equal`` over two node sequences (pairwise, same length)."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        return False
    return all(deep_equal(a, b) for a, b in zip(xs, ys, strict=True))


def _ignorable(node: Node) -> bool:
    return node.kind == TEXT and not (node.text or "").strip()


class Document:
    """An XML document: node arena plus derived access structures."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.root: Node | None = None  # document element
        doc_node = Node(self, 0, DOCUMENT, "#document")
        doc_node.level = 0
        self.nodes.append(doc_node)
        self._tag_lists: dict[str, list[Node]] | None = None

    @property
    def document_node(self) -> Node:
        """The synthetic root above the document element."""
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def elements(self) -> Iterator[Node]:
        """All element nodes in document order."""
        return (n for n in self.nodes if n.kind == ELEMENT)

    def elements_by_tag(self, tag: str) -> list[Node]:
        """Document-ordered list of elements with the given tag (cached).

        This is the access path the tag-name index (:mod:`repro.xmlkit.index`)
        wraps; building it lazily keeps pure-navigation workloads free of
        index construction cost.
        """
        if self._tag_lists is None:
            table: dict[str, list[Node]] = {}
            for node in self.nodes:
                if node.kind == ELEMENT:
                    table.setdefault(node.tag, []).append(node)  # type: ignore[arg-type]
            self._tag_lists = table
        return self._tag_lists.get(tag, [])

    def distinct_tags(self) -> list[str]:
        """Sorted list of distinct element tag names."""
        if self._tag_lists is None:
            self.elements_by_tag("")  # force table construction
        assert self._tag_lists is not None
        return sorted(self._tag_lists)


class DocumentBuilder:
    """Incremental builder used by the parser and the data generators.

    The builder enforces well-formedness of the nesting it is given and
    assigns pre-order ranks, levels and region labels as it goes, so a
    document is fully labeled the moment :meth:`finish` returns.
    """

    def __init__(self) -> None:
        self.doc = Document()
        self._stack: list[Node] = [self.doc.document_node]
        self._counter = 0
        doc_node = self.doc.document_node
        doc_node.start = self._counter
        self._counter += 1

    def start_element(self, tag: str, attrs: dict[str, str] | None = None) -> Node:
        """Open an element as a child of the current open element."""
        parent = self._stack[-1]
        if parent.kind == DOCUMENT and self.doc.root is not None:
            raise ValueError("document may have only one root element")
        node = Node(self.doc, len(self.doc.nodes), ELEMENT, tag)
        if attrs:
            node.attrs = dict(attrs)
        node.parent = parent
        node.level = parent.level + 1
        node.start = self._counter
        self._counter += 1
        parent.children.append(node)
        self.doc.nodes.append(node)
        self._stack.append(node)
        if self.doc.root is None and parent.kind == DOCUMENT:
            self.doc.root = node
        return node

    def end_element(self) -> Node:
        """Close the most recently opened element."""
        if len(self._stack) <= 1:
            raise ValueError("end_element with no open element")
        node = self._stack.pop()
        node.end = self._counter
        self._counter += 1
        return node

    def text(self, content: str) -> Node | None:
        """Append a text node to the current open element.

        Adjacent text is merged into one node, and text directly under the
        document node is rejected unless it is whitespace (which is
        silently dropped), matching XML well-formedness rules.
        """
        parent = self._stack[-1]
        if parent.kind == DOCUMENT:
            if content.strip():
                raise ValueError("character data outside the document element")
            return None
        if parent.children and parent.children[-1].kind == TEXT:
            last = parent.children[-1]
            last.text = (last.text or "") + content
            last._string_value = None
            return last
        node = Node(self.doc, len(self.doc.nodes), TEXT, None, content)
        node.parent = parent
        node.level = parent.level + 1
        node.start = self._counter
        self._counter += 1
        node.end = self._counter
        self._counter += 1
        parent.children.append(node)
        self.doc.nodes.append(node)
        return node

    def element(self, tag: str, text: str | None = None,
                attrs: dict[str, str] | None = None) -> Node:
        """Convenience: open an element, add optional text, and close it."""
        node = self.start_element(tag, attrs)
        if text is not None:
            self.text(text)
        self.end_element()
        return node

    def finish(self) -> Document:
        """Finalize labels and return the completed document."""
        if len(self._stack) != 1:
            open_tags = [n.tag for n in self._stack[1:]]
            raise ValueError(f"unclosed elements at finish: {open_tags}")
        doc_node = self.doc.document_node
        doc_node.end = self._counter
        self._counter += 1
        if self.doc.root is None:
            raise ValueError("document has no root element")
        return self.doc
