"""Hand-written XML tokenizer.

Produces a flat stream of lexical events from XML text.  The scanner
covers the subset of XML needed for data-oriented documents: elements,
attributes (both quote styles), character data with the five predefined
entities plus numeric character references, CDATA sections, comments,
processing instructions, an optional XML declaration, and an internal
DOCTYPE that is skipped.  Namespaces are treated as plain colonized
names.

The tokenizer is deliberately independent of the tree model: the
streaming NoK scan in :mod:`repro.xmlkit.storage` and the SAX driver in
:mod:`repro.xmlkit.sax` consume the same event stream without building a
tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import XMLSyntaxError

__all__ = [
    "START",
    "END",
    "CHARS",
    "COMMENT",
    "PI",
    "Event",
    "tokenize",
]

# Event kinds.
START = "start"      # payload: (tag, attrs)
END = "end"          # payload: tag
CHARS = "chars"      # payload: text
COMMENT = "comment"  # payload: text
PI = "pi"            # payload: (target, data)


@dataclass(frozen=True)
class Event:
    """One lexical event.

    ``kind`` is one of the module-level constants; ``value`` holds the
    payload described next to each constant.  ``line``/``column`` locate
    the event start in the source (1-based).
    """

    kind: str
    value: object
    line: int
    column: int


_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the raw text with line/column tracking."""

    __slots__ = ("text", "pos", "line", "col")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column."""
        chunk = self.text[self.pos:self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return chunk

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.line, self.col)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.advance(len(literal))

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek() in " \t\r\n":
            self.advance()

    def read_name(self) -> str:
        if self.eof() or self.peek() not in _NAME_START:
            raise self.error("expected a name")
        start = self.pos
        while not self.eof() and self.peek() in _NAME_CHARS:
            self.advance()
        return self.text[start:self.pos]

    def read_until(self, terminator: str, what: str) -> str:
        """Consume and return text up to (not including) ``terminator``."""
        idx = self.text.find(terminator, self.pos)
        if idx < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos:idx]
        self.advance(len(chunk))
        self.advance(len(terminator))
        return chunk


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    """Expand ``&name;`` and numeric character references in ``raw``."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        name = raw[i + 1:end]
        if name.startswith("#"):
            digits = name[2:] if name[1:2] in ("x", "X") else name[1:]
            base = 16 if name[1:2] in ("x", "X") else 10
            try:
                out.append(chr(int(digits, base)))
            except (ValueError, OverflowError) as exc:
                raise scanner.error(
                    f"invalid character reference &{name};") from exc
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _read_attributes(scanner: _Scanner) -> dict[str, str]:
    attrs: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attrs
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in "\"'":
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        value = scanner.read_until(quote, "attribute value")
        if name in attrs:
            raise scanner.error(f"duplicate attribute {name!r}")
        attrs[name] = _decode_entities(value, scanner)


def tokenize(text: str) -> Iterator[Event]:
    """Yield lexical :class:`Event` objects for an XML document string.

    The stream is *not* validated for balanced tags — that is the tree
    parser's job — but all lexical errors (bad names, unterminated
    constructs, stray ``<``) are raised here with positions.
    """
    scanner = _Scanner(text)
    # Optional XML declaration.
    if scanner.startswith("﻿"):
        scanner.advance()
    if scanner.startswith("<?xml"):
        scanner.advance(5)
        scanner.read_until("?>", "XML declaration")

    while not scanner.eof():
        line, col = scanner.line, scanner.col
        if scanner.peek() != "<":
            # Character data run.
            idx = scanner.text.find("<", scanner.pos)
            if idx < 0:
                idx = len(scanner.text)
            raw = scanner.text[scanner.pos:idx]
            scanner.advance(len(raw))
            yield Event(CHARS, _decode_entities(raw, scanner), line, col)
            continue

        if scanner.startswith("<!--"):
            scanner.advance(4)
            body = scanner.read_until("-->", "comment")
            if "--" in body:
                raise scanner.error("'--' not allowed inside a comment")
            yield Event(COMMENT, body, line, col)
        elif scanner.startswith("<![CDATA["):
            scanner.advance(9)
            body = scanner.read_until("]]>", "CDATA section")
            yield Event(CHARS, body, line, col)
        elif scanner.startswith("<!DOCTYPE"):
            _skip_doctype(scanner)
        elif scanner.startswith("<?"):
            scanner.advance(2)
            target = scanner.read_name()
            body = scanner.read_until("?>", "processing instruction").strip()
            yield Event(PI, (target, body), line, col)
        elif scanner.startswith("</"):
            scanner.advance(2)
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect(">")
            yield Event(END, name, line, col)
        else:
            scanner.expect("<")
            name = scanner.read_name()
            attrs = _read_attributes(scanner)
            scanner.skip_whitespace()
            if scanner.startswith("/>"):
                scanner.advance(2)
                yield Event(START, (name, attrs), line, col)
                yield Event(END, name, line, col)
            else:
                scanner.expect(">")
                yield Event(START, (name, attrs), line, col)


def _skip_doctype(scanner: _Scanner) -> None:
    """Consume a DOCTYPE declaration including an internal subset."""
    scanner.advance(len("<!DOCTYPE"))
    depth = 0
    while not scanner.eof():
        ch = scanner.peek()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            scanner.advance()
            return
        scanner.advance()
    raise scanner.error("unterminated DOCTYPE")
