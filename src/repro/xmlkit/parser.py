"""XML tree parser: token stream → :class:`~repro.xmlkit.tree.Document`.

Enforces well-formed nesting (matching end tags, a single document
element, no character data outside it) on top of the lexical layer in
:mod:`repro.xmlkit.tokenizer`.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import XMLSyntaxError
from repro.xmlkit.tokenizer import CHARS, COMMENT, END, PI, START, tokenize
from repro.xmlkit.tree import Document, DocumentBuilder

__all__ = ["parse", "parse_file"]


def parse(text: str) -> Document:
    """Parse an XML string into a fully labeled :class:`Document`.

    Raises :class:`~repro.errors.XMLSyntaxError` on lexical errors or
    ill-formed nesting.
    """
    builder = DocumentBuilder()
    open_tags: list[str] = []
    for event in tokenize(text):
        if event.kind == START:
            tag, attrs = event.value  # type: ignore[misc]
            try:
                builder.start_element(tag, attrs)
            except ValueError as exc:
                raise XMLSyntaxError(str(exc), event.line, event.column) from exc
            open_tags.append(tag)
        elif event.kind == END:
            if not open_tags:
                raise XMLSyntaxError(
                    f"end tag </{event.value}> with no open element",
                    event.line, event.column)
            expected = open_tags.pop()
            if expected != event.value:
                raise XMLSyntaxError(
                    f"mismatched end tag: expected </{expected}>, got </{event.value}>",
                    event.line, event.column)
            builder.end_element()
        elif event.kind == CHARS:
            try:
                builder.text(event.value)  # type: ignore[arg-type]
            except ValueError as exc:
                raise XMLSyntaxError(str(exc), event.line, event.column) from exc
        elif event.kind in (COMMENT, PI):
            continue  # not represented in the data model
    if open_tags:
        raise XMLSyntaxError(f"unclosed elements at end of input: {open_tags}")
    try:
        return builder.finish()
    except ValueError as exc:
        raise XMLSyntaxError(str(exc)) from exc


def parse_file(path: str | Path) -> Document:
    """Parse an XML file from disk."""
    return parse(Path(path).read_text(encoding="utf-8"))
