"""Sequential-scan access method with I/O accounting.

The NoK pattern-matching operator of the paper evaluates patterns "using
a single scan of the input" (Section 2.1).  This module models that
access method: a document-order node scan whose work is recorded in a
shared :class:`ScanCounters`.  The counters are what the ablation
benchmarks use to show that merging two NoK operators into one scan
halves the I/O (Section 4.2, technique 1), and that a bounded
nested-loop join touches far fewer nodes than a naive one (Section 4.3).

Counting *nodes delivered by a scan* rather than wall-clock time gives a
machine-independent proxy for the paper's I/O argument — the original
experiments equate one scan with one pass over the file on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from collections.abc import Iterator

from repro.errors import DNFError, QueryCancelledError, QueryTimeoutError
from repro.obs.metrics import REGISTRY
from repro.xmlkit.tree import ELEMENT, Document, Node

__all__ = ["CancellationToken", "ScanCounters", "SequentialScan"]

_BUDGET_TRIPS = REGISTRY.counter(
    "repro_budget_trips_total",
    "Sequential scans aborted by the work budget (DNF emulation)")

#: ``ScanCounters`` fields that configure a run rather than count work.
#: ``reset``/``snapshot``/``merge`` skip these (pinned by
#: ``tests/test_counters_contract.py``).
CONFIG_FIELDS = ("budget", "cancellation")


class CancellationToken:
    """Cooperative deadline/cancel flag threaded through operator loops.

    Physical operators call :meth:`checkpoint` from their scan loops;
    every ``stride`` calls the token checks its deadline and cancel flag
    and raises :class:`~repro.errors.QueryTimeoutError` or
    :class:`~repro.errors.QueryCancelledError`.  The stride keeps the
    hot-path cost at one integer increment per node; ``cancel()`` from
    another thread is observed within one stride.
    """

    __slots__ = ("deadline", "timeout_ms", "stride", "_cancelled", "_ticks")

    def __init__(self, timeout_ms: float | None = None,
                 stride: int = 256) -> None:
        self.timeout_ms = timeout_ms
        self.deadline = (time.monotonic() + timeout_ms / 1000.0
                         if timeout_ms is not None else None)
        self.stride = max(1, stride)
        self._cancelled = False
        self._ticks = 0

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise immediately if cancelled or past the deadline."""
        if self._cancelled:
            raise QueryCancelledError()
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise QueryTimeoutError(timeout_ms=self.timeout_ms)

    def checkpoint(self) -> None:
        """Cheap per-iteration check: full :meth:`check` every stride."""
        self._ticks += 1
        if self._ticks >= self.stride:
            self._ticks = 0
            self.check()


@dataclass
class ScanCounters:
    """Mutable work counters shared across operators in one query run.

    ``budget`` optionally caps ``nodes_scanned``: scans raise
    :class:`~repro.errors.DNFError` once the cap is exceeded, which is
    how the benchmark harness reproduces the paper's "DNF" entries
    deterministically instead of waiting out wall-clock timeouts.

    ``cancellation`` optionally carries a :class:`CancellationToken`;
    scans and operator loops checkpoint it, giving per-query deadlines
    and cooperative cancellation the same transport as the budget.

    ``reset``/``snapshot``/``merge`` are driven by the dataclass field
    set (everything except the :data:`CONFIG_FIELDS` configuration), so
    adding a counter field automatically keeps all three in sync — the
    contract ``tests/test_counters_contract.py`` pins down.
    """

    nodes_scanned: int = 0       # nodes delivered by sequential scans
    scans_started: int = 0       # number of full or partial scans opened
    comparisons: int = 0         # structural/value predicate evaluations
    intermediate_results: int = 0  # NestedLists buffered between operators
    peak_buffered: int = 0       # max NestedLists held in memory at once
    budget_trips: int = 0        # scans aborted by the budget (DNF)
    budget: int | None = None  # DNF threshold on nodes_scanned
    #: Cooperative deadline/cancel token; operators checkpoint it from
    #: their scan loops (configuration, like ``budget``).
    cancellation: CancellationToken | None = None

    def reset(self) -> None:
        for name in counter_fields():
            setattr(self, name, 0)

    def note_buffer(self, size: int) -> None:
        """Record the current buffered-result count, tracking the peak."""
        if size > self.peak_buffered:
            self.peak_buffered = size

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in counter_fields()}

    def merge(self, other: ScanCounters) -> None:
        """Fold another counter set into this one (peaks take the max)."""
        for name in counter_fields():
            if name == "peak_buffered":
                self.note_buffer(other.peak_buffered)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def trip_budget(self) -> None:
        """Record a budget violation (metric + counter) before raising."""
        self.budget_trips += 1
        _BUDGET_TRIPS.inc()


def counter_fields() -> tuple[str, ...]:
    """The counter field names (``CONFIG_FIELDS`` configure, not count)."""
    return tuple(f.name for f in fields(ScanCounters)
                 if f.name not in CONFIG_FIELDS)


class SequentialScan:
    """Document-order element scan over a document or a node range.

    Parameters
    ----------
    doc:
        The document to scan.
    counters:
        Shared work counters; every delivered node increments
        ``nodes_scanned``.
    start_nid, stop_nid:
        Pre-order rank range to scan (used by the bounded nested-loop
        join to restrict the inner scan to an outer node's subtree
        range).  ``stop_nid`` is exclusive; ``None`` means to the end.
    """

    def __init__(self, doc: Document, counters: ScanCounters | None = None,
                 start_nid: int = 0, stop_nid: int | None = None) -> None:
        self.doc = doc
        self.counters = counters if counters is not None else ScanCounters()
        self.start_nid = start_nid
        self.stop_nid = stop_nid if stop_nid is not None else len(doc.nodes)

    def __iter__(self) -> Iterator[Node]:
        """Yield element nodes in document order within the range."""
        self.counters.scans_started += 1
        nodes = self.doc.nodes
        counters = self.counters
        budget = counters.budget
        token = counters.cancellation
        for nid in range(self.start_nid, min(self.stop_nid, len(nodes))):
            node = nodes[nid]
            counters.nodes_scanned += 1
            if budget is not None and counters.nodes_scanned > budget:
                counters.trip_budget()
                raise DNFError("sequential scan exceeded the work budget",
                               budget=budget)
            if token is not None:
                token.checkpoint()
            if node.kind == ELEMENT:
                yield node

    def all_nodes(self) -> Iterator[Node]:
        """Yield every node kind (elements and text) within the range."""
        self.counters.scans_started += 1
        nodes = self.doc.nodes
        counters = self.counters
        budget = counters.budget
        token = counters.cancellation
        for nid in range(self.start_nid, min(self.stop_nid, len(nodes))):
            counters.nodes_scanned += 1
            if budget is not None and counters.nodes_scanned > budget:
                counters.trip_budget()
                raise DNFError("sequential scan exceeded the work budget",
                               budget=budget)
            if token is not None:
                token.checkpoint()
            yield nodes[nid]
