"""Tag-name index: per-tag, document-ordered element streams.

This is the access structure the join-based approaches assume
(Section 2.1): for each tag name, a list of region-labeled elements in
document order.  TwigStack consumes these lists through
:class:`TagStream` cursors; the optimizer checks :meth:`TagIndex.has`
to decide whether a holistic join is applicable at all.

The index also demonstrates the *update problem* the paper attributes
to join-based evaluation: :meth:`TagIndex.invalidate` must be called
whenever the underlying document changes, because region labels are a
materialization of structural relationships.
"""

from __future__ import annotations


from repro.obs.metrics import REGISTRY
from repro.xmlkit.tree import Document, Node

__all__ = ["TagIndex", "TagStream"]

_BUILDS = REGISTRY.counter(
    "repro_tag_index_builds_total",
    "Tag-index materializations (full document passes); one engine/"
    "snapshot should pay this at most once between invalidations")


class TagIndex:
    """Per-tag inverted lists of elements, built in one document pass."""

    def __init__(self, doc: Document) -> None:
        self.doc = doc
        self._lists: dict[str, list[Node]] = {}
        self._built = False

    def build(self) -> TagIndex:
        """Materialize all per-tag lists (idempotent)."""
        if not self._built:
            _BUILDS.inc()
            table: dict[str, list[Node]] = {}
            for node in self.doc.elements():
                table.setdefault(node.tag, []).append(node)  # type: ignore[arg-type]
            self._lists = table
            self._built = True
        return self

    def invalidate(self) -> None:
        """Drop the materialized lists after a document update."""
        self._lists = {}
        self._built = False

    def has(self, tag: str) -> bool:
        """True iff at least one element with this tag exists."""
        self.build()
        return tag in self._lists

    def nodes(self, tag: str) -> list[Node]:
        """Document-ordered elements with the given tag (empty if none)."""
        self.build()
        return self._lists.get(tag, [])

    def stream(self, tag: str) -> TagStream:
        """Open a cursor over the tag's list."""
        return TagStream(self.nodes(tag))

    def cardinality(self, tag: str) -> int:
        """Number of elements with the given tag."""
        return len(self.nodes(tag))


class TagStream:
    """A forward cursor over a document-ordered node list.

    Provides exactly the operations holistic twig joins need: peek the
    current head, advance past it, and skip forward to the first node
    whose region starts at or after a given position (used to implement
    TwigStack's ``advance`` efficiently via binary search).
    """

    __slots__ = ("nodes", "pos")

    def __init__(self, nodes: list[Node]) -> None:
        self.nodes = nodes
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.nodes)

    def head(self) -> Node:
        """Current node; callers must check :meth:`eof` first."""
        return self.nodes[self.pos]

    def peek(self) -> Node | None:
        return None if self.eof() else self.nodes[self.pos]

    def advance(self) -> None:
        self.pos += 1

    def skip_to_start(self, start: int) -> None:
        """Advance to the first node with ``node.start >= start``."""
        lo = self.pos
        starts = self.nodes
        # bisect on the start coordinate without building a key list
        hi = len(starts)
        while lo < hi:
            mid = (lo + hi) // 2
            if starts[mid].start < start:
                lo = mid + 1
            else:
                hi = mid
        self.pos = lo

    def clone(self) -> TagStream:
        """An independent cursor at the same position."""
        fresh = TagStream(self.nodes)
        fresh.pos = self.pos
        return fresh

    def remaining(self) -> int:
        return len(self.nodes) - self.pos
