"""Minimal SAX-style streaming interface over the hand-written tokenizer.

The navigational approaches the paper surveys (Section 2.1) consume XML
"either through SAX event callbacks or ... the underlying storage
system".  This module provides the callback form so that streaming
consumers (and tests of the tokenizer) do not need a materialized tree.
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.xmlkit.tokenizer import CHARS, COMMENT, END, PI, START, tokenize

__all__ = ["ContentHandler", "parse_string"]


class ContentHandler:
    """Base class for streaming consumers; override the callbacks you need."""

    def start_document(self) -> None:
        """Called once before any other callback."""

    def end_document(self) -> None:
        """Called once after all other callbacks."""

    def start_element(self, tag: str, attrs: dict[str, str]) -> None:
        """Called for each start tag (and for self-closing tags)."""

    def end_element(self, tag: str) -> None:
        """Called for each end tag."""

    def characters(self, text: str) -> None:
        """Called for character data and CDATA content."""

    def processing_instruction(self, target: str, data: str) -> None:
        """Called for processing instructions."""

    def comment(self, text: str) -> None:
        """Called for comments."""


def parse_string(text: str, handler: ContentHandler) -> None:
    """Drive ``handler`` with the events of an XML string.

    Performs the same well-formedness checks as the tree parser
    (balanced tags, single root), raising
    :class:`~repro.errors.XMLSyntaxError` on violation.
    """
    handler.start_document()
    open_tags: list[str] = []
    seen_root = False
    for event in tokenize(text):
        if event.kind == START:
            tag, attrs = event.value  # type: ignore[misc]
            if not open_tags:
                if seen_root:
                    raise XMLSyntaxError("document may have only one root element",
                                         event.line, event.column)
                seen_root = True
            open_tags.append(tag)
            handler.start_element(tag, attrs)
        elif event.kind == END:
            if not open_tags or open_tags[-1] != event.value:
                expected = open_tags[-1] if open_tags else None
                raise XMLSyntaxError(
                    f"mismatched end tag </{event.value}> (open: {expected!r})",
                    event.line, event.column)
            open_tags.pop()
            handler.end_element(event.value)  # type: ignore[arg-type]
        elif event.kind == CHARS:
            if not open_tags and event.value.strip():  # type: ignore[union-attr]
                raise XMLSyntaxError("character data outside the document element",
                                     event.line, event.column)
            handler.characters(event.value)  # type: ignore[arg-type]
        elif event.kind == PI:
            target, data = event.value  # type: ignore[misc]
            handler.processing_instruction(target, data)
        elif event.kind == COMMENT:
            handler.comment(event.value)  # type: ignore[arg-type]
    if open_tags:
        raise XMLSyntaxError(f"unclosed elements at end of input: {open_tags}")
    if not seen_root:
        raise XMLSyntaxError("document has no root element")
    handler.end_document()
