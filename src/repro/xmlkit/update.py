"""Document updates — the paper's Section 2.1 update-problem, executable.

The paper argues that the join-based approach "inherits the update
problem associated with materialized views": region labels are a
materialization of structural relationships, so inserting or deleting
one element invalidates the encodings of whole document regions and the
tag-name indexes built over them, while the navigational/hybrid
approach discovers structure dynamically and pays nothing.

This module provides subtree insertion and deletion over the tree
model, with exact accounting of the relabeling work:

* ``insert_subtree`` / ``delete_subtree`` splice a subtree in or out,
  rebuild the node arena, and reassign pre-order ranks and region
  labels from the update point onward;
* each operation returns an :class:`UpdateReport` with the number of
  nodes whose labels changed — the quantity the update-cost ablation
  measures — and invalidates any registered tag index.

The implementation recomputes labels with a single pass from the
splice point (labels before it are provably unchanged), which is the
best a region-encoding scheme can do without gaps; the point of the
ablation is precisely that this cost is linear in the document tail
while navigational evaluation needs no maintenance at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import UpdateError
from repro.xmlkit.index import TagIndex
from repro.xmlkit.tree import DOCUMENT, ELEMENT, Document, Node

__all__ = ["UpdateReport", "DocumentUpdater", "UpdateError"]


@dataclass
class UpdateReport:
    """Accounting for one update operation."""

    nodes_added: int = 0
    nodes_removed: int = 0
    nodes_relabeled: int = 0      # existing nodes whose (nid/start/end) changed
    indexes_invalidated: int = 0

    def total_touched(self) -> int:
        return self.nodes_added + self.nodes_removed + self.nodes_relabeled


class DocumentUpdater:
    """Applies structural updates to a document, maintaining labels.

    Registered tag indexes are invalidated on every update (they must
    be rebuilt before the next join-based query — the materialized-view
    maintenance cost).
    """

    def __init__(self, doc: Document) -> None:
        self.doc = doc
        self._indexes: list[TagIndex] = []
        self._listeners: list[Callable[[UpdateReport], None]] = []

    def register_index(self, index: TagIndex) -> None:
        """Track an index that must be invalidated on updates."""
        self._indexes.append(index)

    def register_listener(self, callback: Callable[[UpdateReport], None]) -> None:
        """Register a callback fired after every structural update.

        The engine layer uses this to invalidate derived state that the
        updater cannot know about (cached document statistics, the plan
        cache); the callback receives the operation's
        :class:`UpdateReport`.
        """
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def insert_subtree(self, parent: Node, subtree_root: Node,
                       position: int | None = None) -> UpdateReport:
        """Insert a (detached or foreign) subtree under ``parent``.

        ``position`` is the child index (default: append).  The subtree
        is deep-copied into this document; the source is not modified.
        """
        if parent.doc is not self.doc:
            raise UpdateError("parent node belongs to a different document")
        if parent.kind not in (ELEMENT, DOCUMENT):
            raise UpdateError("can only insert under an element")
        if parent.kind == DOCUMENT and subtree_root.kind == ELEMENT \
                and self.doc.root is not None:
            raise UpdateError("document already has a root element")

        copied = _copy_detached(subtree_root)
        index = len(parent.children) if position is None else position
        if not 0 <= index <= len(parent.children):
            raise UpdateError(f"child position {position} out of range")
        parent.children.insert(index, copied)
        copied.parent = parent

        report = UpdateReport(nodes_added=_count(copied))
        self._rebuild(report, first_dirty=parent)
        return report

    def delete_subtree(self, node: Node) -> UpdateReport:
        """Remove ``node`` and its whole subtree from the document."""
        if node.doc is not self.doc:
            raise UpdateError("node belongs to a different document")
        if node.parent is None:
            raise UpdateError("cannot delete the document node")
        if node is self.doc.root:
            raise UpdateError("cannot delete the document element")
        node.parent.children.remove(node)

        report = UpdateReport(nodes_removed=node.subtree_size())
        self._rebuild(report, first_dirty=node.parent)
        return report

    # ------------------------------------------------------------------
    # Label maintenance.
    # ------------------------------------------------------------------

    def _rebuild(self, report: UpdateReport, first_dirty: Node) -> None:
        """Recompute nids, regions and levels; count changed labels.

        Everything strictly before the splice point in document order
        keeps its labels; the splice point's ancestors keep ``start``
        but change ``end`` — all of that falls out of one full pass
        that simply compares old and new values.
        """
        doc = self.doc
        old_labels = {id(n): (n.nid, n.start, n.end) for n in doc.nodes}

        nodes: list[Node] = []
        counter = 0

        def visit(node: Node, level: int) -> None:
            nonlocal counter
            node.nid = len(nodes)
            node.doc = doc
            node.level = level
            node.start = counter
            counter += 1
            nodes.append(node)
            node._string_value = None
            for child in node.children:
                visit(child, level + 1)
            node.end = counter
            counter += 1

        visit(doc.nodes[0], 0)
        doc.nodes = nodes
        doc.root = next((c for c in nodes[0].children if c.kind == ELEMENT), None)
        doc._tag_lists = None

        for node in nodes:
            old = old_labels.get(id(node))
            if old is not None and old != (node.nid, node.start, node.end):
                report.nodes_relabeled += 1

        for index in self._indexes:
            index.invalidate()
            report.indexes_invalidated += 1
        for listener in self._listeners:
            listener(report)


def _copy_detached(source: Node) -> Node:
    """Deep-copy a node into a parentless skeleton (labels unset)."""
    copy = Node(source.doc, -1, source.kind, source.tag, source.text)
    copy.attrs = dict(source.attrs)
    for child in source.children:
        child_copy = _copy_detached(child)
        child_copy.parent = copy
        copy.children.append(child_copy)
    return copy


def _count(node: Node) -> int:
    total = 1
    for child in node.children:
        total += _count(child)
    return total
