"""BlossomTree: evaluating correlated XPaths in FLWOR expressions.

A from-scratch reproduction of Zhang, Agrawal and Ozsu,
"BlossomTree: Evaluating XPaths in FLWOR Expressions" (ICDE 2005 /
UWaterloo TR CS-2004-58).

Public entry points live in :mod:`repro.engine.session`; the most
convenient import is::

    from repro import Engine, parse

    engine = Engine(parse(xml_text))
    result = engine.query('//book[author]/title')

For repeated traffic, compile once and execute many times::

    plan = engine.prepare('for $b in //book where $b/price < $max '
                          'return $b/title')
    plan.execute(bindings={"max": 20.0})

``__all__`` below is the supported public surface; everything else is
internal and may change between releases.
"""

__version__ = "1.0.0"

from repro.errors import (
    BindingError,
    CompileError,
    DNFError,
    ExecutionError,
    QuerySyntaxError,
    ReproError,
    StaticError,
    UpdateError,
    UsageError,
    XMLSyntaxError,
)
from repro.xmlkit import parse, parse_file, serialize

__all__ = [
    # errors (the complete hierarchy, rooted at ReproError)
    "BindingError",
    "CompileError",
    "DNFError",
    "ExecutionError",
    "QuerySyntaxError",
    "ReproError",
    "StaticError",
    "UpdateError",
    "UsageError",
    "XMLSyntaxError",
    # engine facades
    "Database",
    "Engine",
    "PreparedQuery",
    "QueryResult",
    # xml toolkit
    "parse",
    "parse_file",
    "serialize",
]

#: Facade classes imported lazily (see ``__getattr__``) to keep
#: ``import repro`` cheap and free of subpackage import cycles.
_LAZY = {
    "Engine": ("repro.engine.session", "Engine"),
    "Database": ("repro.engine.database", "Database"),
    "PreparedQuery": ("repro.engine.prepared", "PreparedQuery"),
    "QueryResult": ("repro.engine.result", "QueryResult"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is not None:
        from importlib import import_module

        return getattr(import_module(target[0]), target[1])
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
