"""BlossomTree: evaluating correlated XPaths in FLWOR expressions.

A from-scratch reproduction of Zhang, Agrawal and Ozsu,
"BlossomTree: Evaluating XPaths in FLWOR Expressions" (ICDE 2005 /
UWaterloo TR CS-2004-58).

Public entry points live in :mod:`repro.engine.session`; the most
convenient import is::

    from repro import Engine, parse

    engine = Engine(parse(xml_text))
    result = engine.query('//book[author]/title')
"""

__version__ = "1.0.0"

from repro.errors import (
    CompileError,
    DNFError,
    ExecutionError,
    QuerySyntaxError,
    ReproError,
    StaticError,
    XMLSyntaxError,
)
from repro.xmlkit import parse, parse_file, serialize

__all__ = [
    "CompileError",
    "DNFError",
    "Engine",
    "ExecutionError",
    "QuerySyntaxError",
    "ReproError",
    "StaticError",
    "XMLSyntaxError",
    "parse",
    "parse_file",
    "serialize",
]


def __getattr__(name):
    # Engine is imported lazily to keep `import repro` cheap and to avoid
    # import cycles while the subpackages load each other.
    if name == "Engine":
        from repro.engine.session import Engine
        return Engine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
