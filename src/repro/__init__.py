"""BlossomTree: evaluating correlated XPaths in FLWOR expressions.

A from-scratch reproduction of Zhang, Agrawal and Ozsu,
"BlossomTree: Evaluating XPaths in FLWOR Expressions" (ICDE 2005 /
UWaterloo TR CS-2004-58).

The front door is :func:`connect` — it takes XML text, a path to an XML
file, or a path to a saved binary database, and returns a
:class:`Database` (a context manager)::

    import repro

    with repro.connect("library.xml") as db:
        result = db.query('//book[author]/title')

For repeated traffic, compile once and execute many times::

    plan = db.prepare('for $b in //book where $b/price < $max '
                      'return $b/title')
    plan.execute(params={"max": 20.0})

For concurrent traffic, start the snapshot-isolated query service::

    with repro.connect("library.xml") as db:
        service = db.serve(workers=8)
        future = service.submit('//book[author]/title', timeout_ms=100)
        print(future.result().serialize())
        with service.updater() as up:      # copy-on-write update batch
            up.delete_subtree(up.doc.root.children[0])

For remote traffic, put the network front end on a socket — adaptive
latency-targeting admission, per-request deadlines, streamed results::

    with repro.connect("library.xml") as db:
        server = db.listen()               # or repro.listen(source)
        client = repro.serve.client.connect(*server.address)
        print(client.query('//book[author]/title',
                           timeout_ms=100).serialize())

``__all__`` below is the supported public surface; everything else —
including the :class:`Engine` behind ``db.engine`` — is internal and
may change between releases.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.errors import (
    WIRE_CODES,
    BindingError,
    CompileError,
    DNFError,
    ExecutionError,
    ProtocolError,
    QueryCancelledError,
    QuerySyntaxError,
    QueryTimeoutError,
    ReproError,
    ServiceOverloadedError,
    StaticError,
    UpdateError,
    UsageError,
    XMLSyntaxError,
    error_for_code,
    wire_code,
)
from repro.xmlkit import parse, parse_file, serialize

__all__ = [
    # the front door
    "connect",
    # errors (the complete hierarchy, rooted at ReproError)
    "BindingError",
    "CompileError",
    "DNFError",
    "ExecutionError",
    "ProtocolError",
    "QueryCancelledError",
    "QuerySyntaxError",
    "QueryTimeoutError",
    "ReproError",
    "ServiceOverloadedError",
    "StaticError",
    "UpdateError",
    "UsageError",
    "XMLSyntaxError",
    # the network wire contract (error class <-> stable code)
    "WIRE_CODES",
    "error_for_code",
    "wire_code",
    # engine facades
    "Database",
    "Engine",
    "PreparedQuery",
    "QueryResult",
    # serving layer
    "Catalog",
    "QueryService",
    "ServeResult",
    "Snapshot",
    "SnapshotUpdater",
    # network serving layer
    "Client",
    "Server",
    "listen",
    # xml toolkit
    "parse",
    "parse_file",
    "serialize",
]

#: Facade classes imported lazily (see ``__getattr__``) to keep
#: ``import repro`` cheap and free of subpackage import cycles.
_LAZY = {
    "Engine": ("repro.engine.session", "Engine"),
    "Database": ("repro.engine.database", "Database"),
    "PreparedQuery": ("repro.engine.prepared", "PreparedQuery"),
    "QueryResult": ("repro.engine.result", "QueryResult"),
    "Catalog": ("repro.serve.catalog", "Catalog"),
    "QueryService": ("repro.serve.service", "QueryService"),
    "ServeResult": ("repro.serve.service", "ServeResult"),
    "Snapshot": ("repro.serve.snapshot", "Snapshot"),
    "SnapshotUpdater": ("repro.serve.snapshot", "SnapshotUpdater"),
    "Client": ("repro.serve.client", "Client"),
    "Server": ("repro.serve.server", "Server"),
    "listen": ("repro.serve.server", "listen"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is not None:
        from importlib import import_module

        return getattr(import_module(target[0]), target[1])
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def connect(source, *, slow_query_ms: float | None = None,
            feedback: bool = False):
    """Open a :class:`Database` from whatever the caller has.

    ``source`` may be

    * XML text (anything containing ``<``) — parsed in memory;
    * a path to a saved binary database (the ``BTRX1`` format written
      by :meth:`Database.save`) — loaded;
    * a path to an XML file — parsed;
    * an already parsed :class:`~repro.xmlkit.tree.Document`.

    The returned database is a context manager: leaving the ``with``
    block drains any running query service and closes the slow-query
    log.  ``slow_query_ms`` enables the slow-query log at the given
    threshold from the start.  ``feedback=True`` turns on
    feedback-driven strategy selection: under ``strategy="auto"`` the
    engine probes a measured alternative and demotes the static choice
    when observed latencies say it loses (see ``db.stats()`` and
    ``python -m repro.obs``).
    """
    from pathlib import Path

    from repro.engine.database import Database
    from repro.xmlkit.binary import MAGIC
    from repro.xmlkit.tree import Document

    if isinstance(source, Document):
        db = Database(source, slow_query_ms=slow_query_ms,
                      feedback=feedback)
    elif isinstance(source, Path) or (isinstance(source, str)
                                      and "<" not in source):
        path = Path(source)
        if not path.exists():
            raise UsageError(
                f"connect({str(source)!r}): no such file (XML text must "
                "contain '<' to be treated as a document)")
        with path.open("rb") as handle:
            magic = handle.read(len(MAGIC))
        if magic == MAGIC:
            db = Database.open(path)
            db.slow_log = None if slow_query_ms is None else \
                db.configure_slow_log(slow_query_ms)
            db.engine.feedback = feedback
        else:
            db = Database(parse(path.read_text(encoding="utf-8")),
                          slow_query_ms=slow_query_ms, feedback=feedback)
    elif isinstance(source, str):
        db = Database(parse(source), slow_query_ms=slow_query_ms,
                      feedback=feedback)
    else:
        raise UsageError(
            f"connect(): expected XML text, a path or a Document, "
            f"got {type(source).__name__}")
    return db
