"""The invariant rule catalogue.

Every check the analyzer performs has a stable rule ID here, grouped by
the compilation stage it inspects:

========  ==========================================================
prefix    stage
========  ==========================================================
``AST``   the parsed FLWOR expression (variable scoping)
``BT``    the BlossomTree (Definition 1 well-formedness)
``NK``    the NoK decomposition (Algorithm 1 postconditions)
``DW``    the Dewey returning-node assignment (Theorems 1 and 2)
``PL``    the physical plan (operator/strategy applicability)
``SV``    the serving layer (snapshot liveness of cached plans)
``QL``    query-vs-data satisfiability (structural-summary lint)
========  ==========================================================

Severities: an ``error`` means the artifact violates a correctness
precondition — executing it may return wrong results, so
validate-on-compile refuses the plan.  A ``warning`` flags a plan that
is legal but deserves attention (e.g. an order-preservation
precondition that depends on runtime document properties).

The catalogue is data, not code: passes reference rules by ID and the
CLI renders this table, so IDs must stay stable once published.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Rule", "RULES", "rule_table"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One catalogued invariant with a stable ID."""

    rule_id: str
    severity: Severity
    stage: str           # "ast" | "blossom" | "decomposition" | "dewey" | "plan"
    title: str
    description: str
    remediation: str


_CATALOGUE: tuple[Rule, ...] = (
    Rule("AST001", Severity.ERROR, "ast", "unbound variable",
         "Every variable the FLWOR references must be bound by a for/let "
         "clause (or declared as an external $parameter) before use.",
         "bind the variable in a clause or pass it as an external binding"),
    Rule("AST002", Severity.ERROR, "ast", "duplicate binding",
         "No variable may be bound by two clauses: the restricted grammar "
         "has no shadowing, so a re-binding silently aliases tuples.",
         "rename one of the clauses' variables"),
    Rule("BT001", Severity.ERROR, "blossom", "blossom binding bijection",
         "Every blossom variable is bound to exactly one vertex, that "
         "vertex lists the variable with a for/let kind, and the tree's "
         "var->vertex map agrees with the vertices' own variable lists.",
         "rebuild the tree via build_blossom_tree; never mutate "
         "variables/var_kinds/var_vertex independently"),
    Rule("BT002", Severity.ERROR, "blossom", "edge mode/axis legality",
         "Tree-edge matching modes must be 'f' (mandatory) or 'l' "
         "(optional) and axes must stay inside the pattern-matching "
         "subset; a following-sibling rewrite must reference a sibling "
         "vertex under the same parent.",
         "use MODE_MANDATORY/MODE_OPTIONAL and the supported axis set"),
    Rule("BT003", Severity.ERROR, "blossom", "tree shape consistency",
         "Parent/child bookkeeping must be mutually consistent (each "
         "non-root vertex has exactly one parent edge listed by its "
         "parent), vertex ids dense, and every vertex reachable from "
         "exactly one pattern root — no cycles, no orphans.",
         "construct vertices/edges only through BlossomTree.new_vertex/"
         "new_root/add_edge"),
    Rule("BT004", Severity.ERROR, "blossom", "crossing edge endpoints",
         "Crossing edges must connect two returning vertices of this "
         "tree with a legal relation (<<, >>, is, isnot, =, !=, <, <=, "
         ">, >=, deep-equal).",
         "add crossings via BlossomTree.add_crossing, which marks both "
         "endpoints returning"),
    Rule("BT005", Severity.ERROR, "blossom", "returning upward closure",
         "Returning-ness must be upward closed: a vertex with a returning "
         "descendant must itself be returning, or document-order "
         "projection (Theorem 1) cannot navigate to the descendant.",
         "run the builder's finalize() / decompose()'s re-propagation "
         "after changing returning flags"),
    Rule("BT006", Severity.ERROR, "blossom", "inert optional subtree",
         "An optional ('l'-mode) leaf vertex that binds no variable, "
         "carries no value predicate and is not returning constrains "
         "nothing and projects nothing — it is dead weight, typically "
         "left behind by a partially-built and abandoned chain.",
         "roll back partially built chains when translation of a "
         "where-conjunct fails (BlossomTree.checkpoint/rollback)"),
    Rule("NK001", Severity.ERROR, "decomposition", "cut-edge coverage",
         "Algorithm 1 must cut exactly the global-axis edges: every "
         "inter-NoK edge carries a global axis (descendant), and every "
         "edge kept inside a NoK fragment uses only local axes (child, "
         "self, attribute, following-sibling) so the fragment is "
         "navigation-free.",
         "re-run decompose(); do not flip edge.cut flags by hand"),
    Rule("NK002", Severity.ERROR, "decomposition", "NoK partition",
         "The NoK trees must partition the vertex set: every vertex "
         "belongs to exactly one NoK, is reachable from its NoK root via "
         "uncut edges, and the vertex->NoK map agrees with the member "
         "lists.",
         "re-run decompose() after any change to the BlossomTree"),
    Rule("NK003", Severity.ERROR, "decomposition", "inter-edge forest",
         "Inter-NoK edges must form a forest rooted at the pattern-root "
         "NoKs: endpoints' NoK ids must match the owning fragments, the "
         "child endpoint must be its NoK's root, and every non-root NoK "
         "must be reachable (no cycles, no unreachable fragments).",
         "re-run decompose(); check for manual edits to inter_edges"),
    Rule("DW001", Severity.ERROR, "dewey", "global Dewey order",
         "Theorem 1/2 precondition: Dewey IDs are assigned globally over "
         "the returning tree — every returning vertex has an ID, the "
         "closest returning ancestor's ID is the immediate prefix, "
         "sibling ordinals are dense starting at 1, and pattern roots "
         "are numbered (1, i) in declaration order.  Without this, "
         "document-order projection and order-preserving //-joins are "
         "not guaranteed.",
         "re-run assign_dewey() after decompose() (decomposition marks "
         "join endpoints returning)"),
    Rule("DW002", Severity.ERROR, "dewey", "Dewey map staleness",
         "The vertex->Dewey and Dewey->vertex maps must be mutually "
         "inverse and reference only live vertices of this tree — a "
         "stale assignment (e.g. replayed after the tree changed) maps "
         "IDs to vertices that no longer exist or are no longer "
         "returning.",
         "invalidate cached PatternArtifacts when the query's tree is "
         "rebuilt; never mix artifacts across compilations"),
    Rule("PL001", Severity.ERROR, "plan", "join Dewey schema agreement",
         "Each inter-NoK join's operands must agree on the returning-node "
         "Dewey schema: the parent endpoint carries a Dewey ID, and a "
         "returning child endpoint's ID extends the parent's by exactly "
         "one component (the join merges their NestedLists under that "
         "prefix).",
         "assign Dewey IDs globally (assign_dewey) after decomposition"),
    Rule("PL002", Severity.ERROR, "plan", "strategy applicability",
         "The chosen strategy must exist and be executable for this "
         "artifact: BlossomTree strategies need a tree and pattern "
         "artifacts; twigstack needs a single //-twig.",
         "let choose_strategy() pick, or request a strategy the query "
         "shape supports"),
    Rule("PL003", Severity.WARNING, "plan", "order-preservation runtime precondition",
         "A pipelined merge join claims ordered output only when distinct "
         "matches of the ancestor pattern do not contain one another "
         "(Theorem 2 / Example 5); on a recursive document that "
         "precondition can fail and the stack merge join should run "
         "instead.",
         "use strategy='auto' (the optimizer picks stack merge on "
         "recursive documents)"),
    Rule("PL004", Severity.ERROR, "plan", "partition-unsafe NoK under parallel scan",
         "The parallel strategy executes every scannable NoK by cutting "
         "the document's sequential scan into Dewey-contiguous "
         "partitions (Theorem 1 makes concatenation order-correct).  A "
         "non-trivial #root NoK — an all-local-axis chain like "
         "/bib/book, or a predicated root — is matched navigationally "
         "from the document node, never by that scan, so a partitioned "
         "execution would either skip it or re-run its navigation once "
         "per partition and duplicate matches.",
         "use strategy='auto' (the optimizer withdraws the parallel "
         "upgrade for such plans) or run the query serially"),
    Rule("SV001", Severity.ERROR, "serve", "dropped-snapshot plan",
         "A cached plan may only execute against a live snapshot: its "
         "stamped snapshot id must be the serving catalog's current or "
         "a pinned version of the document.  A plan referencing a "
         "retired (dropped) snapshot raced an update-batch publish — "
         "its artifacts were chosen from statistics of a version no "
         "reader can pin anymore.",
         "purge the snapshot's plans (Catalog.purge_snapshot_plans) and "
         "recompile; the query service does this automatically and "
         "retries once"),
    # -- QL: query-vs-data satisfiability (structural-summary lint).
    # Unlike the stages above, a QL *error* does not mean the plan is
    # broken — it means the query provably matches nothing on this
    # document, so the engine rewrites it (static empty result or a
    # pruned pattern) instead of refusing it.
    Rule("QL001", Severity.ERROR, "query", "unsatisfiable step label",
         "A step's name test references an element label that never "
         "occurs in the document's structural summary, so the step — "
         "and every tuple that requires it — matches nothing.",
         "drop the dead branch, or run with analyze_queries=False if "
         "the document is about to gain the label"),
    Rule("QL002", Severity.ERROR, "query", "label never under required ancestor",
         "The step's label occurs in the document, but never in the "
         "structural relationship the pattern requires (as a child of "
         "its parent step's label, or as a descendant of its ancestor "
         "step's label).",
         "check the axis (child vs descendant) against the document "
         "shape; the summary's path table lists where the label occurs"),
    Rule("QL003", Severity.ERROR, "query", "contradictory value predicates",
         "The step's value predicates can never hold simultaneously "
         "after constant folding: equality on two different constants, "
         "an empty numeric range (e.g. @a > 5 and @a < 3), or a "
         "constant-false predicate.",
         "fix the predicate constants; conjunctive predicates on one "
         "step must be jointly satisfiable"),
    Rule("QL004", Severity.ERROR, "query", "constant-false where clause",
         "The FLWOR where clause folds to false for every tuple (a "
         "constant comparison, or a path the structural summary proves "
         "empty), so the whole expression returns the empty sequence.",
         "remove the dead where conjunct, or fix the path it tests"),
    Rule("QL005", Severity.WARNING, "query", "redundant always-true condition",
         "A predicate or where clause folds to true for every tuple — "
         "it filters nothing and only costs evaluation time.",
         "drop the redundant condition from the query text"),
    Rule("QL006", Severity.ERROR, "query", "attribute never present on label",
         "A predicate tests or compares an attribute that the "
         "structural summary never records on the step's label, so the "
         "existential attribute test is false for every element.",
         "check the attribute name against the document shape (XPath "
         "comparisons over an absent attribute are false, not null)"),
)

#: rule id -> Rule, in catalogue order.
RULES: dict[str, Rule] = {rule.rule_id: rule for rule in _CATALOGUE}


def rule_table() -> str:
    """The catalogue as an aligned text table (CLI ``--rules``)."""
    rows = [(rule.rule_id, rule.severity.value, rule.stage, rule.title)
            for rule in _CATALOGUE]
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for rule_id, severity, stage, title in rows:
        lines.append(f"{rule_id:<{widths[0]}}  {severity:<{widths[1]}}  "
                     f"{stage:<{widths[2]}}  {title}")
    return "\n".join(lines)
