"""Analyzer entry points: compose the passes over compiled artifacts.

Three granularities, matching what callers hold:

* :func:`analyze_tree` — just a BlossomTree (the compiler's
  validate-on-compile hook, before decomposition exists);
* :func:`analyze_artifacts` — a full :class:`PatternArtifacts` bundle
  (tree + NoK decomposition + Dewey assignment), the executor/CLI view;
* :func:`analyze_plan` — a cached plan (compiled query + strategy
  choice + artifacts), the engine/plan-cache view, which also runs the
  AST pass and the strategy checks.

The ``verify_*`` variants are the enforcement gates: they run the
corresponding analysis, feed the ``repro_plan_verify_*`` counters, and
raise :class:`~repro.errors.PlanInvariantError` when any error-severity
finding fired.  Warnings never block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.passes import (
    artifacts_quick_clean,
    ast_pass,
    blossom_pass,
    decomposition_pass,
    dewey_pass,
    plan_pass,
    snapshot_pass,
    tree_quick_clean,
)
from repro.analysis.report import AnalysisReport
from repro.errors import PlanInvariantError
from repro.obs.metrics import REGISTRY
from repro.pattern.blossom import BlossomTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> analysis)
    from collections.abc import Collection

    from repro.engine.prepared import CachedPlan
    from repro.pattern.artifact import PatternArtifacts
    from repro.xquery.ast import FLWOR

__all__ = [
    "analyze_tree",
    "analyze_artifacts",
    "analyze_plan",
    "analyze_snapshot",
    "verify_tree",
    "verify_artifacts",
    "verify_plan",
    "verify_snapshot",
]

#: Strategies that execute through the BlossomTree pipeline and
#: therefore need pattern artifacts in their cached plan.
_ARTIFACT_STRATEGIES = ("pipelined", "caching", "stack", "bnlj", "nl",
                        "twigstack", "parallel")

VERIFY_RUNS = REGISTRY.counter(
    "repro_plan_verify_total",
    "Plan-verification runs, labeled by outcome (ok/warning/error)")
VERIFY_FINDINGS = REGISTRY.counter(
    "repro_plan_verify_findings_total",
    "Individual analyzer findings, labeled by rule ID")


def analyze_tree(tree: BlossomTree, source: str = "<query>",
                 flwor: FLWOR | None = None,
                 external: frozenset[str] = frozenset()) -> AnalysisReport:
    """Run the AST (when a FLWOR is supplied) and BlossomTree passes."""
    report = AnalysisReport(source=source)
    if flwor is not None:
        ast_pass(flwor, report, external=external)
    blossom_pass(tree, report)
    return report


def analyze_artifacts(artifacts: PatternArtifacts,
                      source: str = "<query>",
                      strategy: str | None = None,
                      recursive_document: bool | None = None,
                      tree_verified: bool = False) -> AnalysisReport:
    """Run every pattern-stage pass over one artifacts bundle.

    ``tree_verified`` skips the BlossomTree pass: the engine sets it on
    its hot path because :func:`verify_tree` already ran over the same
    tree object at compile time and the tree is not mutated in between.
    External callers (CLI, fixtures) leave it off for full coverage.
    """
    report = AnalysisReport(source=source)
    if not tree_verified:
        blossom_pass(artifacts.tree, report)
    decomposition_pass(artifacts.decomposition, report)
    dewey_pass(artifacts.tree, artifacts.dewey, report)
    plan_pass(artifacts.tree, artifacts.decomposition, artifacts.dewey,
              report, strategy=strategy,
              recursive_document=recursive_document)
    return report


def analyze_plan(plan: CachedPlan, source: str | None = None,
                 recursive_document: bool | None = None,
                 tree_verified: bool = False) -> AnalysisReport:
    """Analyze a cached plan end to end (AST through strategy choice).

    ``tree_verified`` skips the AST and BlossomTree passes, which
    :func:`verify_tree` already ran at compile time (see
    :func:`analyze_artifacts`).
    """
    compiled = plan.compiled
    name = source if source is not None else compiled.source
    report = AnalysisReport(source=name)
    if compiled.flwor is not None and not tree_verified:
        ast_pass(compiled.flwor, report, external=compiled.parameters)
    strategy = plan.choice.strategy
    if plan.artifacts is not None:
        sub = analyze_artifacts(plan.artifacts, source=name,
                                strategy=strategy,
                                recursive_document=recursive_document,
                                tree_verified=tree_verified)
        report.extend(sub)
    elif strategy in _ARTIFACT_STRATEGIES:
        report.passes_run.append("plan")
        report.add("PL002", "plan",
                   f"strategy {strategy!r} executes through the BlossomTree "
                   "pipeline but the plan carries no pattern artifacts")
    return report


def analyze_snapshot(plan: CachedPlan, live_snapshots: Collection[int],
                     source: str | None = None) -> AnalysisReport:
    """Run the serving-stage pass: is the plan's snapshot still live?

    ``live_snapshots`` is the serving catalog's ground truth (current +
    pinned snapshot ids of the plan's document) — see
    :meth:`~repro.serve.catalog.Catalog.live_ids`.
    """
    name = source if source is not None else plan.compiled.source
    report = AnalysisReport(source=name)
    snapshot_pass(plan, live_snapshots, report)
    return report


# ----------------------------------------------------------------------
# Enforcement gates (metrics + raise-on-error).
# ----------------------------------------------------------------------

def _enforce(report: AnalysisReport) -> AnalysisReport:
    for finding in report.findings:
        VERIFY_FINDINGS.inc(rule=finding.rule_id)
    if report.errors:
        VERIFY_RUNS.inc(outcome="error")
        raise PlanInvariantError(report)
    VERIFY_RUNS.inc(outcome="warning" if report.warnings else "ok")
    return report


_VERIFY_OK_INC = VERIFY_RUNS.bound(outcome="ok")


def _quick_ok(source: str, passes: list[str]) -> AnalysisReport:
    """The clean-verdict report of a fast-path verification."""
    _VERIFY_OK_INC()
    report = AnalysisReport(source=source)
    report.passes_run.extend(passes)
    return report


def _ast_clean(flwor: FLWOR, external: frozenset[str]) -> bool:
    from repro.xquery.semantics import analyze

    return not analyze(flwor, external=external).errors


def verify_tree(tree: BlossomTree, source: str = "<query>",
                flwor: FLWOR | None = None,
                external: frozenset[str] = frozenset()) -> AnalysisReport:
    """Gate form of :func:`analyze_tree`; raises on error findings.

    The clean case takes a fused fast path
    (:func:`~repro.analysis.passes.tree_quick_clean`); the full
    reporting passes run only when something is dirty.
    """
    if tree_quick_clean(tree) \
            and (flwor is None or _ast_clean(flwor, external)):
        return _quick_ok(source, ["ast", "blossom"] if flwor is not None
                         else ["blossom"])
    return _enforce(analyze_tree(tree, source=source, flwor=flwor,
                                 external=external))


def verify_artifacts(artifacts: PatternArtifacts,
                     source: str = "<query>",
                     strategy: str | None = None,
                     recursive_document: bool | None = None,
                     tree_verified: bool = False) -> AnalysisReport:
    """Gate form of :func:`analyze_artifacts`; raises on error findings."""
    if artifacts_quick_clean(artifacts, strategy=strategy,
                             recursive_document=recursive_document) \
            and (tree_verified or tree_quick_clean(artifacts.tree)):
        passes = ["decomposition", "dewey", "plan"]
        if not tree_verified:
            passes.insert(0, "blossom")
        return _quick_ok(source, passes)
    return _enforce(analyze_artifacts(
        artifacts, source=source, strategy=strategy,
        recursive_document=recursive_document, tree_verified=tree_verified))


def verify_plan(plan: CachedPlan, source: str | None = None,
                recursive_document: bool | None = None,
                tree_verified: bool = False) -> AnalysisReport:
    """Gate form of :func:`analyze_plan`; raises on error findings."""
    compiled = plan.compiled
    name = source if source is not None else compiled.source
    strategy = plan.choice.strategy
    if plan.artifacts is not None:
        quick = artifacts_quick_clean(plan.artifacts, strategy=strategy,
                                      recursive_document=recursive_document) \
            and (tree_verified or tree_quick_clean(plan.artifacts.tree))
    else:
        quick = strategy not in _ARTIFACT_STRATEGIES
    if quick and not tree_verified and compiled.flwor is not None:
        quick = _ast_clean(compiled.flwor, compiled.parameters)
    if quick:
        passes = []
        if not tree_verified:
            if compiled.flwor is not None:
                passes.append("ast")
            if plan.artifacts is not None:
                passes.append("blossom")
        if plan.artifacts is not None:
            passes.extend(["decomposition", "dewey", "plan"])
        return _quick_ok(name, passes)
    return _enforce(analyze_plan(plan, source=source,
                                 recursive_document=recursive_document,
                                 tree_verified=tree_verified))


def verify_snapshot(plan: CachedPlan, live_snapshots: Collection[int],
                    source: str | None = None) -> AnalysisReport:
    """Gate form of :func:`analyze_snapshot`; raises on SV001.

    The serving catalog's plan gate calls this when a cached plan's
    snapshot id is found in the dropped set, so the refusal carries the
    full rule metadata (and feeds the verify counters) instead of an
    ad-hoc exception.
    """
    if plan.snapshot_id is None or plan.snapshot_id in live_snapshots:
        return _quick_ok(source if source is not None
                         else plan.compiled.source, ["serve"])
    return _enforce(analyze_snapshot(plan, live_snapshots, source=source))
