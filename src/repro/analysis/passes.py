"""The analyzer's verification passes, one per compilation stage.

Each pass inspects one artifact of the compile pipeline — the FLWOR
AST, the BlossomTree, the NoK decomposition, the Dewey assignment, the
physical-plan choice — and appends :class:`~repro.analysis.report.Finding`
objects to a shared report.  Passes never mutate what they check and
never raise for an invariant violation (that is the caller's policy);
they are total functions over arbitrarily corrupted inputs, which is
what lets the corruption-fixture tests drive them directly.
"""

from __future__ import annotations

from collections.abc import Collection
from typing import TYPE_CHECKING

from repro.analysis.report import AnalysisReport
from repro.pattern.blossom import (
    MODE_MANDATORY,
    MODE_OPTIONAL,
    BlossomTree,
    BlossomVertex,
)
from repro.pattern.decompose import Decomposition
from repro.pattern.dewey import DeweyAssignment
from repro.xquery.ast import FLWOR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> analysis)
    from repro.engine.prepared import CachedPlan

__all__ = [
    "ast_pass",
    "blossom_pass",
    "decomposition_pass",
    "dewey_pass",
    "plan_pass",
    "partition_unsafe_noks",
    "snapshot_pass",
    "tree_quick_clean",
    "artifacts_quick_clean",
]

#: Axes the pattern matcher models at all.
_LEGAL_AXES = ("child", "descendant", "following-sibling", "attribute", "self")
#: Axes that stay inside a NoK fragment (TreeEdge.is_local).
_LOCAL_AXES = ("child", "self", "attribute", "following-sibling")
#: Crossing-edge relations the finish phase can re-verify.
_LEGAL_RELATIONS = ("<<", ">>", "is", "isnot", "=", "!=", "<", "<=", ">",
                    ">=", "deep-equal")
#: Strategies the engine can execute.
_KNOWN_STRATEGIES = ("pipelined", "caching", "stack", "bnlj", "nl",
                     "twigstack", "naive", "xhive", "parallel")
_PATTERN_STRATEGIES = ("pipelined", "caching", "stack", "bnlj", "nl",
                       "twigstack", "parallel")


# ----------------------------------------------------------------------
# AST stage.
# ----------------------------------------------------------------------

def ast_pass(flwor: FLWOR, report: AnalysisReport,
             external: frozenset[str] = frozenset()) -> None:
    """AST001/AST002: variable scoping of the FLWOR core."""
    from repro.xquery.semantics import analyze

    report.passes_run.append("ast")
    static = analyze(flwor, external=external)
    for error in static.errors:
        if error.startswith("reference to unbound variable"):
            report.add("AST001", "ast", error)
        elif "bound twice" in error:
            report.add("AST002", "ast", error)
        else:
            report.add("AST001", "ast", error)


# ----------------------------------------------------------------------
# BlossomTree stage.
# ----------------------------------------------------------------------

def blossom_pass(tree: BlossomTree, report: AnalysisReport) -> None:
    """BT001-BT006: Definition-1 well-formedness of the BlossomTree."""
    report.passes_run.append("blossom")
    # Identity sets shared by all sub-checks.  Identity, not equality:
    # vertices and edges are mutable dataclasses whose generated __eq__
    # walks the whole (cyclic) structure.
    by_id = {id(v) for v in tree.vertices}
    _check_tree_shape(tree, by_id, report)
    _check_bindings(tree, by_id, report)
    _check_edge_modes(tree, report)
    _check_crossings(tree, by_id, report)
    _check_returning_closure(tree, report)
    _check_inert_optionals(tree, report)


def _check_tree_shape(tree: BlossomTree, by_id: set[int],
                      report: AnalysisReport) -> None:
    vertices = tree.vertices
    for index, vertex in enumerate(vertices):
        if vertex.vid != index:
            report.add("BT003", f"blossom:V{vertex.vid}",
                       f"vertex id {vertex.vid} does not match its position "
                       f"{index} in the vertex list (ids must be dense)")
    for root in tree.roots:
        if id(root) not in by_id:
            report.add("BT003", f"blossom:V{root.vid}",
                       "pattern root is not a vertex of this tree")
        if root.parent_edge is not None:
            report.add("BT003", f"blossom:V{root.vid}",
                       "pattern root has a parent edge")
    edge_ids = {id(e) for e in tree.tree_edges}
    for edge in tree.tree_edges:
        if id(edge.parent) not in by_id or id(edge.child) not in by_id:
            report.add("BT003",
                       f"blossom:V{edge.parent.vid}->V{edge.child.vid}",
                       "tree edge endpoint is not a vertex of this tree")
            continue
        if edge.child.parent_edge is not edge:
            report.add("BT003",
                       f"blossom:V{edge.parent.vid}->V{edge.child.vid}",
                       f"child V{edge.child.vid} does not point back at this "
                       "edge as its parent edge")
        if not any(e is edge for e in edge.parent.child_edges):
            report.add("BT003",
                       f"blossom:V{edge.parent.vid}->V{edge.child.vid}",
                       f"parent V{edge.parent.vid} does not list this edge "
                       "among its child edges")
    for vertex in vertices:
        for edge in vertex.child_edges:
            if edge.parent is not vertex:
                report.add("BT003", f"blossom:V{vertex.vid}",
                           f"child edge to V{edge.child.vid} does not name "
                           f"V{vertex.vid} as its parent")
        if vertex.parent_edge is not None \
                and id(vertex.parent_edge) not in edge_ids:
            report.add("BT003", f"blossom:V{vertex.vid}",
                       "parent edge is not registered in tree_edges")
    # Reachability: every vertex under exactly one root, no cycles.
    seen: dict[int, int] = {}
    for root in tree.roots:
        if id(root) not in by_id:
            continue
        stack = [root]
        on_path: set[int] = set()
        while stack:
            vertex = stack.pop()
            if id(vertex) in on_path:
                report.add("BT003", f"blossom:V{vertex.vid}",
                           "cycle detected in tree edges")
                return
            on_path.add(id(vertex))
            seen[id(vertex)] = seen.get(id(vertex), 0) + 1
            stack.extend(e.child for e in vertex.child_edges)
    for vertex in vertices:
        count = seen.get(id(vertex), 0)
        if count == 0:
            report.add("BT003", f"blossom:V{vertex.vid}",
                       f"vertex {vertex.name!r} is unreachable from every "
                       "pattern root (orphan)")
        elif count > 1:
            report.add("BT003", f"blossom:V{vertex.vid}",
                       f"vertex {vertex.name!r} is reachable {count} times "
                       "(shared subtree or duplicate root)")


def _check_bindings(tree: BlossomTree, by_id: set[int],
                    report: AnalysisReport) -> None:
    for name, vertex in tree.var_vertex.items():
        loc = f"blossom:${name}"
        if id(vertex) not in by_id:
            report.add("BT001", loc,
                       f"variable ${name} is bound to a vertex that is not "
                       "part of this tree")
            continue
        if name not in vertex.variables:
            report.add("BT001", loc,
                       f"variable ${name} maps to V{vertex.vid}, but the "
                       "vertex does not list it")
        kind = vertex.var_kinds.get(name)
        if kind not in ("for", "let"):
            report.add("BT001", loc,
                       f"variable ${name} on V{vertex.vid} has kind "
                       f"{kind!r}, expected 'for' or 'let'")
    for vertex in tree.vertices:
        for name in vertex.variables:
            if tree.var_vertex.get(name) is not vertex:
                report.add("BT001", f"blossom:V{vertex.vid}",
                           f"vertex lists variable ${name}, but the tree "
                           "maps that variable elsewhere (bound twice?)")
        if vertex.is_blossom and not vertex.returning:
            report.add("BT001", f"blossom:V{vertex.vid}",
                       f"blossom V{vertex.vid} (${','.join(vertex.variables)}) "
                       "is not marked returning")


def _check_edge_modes(tree: BlossomTree, report: AnalysisReport) -> None:
    for edge in tree.tree_edges:
        loc = f"blossom:V{edge.parent.vid}->V{edge.child.vid}"
        if edge.mode not in (MODE_MANDATORY, MODE_OPTIONAL):
            report.add("BT002", loc,
                       f"illegal matching mode {edge.mode!r} (must be "
                       f"{MODE_MANDATORY!r} or {MODE_OPTIONAL!r})")
        if edge.axis not in _LEGAL_AXES:
            report.add("BT002", loc,
                       f"axis {edge.axis!r} is outside the pattern-matching "
                       "subset")
    for vertex in tree.vertices:
        after = getattr(vertex, "after_vid", None)
        if after is None:
            continue
        loc = f"blossom:V{vertex.vid}"
        sibling = tree.vertices[after] if 0 <= after < len(tree.vertices) \
            else None
        if sibling is None:
            report.add("BT002", loc,
                       f"following-sibling anchor references unknown vertex "
                       f"id {after}")
        elif sibling.parent_edge is None or vertex.parent_edge is None \
                or sibling.parent_edge.parent is not vertex.parent_edge.parent:
            report.add("BT002", loc,
                       f"following-sibling anchor V{after} is not a sibling "
                       f"of V{vertex.vid} (different parents)")


def _check_crossings(tree: BlossomTree, by_id: set[int],
                     report: AnalysisReport) -> None:
    for edge in tree.crossing_edges:
        loc = f"crossing:V{edge.u.vid}~V{edge.v.vid}"
        if edge.relation not in _LEGAL_RELATIONS:
            report.add("BT004", loc,
                       f"illegal crossing relation {edge.relation!r}")
        for endpoint in (edge.u, edge.v):
            if id(endpoint) not in by_id:
                report.add("BT004", loc,
                           f"crossing endpoint V{endpoint.vid} is not a "
                           "vertex of this tree")
            elif not endpoint.returning:
                report.add("BT004", loc,
                           f"crossing endpoint V{endpoint.vid} is not "
                           "returning — the join cannot project it")


def _check_returning_closure(tree: BlossomTree, report: AnalysisReport) -> None:
    for edge in tree.tree_edges:
        if edge.child.returning and not edge.parent.returning:
            report.add("BT005",
                       f"blossom:V{edge.parent.vid}->V{edge.child.vid}",
                       f"V{edge.child.vid} is returning but its parent "
                       f"V{edge.parent.vid} is not — projection cannot "
                       "navigate to it")


def _check_inert_optionals(tree: BlossomTree, report: AnalysisReport) -> None:
    for vertex in tree.vertices:
        edge = vertex.parent_edge
        if (edge is not None and edge.mode == MODE_OPTIONAL
                and not vertex.child_edges and not vertex.returning
                and not vertex.variables and not vertex.value_predicates):
            report.add("BT006", f"blossom:V{vertex.vid}",
                       f"optional leaf V{vertex.vid} ({vertex.name!r}) binds "
                       "nothing, constrains nothing and is not returning")


# ----------------------------------------------------------------------
# NoK decomposition stage.
# ----------------------------------------------------------------------

def decomposition_pass(dec: Decomposition, report: AnalysisReport) -> None:
    """NK001-NK003: Algorithm-1 postconditions."""
    report.passes_run.append("decomposition")
    tree = dec.tree
    _check_cut_coverage(tree, dec, report)
    _check_partition(tree, dec, report)
    _check_inter_forest(dec, report)


def _is_cut(edge: object) -> bool:
    return bool(getattr(edge, "cut", False))


def _check_cut_coverage(tree: BlossomTree, dec: Decomposition,
                        report: AnalysisReport) -> None:
    inter_pairs = {(id(e.parent), id(e.child)) for e in dec.inter_edges}
    for edge in tree.tree_edges:
        loc = f"nok-edge:V{edge.parent.vid}->V{edge.child.vid}"
        if _is_cut(edge):
            if edge.axis in _LOCAL_AXES:
                report.add("NK001", loc,
                           f"local-axis edge ({edge.axis!r}) was cut — NoK "
                           "fragments must keep / and following-sibling "
                           "steps internal")
            if (id(edge.parent), id(edge.child)) not in inter_pairs:
                report.add("NK001", loc,
                           "cut edge has no matching inter-NoK edge — the "
                           "join phase would never connect the fragments")
        else:
            if edge.axis not in _LOCAL_AXES:
                report.add("NK001", loc,
                           f"global-axis edge ({edge.axis!r}) was kept inside "
                           "a NoK fragment — fragments must be "
                           "navigation-free (only / and following-sibling)")
    for inter in dec.inter_edges:
        loc = f"inter:V{inter.parent.vid}->V{inter.child.vid}"
        if inter.axis in _LOCAL_AXES:
            report.add("NK001", loc,
                       f"inter-NoK edge carries local axis {inter.axis!r}")


def _check_partition(tree: BlossomTree, dec: Decomposition,
                     report: AnalysisReport) -> None:
    owner: dict[int, int] = {}
    for nok in dec.noks:
        if nok.root not in nok.vertices:
            report.add("NK002", f"nok:{nok.nok_id}",
                       f"NoK root V{nok.root.vid} is not among its own "
                       "members")
        for vertex in nok.vertices:
            if id(vertex) in owner:
                report.add("NK002", f"nok:{nok.nok_id}",
                           f"vertex V{vertex.vid} belongs to NoK "
                           f"{owner[id(vertex)]} and NoK {nok.nok_id}")
            owner[id(vertex)] = nok.nok_id
        # Reachability from the NoK root via uncut edges.
        reached = {id(nok.root)}
        stack = [nok.root]
        while stack:
            vertex = stack.pop()
            for edge in vertex.child_edges:
                if not _is_cut(edge) and id(edge.child) not in reached:
                    reached.add(id(edge.child))
                    stack.append(edge.child)
        for vertex in nok.vertices:
            if id(vertex) not in reached:
                report.add("NK002", f"nok:{nok.nok_id}",
                           f"member V{vertex.vid} is not reachable from the "
                           f"NoK root V{nok.root.vid} via uncut edges")
    for vertex in tree.vertices:
        recorded = dec.nok_of_vertex.get(vertex.vid)
        actual = owner.get(id(vertex))
        if actual is None:
            report.add("NK002", f"blossom:V{vertex.vid}",
                       f"vertex V{vertex.vid} belongs to no NoK fragment")
        elif recorded != actual:
            report.add("NK002", f"blossom:V{vertex.vid}",
                       f"vertex V{vertex.vid} is recorded in NoK {recorded} "
                       f"but listed as a member of NoK {actual}")


def _check_inter_forest(dec: Decomposition, report: AnalysisReport) -> None:
    target_counts: dict[int, int] = {}
    for inter in dec.inter_edges:
        loc = f"inter:V{inter.parent.vid}->V{inter.child.vid}"
        recorded_from = dec.nok_of_vertex.get(inter.parent.vid)
        recorded_to = dec.nok_of_vertex.get(inter.child.vid)
        if recorded_from != inter.nok_from:
            report.add("NK003", loc,
                       f"edge claims source NoK {inter.nok_from} but the "
                       f"parent vertex lives in NoK {recorded_from}")
        if recorded_to != inter.nok_to:
            report.add("NK003", loc,
                       f"edge claims target NoK {inter.nok_to} but the child "
                       f"vertex lives in NoK {recorded_to}")
        if not (0 <= inter.nok_to < len(dec.noks)) \
                or dec.noks[inter.nok_to].root is not inter.child:
            report.add("NK003", loc,
                       f"child V{inter.child.vid} is not the root of its "
                       f"NoK {inter.nok_to}")
        target_counts[inter.nok_to] = target_counts.get(inter.nok_to, 0) + 1
    for nok_id, count in target_counts.items():
        if count > 1:
            report.add("NK003", f"nok:{nok_id}",
                       f"NoK {nok_id} is the target of {count} inter edges "
                       "(must be a forest)")
    # Every non-root NoK reachable from a root NoK (detects cycles too).
    reachable = {nok.nok_id for nok in dec.root_noks()}
    changed = True
    while changed:
        changed = False
        for inter in dec.inter_edges:
            if inter.nok_from in reachable and inter.nok_to not in reachable:
                reachable.add(inter.nok_to)
                changed = True
    for nok in dec.noks:
        if nok.nok_id not in reachable:
            report.add("NK003", f"nok:{nok.nok_id}",
                       f"NoK {nok.nok_id} (root V{nok.root.vid}) is not "
                       "reachable from any pattern-root NoK")


# ----------------------------------------------------------------------
# Dewey stage.
# ----------------------------------------------------------------------

def dewey_pass(tree: BlossomTree, dewey: DeweyAssignment,
               report: AnalysisReport) -> None:
    """DW001/DW002: Theorem 1/2 preconditions on the global assignment."""
    report.passes_run.append("dewey")
    _check_dewey_staleness(tree, dewey, report)
    _check_dewey_order(tree, dewey, report)


def _check_dewey_staleness(tree: BlossomTree, dewey: DeweyAssignment,
                           report: AnalysisReport) -> None:
    live = {v.vid: v for v in tree.vertices}
    for vid, ident in dewey.of_vertex.items():
        vertex = live.get(vid)
        loc = f"dewey:{'.'.join(str(part) for part in ident)}"
        if vertex is None:
            report.add("DW002", loc,
                       f"Dewey ID assigned to vertex id {vid}, which does "
                       "not exist in this tree (stale assignment)")
            continue
        if dewey.vertex_of.get(ident) is not vertex:
            report.add("DW002", loc,
                       f"vertex->Dewey and Dewey->vertex maps disagree for "
                       f"V{vid}")
        if not vertex.returning and vertex not in tree.roots:
            report.add("DW002", loc,
                       f"Dewey ID assigned to non-returning vertex V{vid}")
    for ident, vertex in dewey.vertex_of.items():
        if live.get(vertex.vid) is not vertex:
            report.add("DW002", f"dewey:{dewey.format(ident)}",
                       f"Dewey->vertex map references a vertex (V{vertex.vid}) "
                       "that is not part of this tree")
        elif dewey.of_vertex.get(vertex.vid) != ident:
            report.add("DW002", f"dewey:{dewey.format(ident)}",
                       f"Dewey->vertex map gives V{vertex.vid} ID "
                       f"{dewey.format(ident)}, but the vertex->Dewey map "
                       "disagrees")


def _closest_returning_ancestor(vertex: BlossomVertex) -> BlossomVertex | None:
    node = vertex
    while node.parent_edge is not None:
        node = node.parent_edge.parent
        if node.returning:
            return node
    return None


def _check_dewey_order(tree: BlossomTree, dewey: DeweyAssignment,
                       report: AnalysisReport) -> None:
    ids = list(dewey.of_vertex.values())
    if len(set(ids)) != len(ids):
        report.add("DW001", "dewey",
                   "Dewey IDs are not unique across the returning tree")
    for ordinal, root in enumerate(tree.roots, start=1):
        assigned = dewey.of_vertex.get(root.vid)
        if assigned != (1, ordinal):
            report.add("DW001", f"blossom:V{root.vid}",
                       f"pattern root #{ordinal} must carry Dewey ID "
                       f"1.{ordinal}, found "
                       f"{dewey.format(assigned) if assigned else 'none'}")
    for vertex in tree.vertices:
        if not vertex.returning:
            continue
        assigned = dewey.of_vertex.get(vertex.vid)
        loc = f"blossom:V{vertex.vid}"
        if assigned is None:
            report.add("DW001", loc,
                       f"returning vertex V{vertex.vid} ({vertex.name!r}) "
                       "has no Dewey ID — the assignment is not global")
            continue
        if len(assigned) < 2 or any(part < 1 for part in assigned):
            report.add("DW001", loc,
                       f"malformed Dewey ID {dewey.format(assigned)}")
            continue
        ancestor = _closest_returning_ancestor(vertex)
        if ancestor is None:
            continue  # pattern roots handled above
        parent_id = dewey.of_vertex.get(ancestor.vid)
        if parent_id is None:
            continue  # already reported as missing on the ancestor
        if assigned[:-1] != parent_id:
            report.add("DW001", loc,
                       f"Dewey ID {dewey.format(assigned)} does not extend "
                       f"its closest returning ancestor V{ancestor.vid} "
                       f"({dewey.format(parent_id)}) by one component")
        recorded = dewey.returning_parent.get(vertex.vid)
        if recorded != ancestor.vid:
            report.add("DW001", loc,
                       f"returning-parent map records V{recorded}, but the "
                       f"closest returning ancestor is V{ancestor.vid}")
    # Sibling ordinals dense 1..k under every prefix.
    by_prefix: dict[tuple[int, ...], list[int]] = {}
    for ident in dewey.of_vertex.values():
        if len(ident) >= 2:
            by_prefix.setdefault(ident[:-1], []).append(ident[-1])
    for prefix, ordinals in by_prefix.items():
        if sorted(ordinals) != list(range(1, len(ordinals) + 1)):
            report.add("DW001", f"dewey:{dewey.format(prefix)}",
                       f"sibling ordinals under {dewey.format(prefix)} are "
                       f"{sorted(ordinals)}, expected dense 1..k")


# ----------------------------------------------------------------------
# Physical-plan stage.
# ----------------------------------------------------------------------

def partition_unsafe_noks(dec: Decomposition) -> list:
    """The NoKs partition-parallel scan execution cannot cover.

    Every absolute path anchors at a synthetic ``#root`` vertex.  When
    that vertex's NoK is *trivial* (the single anchor vertex, no value
    predicates) the coordinator matches it once against the document
    node and the remaining NoKs scan in partitions — safe.  But a
    ``#root`` NoK with more vertices (an all-local-axis chain like
    ``/bib/book``, kept whole by Algorithm 1) or with predicates is
    matched *navigationally* from the document node, never by the
    sequential scan the partitioner cuts up — partitioning it would
    re-run the navigation once per partition and multiply its matches.
    """
    return [nok for nok in dec.noks
            if nok.root.name == "#root"
            and (len(nok.vertices) > 1 or nok.root.value_predicates)]


def plan_pass(tree: BlossomTree, dec: Decomposition, dewey: DeweyAssignment,
              report: AnalysisReport, strategy: str | None = None,
              recursive_document: bool | None = None) -> None:
    """PL001-PL004: operator applicability over the compiled artifacts.

    ``strategy`` / ``recursive_document`` are optional because the CLI
    analyzes artifacts without an engine; strategy checks are skipped
    when they are unknown.
    """
    report.passes_run.append("plan")
    for inter in dec.inter_edges:
        loc = f"inter:V{inter.parent.vid}->V{inter.child.vid}"
        parent_id = dewey.of_vertex.get(inter.parent.vid)
        if parent_id is None:
            report.add("PL001", loc,
                       f"join parent V{inter.parent.vid} has no Dewey ID — "
                       "operands disagree on the returning-node schema")
            continue
        if inter.child.returning:
            child_id = dewey.of_vertex.get(inter.child.vid)
            if child_id is None:
                report.add("PL001", loc,
                           f"returning join child V{inter.child.vid} has no "
                           "Dewey ID")
            elif child_id[:-1] != parent_id:
                report.add("PL001", loc,
                           f"join child Dewey ID "
                           f"{dewey.format(child_id)} does not extend the "
                           f"parent's ({dewey.format(parent_id)}) — the "
                           "merge cannot nest their NestedLists")
    if strategy is not None:
        _check_strategy(tree, report, strategy, recursive_document)
        if strategy == "parallel":
            for nok in partition_unsafe_noks(dec):
                report.add("PL004", f"nok:{nok.nok_id}",
                           f"parallel strategy chosen, but NoK {nok.nok_id} "
                           "anchors at #root with local navigation — it is "
                           "matched from the document node, not by the "
                           "sequential scan the partitioner cuts, so "
                           "partition-parallel execution cannot cover it")


def _check_strategy(tree: BlossomTree, report: AnalysisReport, strategy: str,
                    recursive_document: bool | None) -> None:
    from repro.physical.twigstack import twig_supported

    if strategy not in _KNOWN_STRATEGIES:
        report.add("PL002", "plan", f"unknown strategy {strategy!r}")
        return
    if strategy == "twigstack" and not twig_supported(tree):
        report.add("PL002", "plan",
                   "twigstack strategy chosen for a pattern that is not a "
                   "single //-twig")
    if strategy in ("pipelined", "caching") and recursive_document:
        report.add("PL003", "plan",
                   f"{strategy} merge join on a recursive document: "
                   "Theorem 2's non-containment precondition may fail "
                   "(Example 5) — ordered output is not guaranteed")


# ----------------------------------------------------------------------
# Serving stage.
# ----------------------------------------------------------------------

def snapshot_pass(plan: CachedPlan, live_snapshots: Collection[int],
                  report: AnalysisReport) -> None:
    """SV001: the plan's stamped snapshot must still be live.

    ``live_snapshots`` is the serving catalog's ground truth — the ids
    of the document's current and pinned versions.  Plans compiled
    outside the serving layer (``snapshot_id is None``) always pass.
    """
    report.passes_run.append("serve")
    snapshot_id = plan.snapshot_id
    if snapshot_id is None:
        return
    if snapshot_id not in live_snapshots:
        live = ", ".join(str(i) for i in sorted(live_snapshots)) or "-"
        report.add("SV001", "serve",
                   f"plan was compiled against snapshot {snapshot_id}, "
                   f"which has been dropped (live snapshots: {live})")


# ----------------------------------------------------------------------
# Fused fast-path predicates (the verify gates' hot path).
# ----------------------------------------------------------------------
#
# The reporting passes above favour precise findings over speed: they
# build location strings eagerly and re-derive index sets per check.
# The engine verifies every plan it compiles, so the *clean* case must
# cost microseconds.  These predicates fuse the same invariants into
# single traversals and answer only clean/dirty; the verify gates run
# the full passes exactly when a predicate says dirty (or a warning
# rule could fire), so findings and rule IDs never change.
#
# Keep them in lockstep with the passes: every check added to a pass
# needs its twin here, and a corruption fixture in
# tests/test_analysis_rules.py driving the verify gate (which exercises
# this fast path).  tests/conftest.py cross-checks predicate-vs-pass
# agreement on every plan the suite compiles.

def tree_quick_clean(tree: BlossomTree) -> bool:
    """True iff :func:`blossom_pass` would report nothing (BT001-BT006).

    The predicate is vid-centric: after the dense-vid check up front,
    "vertex belongs to this tree" is ``vertices[v.vid] is v`` (one list
    index + identity test) instead of an id()-set membership, and the
    reachability marks live in a bytearray indexed by vid.  Two checks
    have no explicit twin because cheaper ones subsume them:

    * "edge listed by its parent" — an unlisted edge leaves its child
      unreachable, so the reachability count at the bottom goes dirty;
    * "vertex.parent_edge is a known edge" — every tree edge's child
      points back at it, so tree_edges maps injectively into the
      parented vertices, and ``n_parented == len(tree_edges)`` forces
      the two sets to coincide.
    """
    vertices = tree.vertices
    n = len(vertices)
    for index, vertex in enumerate(vertices):
        if vertex.vid != index:
            return False
    for root in tree.roots:
        vid = root.vid
        if not 0 <= vid < n or vertices[vid] is not root \
                or root.parent_edge is not None:
            return False
    for edge in tree.tree_edges:
        parent = edge.parent
        child = edge.child
        pvid = parent.vid
        cvid = child.vid
        if not 0 <= pvid < n or vertices[pvid] is not parent:
            return False
        if not 0 <= cvid < n or vertices[cvid] is not child:
            return False
        if child.parent_edge is not edge:
            return False
        mode = edge.mode
        if mode != MODE_MANDATORY and mode != MODE_OPTIONAL:
            return False
        if edge.axis not in _LEGAL_AXES:
            return False
        if child.returning and not parent.returning:
            return False
    n_parented = 0
    var_vertex_get = tree.var_vertex.get
    for vertex in vertices:
        for edge in vertex.child_edges:
            if edge.parent is not vertex or edge.child.parent_edge is not edge:
                return False
        parent_edge = vertex.parent_edge
        if parent_edge is not None:
            n_parented += 1
        after = getattr(vertex, "after_vid", None)
        if after is not None:
            if not 0 <= after < n:
                return False
            sibling = vertices[after]
            if sibling.parent_edge is None or parent_edge is None \
                    or sibling.parent_edge.parent is not parent_edge.parent:
                return False
        if vertex.variables:
            if not vertex.returning:
                return False
            for name in vertex.variables:
                if var_vertex_get(name) is not vertex:
                    return False
        elif parent_edge is not None \
                and parent_edge.mode == MODE_OPTIONAL \
                and not vertex.child_edges and not vertex.returning \
                and not vertex.value_predicates:
            return False
    if n_parented != len(tree.tree_edges):
        return False
    for name, vertex in tree.var_vertex.items():
        vid = vertex.vid
        if not 0 <= vid < n or vertices[vid] is not vertex \
                or name not in vertex.variables:
            return False
        kind = vertex.var_kinds.get(name)
        if kind != "for" and kind != "let":
            return False
    for crossing in tree.crossing_edges:
        if crossing.relation not in _LEGAL_RELATIONS:
            return False
        u = crossing.u
        v = crossing.v
        if not 0 <= u.vid < n or vertices[u.vid] is not u:
            return False
        if not 0 <= v.vid < n or vertices[v.vid] is not v:
            return False
        if not u.returning or not v.returning:
            return False
    # Reachability: every vertex exactly once across all roots (covers
    # cycles, shared subtrees, duplicate roots and orphans at once).
    # The identity test inside the loop keeps alien child vertices from
    # aliasing a real vid.
    visited = bytearray(n)
    reached = 0
    for root in tree.roots:
        stack = [root]
        pop = stack.pop
        push = stack.append
        while stack:
            vertex = pop()
            vid = vertex.vid
            if not 0 <= vid < n or vertices[vid] is not vertex \
                    or visited[vid]:
                return False
            visited[vid] = 1
            reached += 1
            for edge in vertex.child_edges:
                push(edge.child)
    return reached == n


def artifacts_quick_clean(artifacts: object, strategy: str | None = None,
                          recursive_document: bool | None = None) -> bool:
    """True iff the decomposition, Dewey and plan passes would all
    report nothing (NK001-NK003, DW001-DW002, PL001/PL002/PL004) *and*
    no warning rule (PL003) could fire."""
    tree = artifacts.tree          # type: ignore[attr-defined]
    dec = artifacts.decomposition  # type: ignore[attr-defined]
    dewey = artifacts.dewey        # type: ignore[attr-defined]
    vertices = tree.vertices
    n = len(vertices)
    nok_of_vertex = dec.nok_of_vertex
    nok_of_vertex_get = nok_of_vertex.get
    # NK001 + the NK002 *parent rule*, fused over one edge sweep:
    # exactly the non-local edges are cut; every cut edge has a
    # matching inter edge; every uncut edge stays inside one NoK.  The
    # full pass checks NK002 as per-NoK root-reachability via a DFS —
    # on an acyclic tree (the gates conjoin this predicate with
    # tree_quick_clean / tree_verified) the parent rule is equivalent
    # by ascending-chain induction, and strictly conservative
    # otherwise, so a disagreement can only send us to the full
    # passes, never skip them.
    inter_pairs = {(e.parent.vid, e.child.vid) for e in dec.inter_edges}
    for edge in tree.tree_edges:
        if getattr(edge, "cut", False):
            if edge.axis in _LOCAL_AXES:
                return False
            if (edge.parent.vid, edge.child.vid) not in inter_pairs:
                return False
        else:
            if edge.axis not in _LOCAL_AXES:
                return False
            nok_id = nok_of_vertex_get(edge.parent.vid)
            if nok_id is None or nok_of_vertex_get(edge.child.vid) != nok_id:
                return False
    # NK002: member lists and the recorded vertex->NoK map describe the
    # same partition.  Identity tests against the vid slot keep stale
    # vertex objects (same vid, different object) from aliasing live
    # ones — the vid-keyed maps alone could not tell them apart.
    total_members = 0
    for nok in dec.noks:
        nok_id = nok.nok_id
        root = nok.root
        root_seen = False
        for vertex in nok.vertices:
            total_members += 1
            vid = vertex.vid
            if not 0 <= vid < n or vertices[vid] is not vertex:
                return False
            if nok_of_vertex_get(vid) != nok_id:
                return False
            if vertex is root:
                root_seen = True
        if not root_seen:
            return False
    if total_members != n or len(nok_of_vertex) != n:
        return False
    # NK003: inter edges mirror the recorded NoK ids and form a forest.
    # The full pass's reachability fixpoint is implied: every NoK root
    # is either a pattern root (so its NoK is a scan anchor) or the
    # child of a *cut* edge, whose matching inter edge (NK001) hangs it
    # under its parent's NoK; induction over the acyclic vertex forest
    # then reaches every NoK.
    targets: set[int] = set()
    noks = dec.noks
    n_noks = len(noks)
    for inter in dec.inter_edges:
        if inter.axis in _LOCAL_AXES:
            return False
        parent = inter.parent
        child = inter.child
        if not 0 <= parent.vid < n or vertices[parent.vid] is not parent:
            return False
        if not 0 <= child.vid < n or vertices[child.vid] is not child:
            return False
        if nok_of_vertex_get(parent.vid) != inter.nok_from:
            return False
        nok_to = inter.nok_to
        if nok_of_vertex_get(child.vid) != nok_to:
            return False
        if not 0 <= nok_to < n_noks or noks[nok_to].root is not child:
            return False
        if nok_to in targets:
            return False
        targets.add(nok_to)
    for nok in noks:
        parent_edge = nok.root.parent_edge
        if parent_edge is None:
            continue
        if not getattr(parent_edge, "cut", False):
            return False
    # Pattern roots anchor their NoKs (parentless vertices are exactly
    # tree.roots on a tree that passed the conjoined tree check).
    for root in tree.roots:
        nok_id = nok_of_vertex_get(root.vid)
        if nok_id is None or not 0 <= nok_id < n_noks \
                or noks[nok_id].root is not root:
            return False
    # DW002: the two Dewey maps agree and cover exactly the live tree.
    # vid-indexing vertices is safe: the conjoined tree check verified
    # vid density.
    n = len(vertices)
    of_vertex = dewey.of_vertex
    of_vertex_get = of_vertex.get
    vertex_of_get = dewey.vertex_of.get
    root_ids = {id(r) for r in tree.roots}
    for vid, ident in of_vertex.items():
        if not 0 <= vid < n:
            return False
        vertex = vertices[vid]
        if vertex_of_get(ident) is not vertex:
            return False
        if not vertex.returning and id(vertex) not in root_ids:
            return False
    for ident, vertex in dewey.vertex_of.items():
        vid = vertex.vid
        if not 0 <= vid < n or vertices[vid] is not vertex:
            return False
        if of_vertex_get(vid) != ident:
            return False
    # DW001: unique, rooted at 1.i, parent-extending, dense ordinals.
    if len(set(of_vertex.values())) != len(of_vertex):
        return False
    for ordinal, root in enumerate(tree.roots, start=1):
        if of_vertex_get(root.vid) != (1, ordinal):
            return False
    returning_parent_get = dewey.returning_parent.get
    for vertex in vertices:
        if not vertex.returning:
            continue
        assigned = of_vertex_get(vertex.vid)
        if assigned is None or len(assigned) < 2:
            return False
        for part in assigned:
            if part < 1:
                return False
        ancestor = _closest_returning_ancestor(vertex)
        if ancestor is None:
            continue
        parent_id = of_vertex_get(ancestor.vid)
        if parent_id is None:
            continue  # caught on the ancestor's own iteration
        if assigned[:-1] != parent_id:
            return False
        if returning_parent_get(vertex.vid) != ancestor.vid:
            return False
    # Dense sibling ordinals: IDs are unique (above), so ordinals under
    # a prefix are distinct positive ints — dense 1..k iff max == count.
    counts: dict[tuple[int, ...], int] = {}
    maxes: dict[tuple[int, ...], int] = {}
    counts_get = counts.get
    maxes_get = maxes.get
    for ident in of_vertex.values():
        if len(ident) >= 2:
            last = ident[-1]
            if last < 1:
                return False
            prefix = ident[:-1]
            counts[prefix] = counts_get(prefix, 0) + 1
            if last > maxes_get(prefix, 0):
                maxes[prefix] = last
    for prefix, count in counts.items():
        if maxes[prefix] != count:
            return False
    # PL001: join endpoints agree on the Dewey schema.
    for inter in dec.inter_edges:
        parent_id = of_vertex_get(inter.parent.vid)
        if parent_id is None:
            return False
        if inter.child.returning:
            child_id = of_vertex_get(inter.child.vid)
            if child_id is None or child_id[:-1] != parent_id:
                return False
    # PL002/PL003: strategy applicability; a possible PL003 warning
    # must go through the full pass so it is reported and counted.
    if strategy is not None:
        if strategy not in _KNOWN_STRATEGIES:
            return False
        if strategy == "twigstack":
            from repro.physical.twigstack import twig_supported

            if not twig_supported(tree):
                return False
        if strategy in ("pipelined", "caching") and recursive_document:
            return False
        if strategy == "parallel" and partition_unsafe_noks(dec):
            return False
    return True
