"""CLI: lint compiled query plans.

Usage::

    python -m repro.analysis query.xq [more.xq ...]
    python -m repro.analysis --examples --workloads
    python -m repro.analysis --examples --json report.json
    python -m repro.analysis --lint --examples --workloads
    python -m repro.analysis --check-report report.json
    python -m repro.analysis --rules

Default mode: each query is compiled (parse → BlossomTree → NoK
decomposition → Dewey assignment) and every analyzer pass runs over
the artifacts.  Findings print lint style (``source:RULE: severity:
message``); the process exits non-zero when any error-severity finding
fired, so the command slots directly into CI.  Queries outside the
pattern-matching subset compile to no artifacts and are reported as
skipped — that is the engine's navigational fallback, not a defect.

``--lint`` switches to the QL query-vs-data satisfiability lint: each
query is checked against the structural summary of a representative
document (the datagen workloads lint against their own generated
datasets; files and the examples corpus against a built-in bibliography
document covering the corpus tags).  A QL error here means the query
provably matches nothing on that document — the engine would rewrite
it to a static-empty plan — so a clean corpus proves the lint fires on
none of the queries we actually serve.

``--json`` payloads are versioned (``"schema": 1``, the convention
shared with ``Database.stats()``); ``--check-report`` re-reads such a
payload (the CI artifact) and refuses unknown schema versions the same
way ``python -m repro.obs report`` does.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.analyzer import analyze_artifacts
from repro.analysis.corpus import EXAMPLE_QUERIES
from repro.analysis.passes import ast_pass
from repro.analysis.report import AnalysisReport
from repro.analysis.rules import rule_table
from repro.errors import QuerySyntaxError

__all__ = ["main", "analyze_query_text"]

#: JSON report schema version (the ``Database.stats()`` convention):
#: bump when the payload shape changes incompatibly; readers refuse
#: versions they do not know.
REPORT_SCHEMA = 1

#: Built-in document the examples corpus (and ad-hoc query files) lint
#: against in ``--lint`` mode: one bibliography covering every tag and
#: attribute the corpus queries touch, so a lint finding on the corpus
#: means the *lint* regressed, not the document.
_EXAMPLE_DOC = """\
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
  <item>
    <subtitle>A survey</subtitle>
    <isbn>1-55860-622-X</isbn>
  </item>
</bib>
"""


def analyze_query_text(text: str,
                       source: str = "<query>") -> AnalysisReport | None:
    """Compile one query and analyze its artifacts.

    Returns ``None`` when the query falls outside the pattern-matching
    subset (navigational fallback: nothing to verify).  Raises
    :class:`~repro.errors.QuerySyntaxError` for unparseable input.
    """
    from repro.engine.compiler import compile_query
    from repro.pattern.artifact import prepare_artifacts

    compiled = compile_query(text)
    if compiled.tree is None:
        return None
    report = AnalysisReport(source=source)
    if compiled.flwor is not None:
        ast_pass(compiled.flwor, report, external=compiled.parameters)
    report.extend(analyze_artifacts(prepare_artifacts(compiled.tree),
                                    source=source))
    return report


def _workload_queries() -> dict[str, str]:
    from repro.datagen.workload import DATASETS

    queries: dict[str, str] = {}
    for name, dataset in DATASETS.items():
        for spec in dataset.queries:
            queries[f"{name}:{spec.qid}"] = spec.text
    return queries


def _check_report(path: str) -> int:
    """Validate a ``--json`` report written by an earlier run.

    Mirrors the schema gate in ``python -m repro.obs report``: an
    unknown ``schema`` means a newer (or older) writer produced the
    payload and this reader must not guess at its shape.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read report {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or payload.get("tool") != "repro.analysis":
        print(f"error: {path} is not a repro.analysis report "
              "(missing tool marker)", file=sys.stderr)
        return 2
    schema = payload.get("schema")
    if schema != REPORT_SCHEMA:
        print(f"error: report declares schema {schema!r}; this reader "
              f"understands schema {REPORT_SCHEMA} only (upgrade repro, "
              "or regenerate the report)", file=sys.stderr)
        return 2
    errors = int(payload.get("errors", 0))
    warnings = int(payload.get("warnings", 0))
    parse_failures = int(payload.get("parse_failures", 0))
    print(f"report {path}: schema {schema}, mode {payload.get('mode')}, "
          f"{payload.get('queries_analyzed', 0)} analyzed, "
          f"{errors} error(s), {warnings} warning(s), "
          f"{parse_failures} parse failure(s)")
    if parse_failures:
        return 2
    return 1 if errors else 0


def _lint_groups(args: argparse.Namespace) -> list[tuple[str, str, object]]:
    """Build ``(source, text, summary)`` triples for ``--lint`` mode.

    Ad-hoc files and the examples corpus lint against the built-in
    bibliography; each workload query lints against the structural
    summary of its *own* generated dataset, so the lint judges the
    query on the document it actually runs over.
    """
    from repro.xmlkit.parser import parse
    from repro.xmlkit.summary import build_summary

    groups: list[tuple[str, str, object]] = []
    example_summary = None
    if args.files or args.examples:
        example_summary = build_summary(parse(_EXAMPLE_DOC))
    for path in args.files:
        with open(path, encoding="utf-8") as handle:
            groups.append((path, handle.read(), example_summary))
    if args.examples:
        for source, text in EXAMPLE_QUERIES.items():
            groups.append((source, text, example_summary))
    if args.workloads:
        from repro.datagen.workload import DATASETS

        for name, dataset in DATASETS.items():
            summary = build_summary(dataset.generate(scale=args.scale))
            for spec in dataset.queries:
                groups.append((f"{name}:{spec.qid}", spec.text, summary))
    return groups


def _run_lint(args: argparse.Namespace) -> int:
    """``--lint``: the QL query-vs-data satisfiability lint."""
    from repro.analysis.query import analyze_query
    from repro.engine.compiler import compile_query

    try:
        groups = _lint_groups(args)
    except OSError as exc:
        print(f"error: cannot read query file: {exc}", file=sys.stderr)
        return 2

    reports: list[AnalysisReport] = []
    skipped: dict[str, str] = {}
    parse_failures = 0
    static_empty = 0
    for source, text, summary in groups:
        try:
            compiled = compile_query(text)
        except QuerySyntaxError as exc:
            parse_failures += 1
            print(f"{source}: parse error: {exc}", file=sys.stderr)
            continue
        if compiled.tree is None:
            skipped[source] = "navigational fallback (no pattern to lint)"
            if not args.quiet:
                print(f"{source}: skipped (outside the pattern-matching "
                      "subset)")
            continue
        lint = analyze_query(
            compiled.tree, summary,
            flwor=None if compiled.is_bare_path else compiled.flwor,
            source=source)
        reports.append(lint.report)
        if lint.static_empty:
            static_empty += 1
        for finding in lint.report.findings:
            print(finding.format(source))
        if not args.quiet and lint.report.clean:
            print(f"{source}: ok")

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    print(f"linted {len(reports)} quer{'y' if len(reports) == 1 else 'ies'}"
          f" ({len(skipped)} skipped): {errors} error(s), "
          f"{warnings} warning(s), {static_empty} statically empty")

    if args.json:
        payload = {
            "tool": "repro.analysis",
            "schema": REPORT_SCHEMA,
            "mode": "lint",
            "queries_analyzed": len(reports),
            "queries_skipped": len(skipped),
            "parse_failures": parse_failures,
            "errors": errors,
            "warnings": warnings,
            "static_empty": static_empty,
            "skipped": skipped,
            "reports": [report.to_dict() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        if not args.quiet:
            print(f"wrote JSON report to {args.json}")

    if parse_failures:
        return 2
    return 1 if errors else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant analysis of compiled query plans.")
    parser.add_argument("files", nargs="*", metavar="QUERY_FILE",
                        help="files containing one query each")
    parser.add_argument("--examples", action="store_true",
                        help="analyze the built-in examples corpus")
    parser.add_argument("--workloads", action="store_true",
                        help="analyze the datagen benchmark workloads (d1-d5)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--lint", action="store_true",
                        help="run the QL query-vs-data lint against "
                             "generated documents instead of the artifact "
                             "invariants")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="datagen scale factor for --lint --workloads "
                             "documents (default 0.1; below that the rare "
                             "high-selectivity labels vanish and the lint "
                             "correctly flags the workload queries)")
    parser.add_argument("--check-report", metavar="PATH", default=None,
                        help="validate a previously written --json report "
                             "(refuses unknown schema versions) and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write a machine-readable JSON report")
    parser.add_argument("--quiet", action="store_true",
                        help="only print findings and the final summary")
    args = parser.parse_args(argv)

    if args.rules:
        print(rule_table())
        return 0
    if args.check_report is not None:
        return _check_report(args.check_report)
    if not (args.files or args.examples or args.workloads):
        parser.error("nothing to analyze: pass query files, --examples "
                     "and/or --workloads")
    if args.lint:
        return _run_lint(args)

    queries: dict[str, str] = {}
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                queries[path] = handle.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.examples:
        queries.update(EXAMPLE_QUERIES)
    if args.workloads:
        queries.update(_workload_queries())

    reports: list[AnalysisReport] = []
    skipped: dict[str, str] = {}
    parse_failures = 0
    for source, text in queries.items():
        try:
            report = analyze_query_text(text, source=source)
        except QuerySyntaxError as exc:
            parse_failures += 1
            print(f"{source}: parse error: {exc}", file=sys.stderr)
            continue
        if report is None:
            skipped[source] = "navigational fallback (no pattern artifacts)"
            if not args.quiet:
                print(f"{source}: skipped (outside the pattern-matching "
                      "subset)")
            continue
        reports.append(report)
        for finding in report.findings:
            print(finding.format(source))
        if not args.quiet and report.clean:
            print(f"{source}: ok ({', '.join(report.passes_run)})")

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    print(f"analyzed {len(reports)} quer{'y' if len(reports) == 1 else 'ies'}"
          f" ({len(skipped)} skipped): {errors} error(s), "
          f"{warnings} warning(s)")

    if args.json:
        payload = {
            "tool": "repro.analysis",
            "schema": REPORT_SCHEMA,
            "mode": "invariants",
            "queries_analyzed": len(reports),
            "queries_skipped": len(skipped),
            "parse_failures": parse_failures,
            "errors": errors,
            "warnings": warnings,
            "skipped": skipped,
            "reports": [report.to_dict() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        if not args.quiet:
            print(f"wrote JSON report to {args.json}")

    if parse_failures:
        return 2
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
