"""CLI: lint compiled query plans.

Usage::

    python -m repro.analysis query.xq [more.xq ...]
    python -m repro.analysis --examples --workloads
    python -m repro.analysis --examples --json report.json
    python -m repro.analysis --rules

Each query is compiled (parse → BlossomTree → NoK decomposition →
Dewey assignment) and every analyzer pass runs over the artifacts.
Findings print lint style (``source:RULE: severity: message``); the
process exits non-zero when any error-severity finding fired, so the
command slots directly into CI.  Queries outside the pattern-matching
subset compile to no artifacts and are reported as skipped — that is
the engine's navigational fallback, not a defect.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.analyzer import analyze_artifacts
from repro.analysis.corpus import EXAMPLE_QUERIES
from repro.analysis.passes import ast_pass
from repro.analysis.report import AnalysisReport
from repro.analysis.rules import rule_table
from repro.errors import QuerySyntaxError

__all__ = ["main", "analyze_query_text"]


def analyze_query_text(text: str,
                       source: str = "<query>") -> AnalysisReport | None:
    """Compile one query and analyze its artifacts.

    Returns ``None`` when the query falls outside the pattern-matching
    subset (navigational fallback: nothing to verify).  Raises
    :class:`~repro.errors.QuerySyntaxError` for unparseable input.
    """
    from repro.engine.compiler import compile_query
    from repro.pattern.artifact import prepare_artifacts

    compiled = compile_query(text)
    if compiled.tree is None:
        return None
    report = AnalysisReport(source=source)
    if compiled.flwor is not None:
        ast_pass(compiled.flwor, report, external=compiled.parameters)
    report.extend(analyze_artifacts(prepare_artifacts(compiled.tree),
                                    source=source))
    return report


def _workload_queries() -> dict[str, str]:
    from repro.datagen.workload import DATASETS

    queries: dict[str, str] = {}
    for name, dataset in DATASETS.items():
        for spec in dataset.queries:
            queries[f"{name}:{spec.qid}"] = spec.text
    return queries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant analysis of compiled query plans.")
    parser.add_argument("files", nargs="*", metavar="QUERY_FILE",
                        help="files containing one query each")
    parser.add_argument("--examples", action="store_true",
                        help="analyze the built-in examples corpus")
    parser.add_argument("--workloads", action="store_true",
                        help="analyze the datagen benchmark workloads (d1-d5)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write a machine-readable JSON report")
    parser.add_argument("--quiet", action="store_true",
                        help="only print findings and the final summary")
    args = parser.parse_args(argv)

    if args.rules:
        print(rule_table())
        return 0
    if not (args.files or args.examples or args.workloads):
        parser.error("nothing to analyze: pass query files, --examples "
                     "and/or --workloads")

    queries: dict[str, str] = {}
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                queries[path] = handle.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.examples:
        queries.update(EXAMPLE_QUERIES)
    if args.workloads:
        queries.update(_workload_queries())

    reports: list[AnalysisReport] = []
    skipped: dict[str, str] = {}
    parse_failures = 0
    for source, text in queries.items():
        try:
            report = analyze_query_text(text, source=source)
        except QuerySyntaxError as exc:
            parse_failures += 1
            print(f"{source}: parse error: {exc}", file=sys.stderr)
            continue
        if report is None:
            skipped[source] = "navigational fallback (no pattern artifacts)"
            if not args.quiet:
                print(f"{source}: skipped (outside the pattern-matching "
                      "subset)")
            continue
        reports.append(report)
        for finding in report.findings:
            print(finding.format(source))
        if not args.quiet and report.clean:
            print(f"{source}: ok ({', '.join(report.passes_run)})")

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    print(f"analyzed {len(reports)} quer{'y' if len(reports) == 1 else 'ies'}"
          f" ({len(skipped)} skipped): {errors} error(s), "
          f"{warnings} warning(s)")

    if args.json:
        payload = {
            "tool": "repro.analysis",
            "queries_analyzed": len(reports),
            "queries_skipped": len(skipped),
            "parse_failures": parse_failures,
            "errors": errors,
            "warnings": warnings,
            "skipped": skipped,
            "reports": [report.to_dict() for report in reports],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        if not args.quiet:
            print(f"wrote JSON report to {args.json}")

    if parse_failures:
        return 2
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
