"""Query-vs-data satisfiability analysis: the ``QL`` pass family.

Where the AST/BT/NK/DW/PL passes verify that a compiled plan is
*well-formed*, this pass asks a different question: can the query match
anything **on this document**?  It runs at compile time against the
per-snapshot :class:`~repro.xmlkit.summary.StructuralSummary` and finds

* steps whose label never occurs, or never occurs in the structural
  relationship the pattern requires (``QL001``/``QL002``),
* value-predicate sets that can never hold simultaneously after
  constant folding (``QL003``), and predicates over attributes the
  label never carries (``QL006``),
* ``where`` clauses that fold to a constant (``QL004`` false /
  ``QL005`` true), and ``return`` paths the summary proves empty.

Every finding carries rewrite-safe provenance as a
:class:`PruneDecision`: either the whole plan is **statically empty**
(the unsatisfiable vertex sits on a mandatory path to a pattern root,
so no tuple can exist), or an optional branch is **prunable** (its
match is provably the empty sequence, so cutting it cannot change any
tuple).  The pruning rewriter in :mod:`repro.engine.optimizer` applies
the decisions; the lint itself never raises.

Soundness discipline: the analysis is three-valued (true / false /
unknown) and strictly conservative.  ``unknown`` never triggers a
finding, the structural summary over-approximates (see
:mod:`repro.xmlkit.summary`), and path emptiness ignores predicates —
ignoring a filter only *grows* the approximated result, so "empty even
without the filter" implies "empty with it".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.report import AnalysisReport
from repro.obs.metrics import REGISTRY
from repro.pattern.blossom import (MODE_MANDATORY, BlossomTree,
                                   BlossomVertex)
from repro.xmlkit.summary import DOC_LABEL, StructuralSummary
from repro.xpath.ast import (BooleanExpr, Comparison, Conditional, Expr,
                             FunctionCall, Literal, LocationPath, NameTest,
                             NotExpr, NumberLiteral, RootContext, RootDoc,
                             RootVariable)
from repro.xquery.ast import FLWOR

__all__ = ["PruneDecision", "QueryLintResult", "analyze_query"]

QUERYLINT_FINDINGS = REGISTRY.counter(
    "repro_querylint_findings_total",
    "Query-lint (QL) findings, labeled by rule ID")
QUERYLINT_REWRITES = REGISTRY.counter(
    "repro_querylint_rewrites_total",
    "Pruning rewrite decisions, labeled by kind (static-empty/prune)")

#: Label sentinel for variables bound inside a *foreign* pattern root —
#: one whose ``doc("uri")`` resolves to a document other than the one
#: the summary describes.  Paths rooted at such variables are never
#: judged (the summary has no authority over other documents).
_FOREIGN = "#foreign"


@dataclass(frozen=True)
class PruneDecision:
    """One rewrite the lint findings license.

    ``static-empty`` — no tuple of the FLWOR can exist; the plan may
    short-circuit to the empty sequence.  ``prune`` — the subtree
    rooted at ``vid`` (an optional branch) provably matches the empty
    sequence; the rewriter may cut whatever part of it is inert.
    """

    kind: str            # "static-empty" | "prune"
    rule_id: str
    location: str
    reason: str
    vid: int | None = None

    def describe(self) -> str:
        return f"{self.kind} [{self.location}]: {self.reason} ({self.rule_id})"


@dataclass
class QueryLintResult:
    """Findings plus the rewrites they license, for one compilation.

    Constructed once per (text, summary) and then memoized on the
    engine's hot compile path, so the summaries below (``static_empty``,
    ``rules``, the prune list) are precomputed — reading them must cost
    nothing per compile.
    """

    report: AnalysisReport
    decisions: list[PruneDecision]
    #: Fingerprint of the summary the analysis ran against — stamped
    #: into the plan-cache key so a summary rebuild keys stale pruned
    #: plans out.
    summary_fingerprint: str
    #: Whether any decision short-circuits the whole plan.
    static_empty: bool = field(init=False, default=False)
    #: Distinct rule IDs that fired, in firing order.
    rules: tuple[str, ...] = field(init=False, default=())

    def __post_init__(self) -> None:
        self.static_empty = any(d.kind == "static-empty"
                                for d in self.decisions)
        self.rules = tuple(self.report.rule_ids())
        self._prune_vids = [d.vid for d in self.decisions
                            if d.kind == "prune" and d.vid is not None]

    def static_empty_reason(self) -> str:
        for decision in self.decisions:
            if decision.kind == "static-empty":
                return f"{decision.reason} ({decision.rule_id})"
        return ""

    def prune_vids(self) -> list[int]:
        """Vertex ids of prunable optional branches (topmost first)."""
        return self._prune_vids

    def describe(self) -> list[str]:
        """Lint lines for ``explain`` output."""
        return [f"{finding.rule_id}: {finding.severity.value}: "
                f"[{finding.location}] {finding.message}"
                for finding in self.report.findings]


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------

def analyze_query(tree: BlossomTree, summary: StructuralSummary,
                  flwor: FLWOR | None = None,
                  source: str = "<query>",
                  foreign_uris: frozenset[str] = frozenset()
                  ) -> QueryLintResult:
    """Run the QL passes; returns findings + licensed rewrites.

    ``foreign_uris`` names documents *other than* the one ``summary``
    describes (``Engine.documents`` entries): pattern roots bound to
    them — and any path reaching into them — are exempt from every
    check, because the summary cannot speak for their shape.
    """
    report = AnalysisReport(source=source)
    report.passes_run.append("query")
    decisions: list[PruneDecision] = []
    foreign_vids = _foreign_vids(tree, foreign_uris)
    var_labels = _variable_labels(tree, foreign_vids)
    _vertex_pass(tree, summary, report, decisions, foreign_vids)
    if flwor is not None:
        _flwor_pass(flwor, summary, var_labels, foreign_uris, report,
                    decisions)
    for finding in report.findings:
        QUERYLINT_FINDINGS.inc(rule=finding.rule_id)
    for decision in decisions:
        QUERYLINT_REWRITES.inc(kind=decision.kind)
    return QueryLintResult(report, decisions, summary.fingerprint())


def _foreign_vids(tree: BlossomTree,
                  foreign_uris: frozenset[str]) -> frozenset[int]:
    """Vertex ids living under pattern roots of foreign documents."""
    if not foreign_uris:
        return frozenset()
    vids: set[int] = set()
    for root in tree.roots:
        if getattr(root, "doc_uri", "") in foreign_uris:
            vids.update(v.vid for v in tree.iter_subtree(root))
    return frozenset(vids)


def _variable_labels(tree: BlossomTree,
                     foreign_vids: frozenset[int] = frozenset()
                     ) -> dict[str, str | None]:
    """Variable name → element label of its vertex (None if wildcard,
    the :data:`_FOREIGN` sentinel for foreign-document bindings)."""
    labels: dict[str, str | None] = {}
    for name, vertex in tree.var_vertex.items():
        if vertex.vid in foreign_vids:
            labels[name] = _FOREIGN
        else:
            labels[name] = (vertex.name
                            if vertex.name not in ("#root", "*") else None)
    return labels


# ----------------------------------------------------------------------
# Vertex pass: structural satisfiability + predicate constraints.
# ----------------------------------------------------------------------

def _vertex_pass(tree: BlossomTree, summary: StructuralSummary,
                 report: AnalysisReport,
                 decisions: list[PruneDecision],
                 foreign_vids: frozenset[int] = frozenset()) -> None:
    handled: set[int] = set()
    for vertex in tree.vertices:
        if vertex.name == "#root" or vertex.vid in foreign_vids:
            continue
        unsat = _vertex_unsat(vertex, summary, report)
        if unsat is None:
            continue
        rule_id, reason = unsat
        _decide(tree, vertex, rule_id, reason, decisions, handled)


def _vertex_unsat(vertex: BlossomVertex, summary: StructuralSummary,
                  report: AnalysisReport) -> tuple[str, str] | None:
    """Report findings for one vertex; return (rule, reason) if unsat."""
    location = f"blossom:V{vertex.vid}"
    name = vertex.name
    if name != "*" and not summary.label_occurs(name):
        reason = f"label '{name}' never occurs in the document"
        report.add("QL001", location, reason)
        return "QL001", reason
    structural = _edge_unsat(vertex, summary)
    if structural is not None:
        report.add("QL002", location, structural)
        return "QL002", structural
    return _predicate_unsat(vertex, summary, report, location)


def _edge_unsat(vertex: BlossomVertex,
                summary: StructuralSummary) -> str | None:
    """Check the vertex against its parent edge's structural relation."""
    edge = vertex.parent_edge
    if edge is None or vertex.name == "*":
        return None
    name, parent = vertex.name, edge.parent
    if parent.name == "#root":
        if edge.axis == "child" and not summary.child_occurs(DOC_LABEL, name):
            return f"'{name}' is not a root element of the document"
        return None
    if parent.name == "*":
        return None
    if edge.axis == "child" and not summary.child_occurs(parent.name, name):
        return (f"'{name}' never occurs as a child of '{parent.name}'")
    if edge.axis in ("descendant", "descendant-or-self") \
            and name != parent.name \
            and not summary.occurs_under(name, parent.name):
        return (f"'{name}' never occurs under '{parent.name}'")
    if edge.axis == "self" and name != parent.name:
        return (f"self-axis test '{name}' can never match an element "
                f"labelled '{parent.name}'")
    return None


def _predicate_unsat(vertex: BlossomVertex, summary: StructuralSummary,
                     report: AnalysisReport,
                     location: str) -> tuple[str, str] | None:
    """Fold the vertex's value predicates; collect attr constraints."""
    if not vertex.value_predicates:
        return None
    constraints: dict[str, _AttrConstraints] = {}
    unsat: tuple[str, str] | None = None
    positional = [p for p in vertex.value_predicates
                  if not isinstance(p, NumberLiteral)]
    for predicate in positional:
        for conjunct in _conjuncts(predicate):
            _collect_attr_constraint(conjunct, constraints)
    for attr, constraint in sorted(constraints.items()):
        if not summary.attr_occurs(vertex.name, attr):
            reason = (f"attribute '@{attr}' never occurs on "
                      + (f"'{vertex.name}' elements"
                         if vertex.name != "*" else "any element"))
            report.add("QL006", location, reason)
            unsat = unsat or ("QL006", reason)
            continue
        contradiction = constraint.contradiction(attr)
        if contradiction is not None:
            report.add("QL003", location, contradiction)
            unsat = unsat or ("QL003", contradiction)
    if unsat is not None:
        return unsat
    for predicate in positional:
        folded = _fold(predicate, summary, {}, context_label=vertex.name)
        if folded is False:
            reason = "value predicate folds to constant false"
            report.add("QL003", location, reason)
            unsat = unsat or ("QL003", reason)
        elif folded is True:
            report.add("QL005", location,
                       "value predicate folds to constant true "
                       "(filters nothing)")
    return unsat


def _decide(tree: BlossomTree, vertex: BlossomVertex, rule_id: str,
            reason: str, decisions: list[PruneDecision],
            handled: set[int]) -> None:
    """Turn one unsatisfiable vertex into a rewrite decision.

    Unsatisfiability propagates up every *mandatory* edge (a match of
    the parent must have a matching child), so the decision anchors at
    the topmost vertex the propagation reaches: a pattern root means
    the whole plan is statically empty; otherwise the chain hangs off
    an optional edge and only that branch is prunable.
    """
    top = vertex
    while top.parent_edge is not None \
            and top.parent_edge.mode == MODE_MANDATORY:
        top = top.parent_edge.parent
    if top.parent_edge is None:
        decisions.append(PruneDecision(
            "static-empty", rule_id, f"blossom:V{vertex.vid}", reason))
        return
    if top.vid in handled:
        return
    handled.add(top.vid)
    decisions.append(PruneDecision(
        "prune", rule_id, f"blossom:V{vertex.vid}", reason, vid=top.vid))


# ----------------------------------------------------------------------
# Attribute-constraint accumulation (per vertex, conjunctive).
# ----------------------------------------------------------------------

class _AttrConstraints:
    """Conjunctive constraints on one attribute of one step."""

    def __init__(self) -> None:
        self.eq_numbers: list[float] = []
        self.eq_strings: list[str] = []
        self.lower: tuple[float, bool] | None = None   # (bound, inclusive)
        self.upper: tuple[float, bool] | None = None

    def add_eq(self, value: float | str) -> None:
        if isinstance(value, str):
            self.eq_strings.append(value)
        else:
            self.eq_numbers.append(value)

    def add_bound(self, op: str, value: float) -> None:
        if op in (">", ">="):
            candidate = (value, op == ">=")
            if self.lower is None or candidate[0] > self.lower[0] \
                    or (candidate[0] == self.lower[0] and not candidate[1]):
                self.lower = candidate
        elif op in ("<", "<="):
            candidate = (value, op == "<=")
            if self.upper is None or candidate[0] < self.upper[0] \
                    or (candidate[0] == self.upper[0] and not candidate[1]):
                self.upper = candidate

    def contradiction(self, attr: str) -> str | None:
        """A human-readable reason when the constraints cannot all hold."""
        numbers = set(self.eq_numbers)
        # A string equality forces the attribute value; a numeric
        # equality then constrains number(value).  Cross-checking types
        # is unsound without value data, so only same-type pairs count.
        if len(numbers) > 1:
            values = " and ".join(_fmt(v) for v in sorted(numbers))
            return f"@{attr} cannot equal {values} simultaneously"
        if len(set(self.eq_strings)) > 1:
            values = " and ".join(repr(v) for v in sorted(set(
                self.eq_strings)))
            return f"@{attr} cannot equal {values} simultaneously"
        lo, up = self.lower, self.upper
        for value in numbers:
            if lo is not None and (value < lo[0]
                                   or (value == lo[0] and not lo[1])):
                return (f"@{attr} = {_fmt(value)} contradicts "
                        f"@{attr} {'>=' if lo[1] else '>'} {_fmt(lo[0])}")
            if up is not None and (value > up[0]
                                   or (value == up[0] and not up[1])):
                return (f"@{attr} = {_fmt(value)} contradicts "
                        f"@{attr} {'<=' if up[1] else '<'} {_fmt(up[0])}")
        if lo is not None and up is not None:
            if lo[0] > up[0] or (lo[0] == up[0]
                                 and not (lo[1] and up[1])):
                return (f"@{attr} {'>=' if lo[1] else '>'} {_fmt(lo[0])} "
                        f"and @{attr} {'<=' if up[1] else '<'} "
                        f"{_fmt(up[0])} is an empty range")
        return None


def _fmt(value: float) -> str:
    return str(int(value)) if value == int(value) else str(value)


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BooleanExpr) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expr]


def _attr_name(expr: Expr) -> str | None:
    """``@name`` as a relative single-step path, else None."""
    if not isinstance(expr, LocationPath):
        return None
    if not isinstance(expr.root, RootContext) or expr.root.absolute:
        return None
    if len(expr.steps) != 1:
        return None
    step = expr.steps[0]
    if step.axis != "attribute" or step.predicates:
        return None
    if isinstance(step.test, NameTest) and step.test.name != "*":
        return step.test.name
    return None


def _collect_attr_constraint(conjunct: Expr,
                             constraints: dict[str, _AttrConstraints]
                             ) -> None:
    """Record what one positive conjunct requires of an attribute.

    Only *positive* occurrences count (``_conjuncts`` never descends
    into ``or`` / ``not``): in XPath 1.0 both a bare ``[@a]`` and any
    comparison over ``@a`` are existential, so each requires the
    attribute to be present.
    """
    attr = _attr_name(conjunct)
    if attr is not None:
        constraints.setdefault(attr, _AttrConstraints())
        return
    if not isinstance(conjunct, Comparison):
        return
    attr, literal, flipped = _attr_vs_literal(conjunct)
    if attr is None:
        return
    entry = constraints.setdefault(attr, _AttrConstraints())
    if literal is None:
        return
    op = conjunct.op
    if flipped:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if op == "=":
        entry.add_eq(literal)
    elif op in ("<", "<=", ">", ">="):
        number = _as_number(literal)
        if number is not None:
            entry.add_bound(op, number)


def _attr_vs_literal(cmp: Comparison
                     ) -> tuple[str | None, float | str | None, bool]:
    """Split ``@a op literal`` → (attr, literal value, literal-on-left)."""
    left_attr = _attr_name(cmp.left)
    right_attr = _attr_name(cmp.right)
    if left_attr is not None and isinstance(cmp.right,
                                            (Literal, NumberLiteral)):
        return left_attr, _literal_value(cmp.right), False
    if right_attr is not None and isinstance(cmp.left,
                                             (Literal, NumberLiteral)):
        return right_attr, _literal_value(cmp.left), True
    # A comparison over @a against a non-literal still requires @a.
    return (left_attr if left_attr is not None else right_attr), None, False


def _literal_value(expr: Expr) -> float | str | None:
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, Literal):
        return expr.value
    return None


def _as_number(value: float | str | None) -> float | None:
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            number = float(value)
        except ValueError:
            return None
        return number
    return None


# ----------------------------------------------------------------------
# FLWOR pass: where-clause and return-path folding.
# ----------------------------------------------------------------------

def _flwor_pass(flwor: FLWOR, summary: StructuralSummary,
                var_labels: dict[str, str | None],
                foreign_uris: frozenset[str],
                report: AnalysisReport,
                decisions: list[PruneDecision]) -> None:
    if flwor.where is not None:
        folded = _fold(flwor.where, summary, var_labels,
                       foreign_uris=foreign_uris)
        if folded is False:
            reason = "where clause folds to constant false"
            report.add("QL004", "where", reason)
            decisions.append(PruneDecision(
                "static-empty", "QL004", "where", reason))
        elif folded is True:
            report.add("QL005", "where",
                       "where clause folds to constant true "
                       "(filters nothing)")
    empty = (_path_provably_empty(flwor.return_expr, summary, var_labels,
                                  foreign_uris=foreign_uris)
             if isinstance(flwor.return_expr, LocationPath) else None)
    if empty is not None:
        rule_id, reason = empty
        reason = f"return path matches nothing: {reason}"
        report.add(rule_id, "return", reason)
        decisions.append(PruneDecision(
            "static-empty", rule_id, "return", reason))


# ----------------------------------------------------------------------
# Three-valued constant folding (True / False / None = unknown).
# ----------------------------------------------------------------------

def _fold(expr: Expr, summary: StructuralSummary,
          var_labels: dict[str, str | None],
          context_label: str | None = None,
          foreign_uris: frozenset[str] = frozenset()) -> bool | None:
    """Effective-boolean-value folding; None when not statically known."""
    if isinstance(expr, Literal):
        return bool(expr.value)
    if isinstance(expr, NumberLiteral):
        return expr.value != 0 and not math.isnan(expr.value)
    if isinstance(expr, FunctionCall):
        if expr.name == "true" and not expr.args:
            return True
        if expr.name == "false" and not expr.args:
            return False
        return None
    if isinstance(expr, LocationPath):
        if _path_provably_empty(expr, summary, var_labels, context_label,
                                foreign_uris) is not None:
            return False
        return None
    if isinstance(expr, NotExpr):
        inner = _fold(expr.operand, summary, var_labels, context_label,
                      foreign_uris)
        return None if inner is None else not inner
    if isinstance(expr, BooleanExpr):
        folded = [_fold(op, summary, var_labels, context_label,
                        foreign_uris)
                  for op in expr.operands]
        if expr.op == "and":
            if any(value is False for value in folded):
                return False
            if all(value is True for value in folded):
                return True
            return None
        if any(value is True for value in folded):
            return True
        if all(value is False for value in folded):
            return False
        return None
    if isinstance(expr, Conditional):
        condition = _fold(expr.condition, summary, var_labels,
                          context_label, foreign_uris)
        if condition is None:
            return None
        branch = expr.then_branch if condition else expr.else_branch
        return _fold(branch, summary, var_labels, context_label,
                     foreign_uris)
    if isinstance(expr, Comparison):
        return _fold_comparison(expr, summary, var_labels, context_label,
                                foreign_uris)
    return None


def _fold_comparison(cmp: Comparison, summary: StructuralSummary,
                     var_labels: dict[str, str | None],
                     context_label: str | None,
                     foreign_uris: frozenset[str] = frozenset()
                     ) -> bool | None:
    # Existential semantics: any comparison over an empty sequence is
    # false, whatever the operator.
    for side in (cmp.left, cmp.right):
        if isinstance(side, LocationPath) and _path_provably_empty(
                side, summary, var_labels, context_label,
                foreign_uris) is not None:
            return False
    left = _literal_value(cmp.left)
    right = _literal_value(cmp.right)
    if left is None or right is None:
        return None
    if cmp.op in ("=", "!="):
        if isinstance(left, str) and isinstance(right, str):
            equal = left == right
        else:
            lnum, rnum = _as_number(left), _as_number(right)
            if lnum is None or rnum is None:
                equal = False             # number(non-numeric) is NaN
            else:
                equal = lnum == rnum
        return equal if cmp.op == "=" else not equal
    lnum, rnum = _as_number(left), _as_number(right)
    if lnum is None or rnum is None:
        return False                      # NaN comparisons are false
    if cmp.op == "<":
        return lnum < rnum
    if cmp.op == "<=":
        return lnum <= rnum
    if cmp.op == ">":
        return lnum > rnum
    if cmp.op == ">=":
        return lnum >= rnum
    return None


def _path_provably_empty(path: LocationPath, summary: StructuralSummary,
                         var_labels: dict[str, str | None],
                         context_label: str | None = None,
                         foreign_uris: frozenset[str] = frozenset()
                         ) -> tuple[str, str] | None:
    """(rule, reason) when the summary proves the path empty, else None.

    Step predicates are ignored: they only shrink the result, so a
    path that is empty without them is empty with them.  The context
    label is tracked through child/descendant/self steps and reset to
    unknown on anything else — unknown contexts fall back to
    document-global checks.  Paths reaching into a *foreign* document
    (a ``doc()`` uri in ``foreign_uris``, or a variable bound there)
    are never judged: the summary has no authority over them.
    """
    label: str | None
    at_document = False
    if isinstance(path.root, RootVariable):
        if path.root.name not in var_labels:
            return None
        label = var_labels.get(path.root.name)
        if label == _FOREIGN:
            return None
    elif isinstance(path.root, RootDoc) and path.root.uri in foreign_uris:
        return None
    elif isinstance(path.root, RootContext) and not path.root.absolute:
        label = (context_label
                 if context_label not in ("#root", "*") else None)
    else:                                 # absolute (RootDoc/RootContext)
        label = None
        at_document = True
    for step in path.steps:
        test = step.test
        if not isinstance(test, NameTest) or test.name == "*":
            label, at_document = None, False
            continue
        name = step_label = test.name
        if step.axis == "attribute":
            if label is not None:
                if not summary.attr_occurs(label, name):
                    return ("QL006", f"'{label}' elements never carry "
                                     f"attribute '@{name}'")
            elif not summary.attr_occurs_anywhere(name):
                return ("QL006",
                        f"attribute '@{name}' never occurs")
            label, at_document = None, False
            continue
        if not summary.label_occurs(name):
            return ("QL001", f"label '{name}' never occurs in the "
                             "document")
        if step.axis == "child":
            if at_document and not summary.child_occurs(DOC_LABEL, name):
                return ("QL002",
                        f"'{name}' is not a root element of the document")
            if label is not None and not summary.child_occurs(label, name):
                return ("QL002",
                        f"'{name}' never occurs as a child of '{label}'")
        elif step.axis in ("descendant", "descendant-or-self"):
            if label is not None and name != label \
                    and not summary.occurs_under(name, label):
                return ("QL002",
                        f"'{name}' never occurs under '{label}'")
        elif step.axis == "self":
            if label is not None and name != label:
                return ("QL002",
                        f"self-axis test '{name}' can never match an "
                        f"element labelled '{label}'")
        else:
            step_label = ""               # unknown relationship
        label = step_label or None
        at_document = False
    return None
