"""The examples corpus: named queries the analyzer must pass clean.

One entry per representative query shape the examples and the paper
exercise — bare paths with predicates, multi-variable FLWORs with
crossing edges, let-bound sequences, external ``$parameters``.  The CLI
(``python -m repro.analysis --examples``), the ``analyze`` CI job and
the corpus-clean test all iterate this table, so a regression in the
builder/decomposer/Dewey assigner that produces a malformed artifact
for any of these shapes fails loudly with a rule ID.
"""

from __future__ import annotations

__all__ = ["EXAMPLE_QUERIES"]

#: name -> query text.  Every query compiles to a BlossomTree (no
#: navigational-fallback entries: those produce no artifacts to verify).
EXAMPLE_QUERIES: dict[str, str] = {
    "path-simple": "//book/title",
    "path-existential": "//book[author]/title",
    "path-value": '//book[price > 30]/title',
    "path-nested-value": '//book[author/last = "Buneman"]/title',
    "path-double-descendant": "//book[author]//last",
    "path-branching": "//item[//subtitle]//isbn",
    "path-sibling": "//book/title/following-sibling::author",
    "path-attribute": '//book[@year = "2000"]/title',
    "flwor-single": """
        for $b in //book
        where $b/price > 30
        return $b/title
    """,
    "flwor-let": """
        for $b in //book
        let $a := $b/author
        return $a/last
    """,
    "flwor-order": """
        for $b in //book
        order by $b/title
        return $b/title
    """,
    "flwor-join": """
        for $b1 in //book, $b2 in //book
        where $b1 << $b2 and $b1/author/last = $b2/author/last
        return $b1/title
    """,
    "flwor-deep-equal": """
        for $b1 in doc("bib.xml")//book, $b2 in doc("bib.xml")//book
        let $a1 := $b1/author
        let $a2 := $b2/author
        where $b1 << $b2 and deep-equal($a1, $a2)
        return $b1/title
    """,
    "flwor-constructor": """
        <pairs>{
        for $b1 in doc("bib.xml")//book, $b2 in doc("bib.xml")//book
        where $b1 << $b2 and not($b1/title = $b2/title)
        return <pair>{ $b1/title }{ $b2/title }</pair>
        }</pairs>
    """,
    "flwor-external-parameter": """
        for $b in //book
        where $b/author/last = $who
        return $b/title
    """,
    "flwor-dereference": """
        for $b in //book
        for $l in $b/author/last
        return $l
    """,
}
