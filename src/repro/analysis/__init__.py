"""Plan invariant analysis: a static verifier for compiled query artifacts.

The engine compiles once and replays cached plans many times, so a
single malformed BlossomTree, NoK decomposition or Dewey assignment
would corrupt every subsequent execution.  This package walks each
stage of a compiled query against a catalogue of declared invariants
(stable rule IDs ``AST*``/``BT*``/``NK*``/``DW*``/``PL*``/``SV*`` — see
:mod:`repro.analysis.rules`) and reports findings with severity,
location and a remediation hint.  The ``QL*`` family
(:mod:`repro.analysis.query`) is different in kind: it checks the
query against the *document's* structural summary, and its findings
license rewrites (static-empty plans, pruned branches) rather than
refusals.

Three consumers:

* the engine verifies every freshly built plan before it enters the
  plan cache (``repro_plan_verify_*`` counters, ``verify-plan`` span);
* ``python -m repro.analysis`` lints query files, the examples corpus
  and the benchmark workloads, exiting non-zero on errors;
* the test suite's autouse fixture verifies every plan the tier-1
  tests compile, turning the whole corpus into analyzer coverage.
"""

from repro.analysis.analyzer import (
    analyze_artifacts,
    analyze_plan,
    analyze_snapshot,
    analyze_tree,
    verify_artifacts,
    verify_plan,
    verify_snapshot,
    verify_tree,
)
from repro.analysis.query import PruneDecision, QueryLintResult, analyze_query
from repro.analysis.report import AnalysisReport, Finding
from repro.analysis.rules import RULES, Rule, Severity, rule_table

__all__ = [
    "AnalysisReport",
    "Finding",
    "PruneDecision",
    "QueryLintResult",
    "RULES",
    "Rule",
    "Severity",
    "analyze_artifacts",
    "analyze_plan",
    "analyze_query",
    "analyze_snapshot",
    "analyze_tree",
    "rule_table",
    "verify_artifacts",
    "verify_plan",
    "verify_snapshot",
    "verify_tree",
]
