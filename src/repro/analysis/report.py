"""Findings and reports produced by the plan invariant analyzer.

A :class:`Finding` is one violated (or suspicious) invariant: the rule
that fired, its severity, where in the compiled plan it anchors, a
human-readable message and a remediation hint inherited from the rule
catalogue.  An :class:`AnalysisReport` collects the findings of one
analyzer run over one query's compiled artifacts and renders them in
lint style (``source:RULE: severity: message``) or as JSON for CI
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.rules import RULES, Rule, Severity

__all__ = ["Finding", "AnalysisReport"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation discovered by an analyzer pass."""

    rule_id: str
    severity: Severity
    location: str        # plan anchor, e.g. "blossom:V3", "nok:2", "plan"
    message: str
    hint: str = ""

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    def format(self, source: str = "<query>") -> str:
        """Render lint style: ``source:RULE: severity: message``."""
        text = (f"{source}:{self.rule_id}: {self.severity.value}: "
                f"[{self.location}] {self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """All findings of one analyzer run, plus which passes executed."""

    source: str = "<query>"
    findings: list[Finding] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)

    def add(self, rule_id: str, location: str, message: str) -> None:
        """Record one finding; severity and hint come from the catalogue."""
        rule = RULES[rule_id]
        self.findings.append(Finding(rule_id, rule.severity, location,
                                     message, rule.remediation))

    def extend(self, other: AnalysisReport) -> None:
        self.findings.extend(other.findings)
        self.passes_run.extend(p for p in other.passes_run
                               if p not in self.passes_run)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding fired (warnings pass)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing fired at all."""
        return not self.findings

    def rule_ids(self) -> list[str]:
        """Distinct rule IDs that fired, in firing order."""
        seen: list[str] = []
        for finding in self.findings:
            if finding.rule_id not in seen:
                seen.append(finding.rule_id)
        return seen

    def format(self) -> str:
        """Multi-line lint-style rendering with a summary tail line."""
        lines = [finding.format(self.source) for finding in self.findings]
        lines.append(
            f"{self.source}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) "
            f"[{len(self.passes_run)} pass(es): {', '.join(self.passes_run)}]")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "ok": self.ok,
            "passes": list(self.passes_run),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
