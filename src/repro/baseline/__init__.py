"""Baselines: the naive FLWOR interpreter (oracle) and the simulated
commercial navigational engine (X-Hive stand-in)."""

from repro.baseline.naive_flwor import NaiveInterpreter

__all__ = ["NaiveInterpreter", "XHiveSimulator"]


def __getattr__(name):
    if name == "XHiveSimulator":
        from repro.baseline.xhive import XHiveSimulator
        return XHiveSimulator
    raise AttributeError(f"module 'repro.baseline' has no attribute {name!r}")
