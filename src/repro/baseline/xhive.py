"""Simulated commercial navigational XML engine (the paper's "XH" column).

The paper benchmarks against X-Hive/DB 6.0, a closed-source native XML
database whose query processor is navigational: each location step
materializes an intermediate node set, deduplicates and sorts it, and
each predicate re-traverses the tree from its candidate node.  This
module reproduces that *architecture* (see DESIGN.md's substitution
table): the asymptotics — per-step node-set materialization, no
structural-join or holistic optimizations, no pipelining between steps
— are what drive X-Hive's relative performance in Table 3, so the
win/loss shape against PL/TS/NL is preserved even though absolute
times differ from the original product.

Work accounting: every candidate node the navigator examines counts as
a scanned node, and the work budget applies, so XH runs can DNF the
same way the other systems' runs do.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import DNFError
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.ast import QueryExpr
from repro.xquery.parser import parse_query
from repro.engine.construct import DirectEvaluator
from repro.engine.result import QueryResult

__all__ = ["XHiveSimulator"]


class XHiveSimulator:
    """Navigational engine stand-in.

    Parameters
    ----------
    doc:
        Primary document.
    resolve_doc:
        Optional URI resolver (defaults to the primary document).
    counters:
        Work counters; candidate-node examinations charge
        ``nodes_scanned`` and the budget is enforced.
    """

    def __init__(self, doc: Document,
                 resolve_doc: Callable[[str], Document] | None = None,
                 counters: ScanCounters | None = None) -> None:
        self.doc = doc
        self.resolve_doc = resolve_doc if resolve_doc is not None else (lambda uri: doc)
        self.counters = counters if counters is not None else ScanCounters()

    def run(self, query: str | QueryExpr,
            bindings: dict | None = None) -> QueryResult:
        """Evaluate a query navigationally (paths and FLWOR alike).

        ``bindings`` supplies values for external ``$parameters``.
        """
        expr = parse_query(query) if isinstance(query, str) else query
        evaluator = DirectEvaluator(self.doc, self.resolve_doc)
        # Swap in a counting XPath evaluator: every candidate node a
        # step examines is charged, which models the materialize-and-
        # filter execution of a navigational engine.
        evaluator.xpath = XPathEvaluator(count_work=self._charge)
        return QueryResult(evaluator.eval_query_expr(expr, dict(bindings or {})))

    def _charge(self, candidates: int) -> None:
        counters = self.counters
        counters.nodes_scanned += candidates
        if counters.budget is not None and counters.nodes_scanned > counters.budget:
            raise DNFError("navigational evaluation exceeded the work budget",
                           budget=counters.budget)
