"""The straightforward FLWOR interpreter — the paper's strawman and our oracle.

Section 1 of the paper describes the naive strategy: "follow the
semantics of FLWOR expression and evaluate the path expressions for
each iteration in the for-loop".  :class:`NaiveInterpreter` does
exactly that — nested loops that re-evaluate every clause path per
iteration of the enclosing loops, a where check per tuple, order-by
over the surviving tuples, and return-clause construction per tuple.

This is deliberately redundant — that redundancy is what BlossomTree
evaluation removes — but it is *obviously correct*, which makes it the
differential-testing oracle for the whole engine and the performance
strawman the Section 1 motivation refers to.

All of the actual evaluation machinery lives in
:mod:`repro.engine.construct`; the BlossomTree executor shares it, so
the two engines can only disagree about tuple enumeration, never about
construction or comparison semantics.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.xmlkit.tree import Document
from repro.xquery.ast import QueryExpr
from repro.xquery.parser import parse_query
from repro.engine.construct import DirectEvaluator
from repro.engine.result import QueryResult

__all__ = ["NaiveInterpreter"]


class NaiveInterpreter:
    """Direct-semantics evaluator for the restricted XQuery subset.

    Parameters
    ----------
    doc:
        The default document; ``doc("uri")`` calls resolve to it unless
        ``resolve_doc`` is supplied.
    resolve_doc:
        Optional URI-to-document mapping for multi-document queries.
    work_budget:
        Optional cap on examined for-loop tuples; exceeding it raises
        :class:`~repro.errors.DNFError`, which the benchmark harness
        reports as a ``DNF`` entry (the paper's 15-minute timeouts).
    """

    def __init__(self, doc: Document,
                 resolve_doc: Callable[[str], Document] | None = None,
                 work_budget: int | None = None) -> None:
        self.doc = doc
        self.resolve_doc = resolve_doc
        self.work_budget = work_budget

    def run(self, query: str | QueryExpr) -> QueryResult:
        """Evaluate a query string or parsed query to a result sequence."""
        expr = parse_query(query) if isinstance(query, str) else query
        evaluator = DirectEvaluator(self.doc, self.resolve_doc, self.work_budget)
        return QueryResult(evaluator.eval_query_expr(expr, {}))
