"""XPath subset: lexer, parser, AST and the reference navigational evaluator."""

from repro.xpath.ast import (
    AXIS_NAMES,
    GLOBAL_AXES,
    LOCAL_AXES,
    LocationPath,
    Step,
)
from repro.xpath.evaluator import XPathEvaluator, evaluate_xpath
from repro.xpath.parser import parse_expr, parse_xpath

__all__ = [
    "AXIS_NAMES",
    "GLOBAL_AXES",
    "LOCAL_AXES",
    "LocationPath",
    "Step",
    "XPathEvaluator",
    "evaluate_xpath",
    "parse_expr",
    "parse_xpath",
]
