"""Abstract syntax for the XPath subset.

The grammar covers what the paper's queries and FLWOR subset need:

* the axes ``child`` (``/``), ``descendant`` (``//``), ``self`` (``.``),
  ``parent`` (``..``), ``attribute`` (``@``), ``following-sibling``,
  ``ancestor``, ``preceding`` and ``following``;
* name tests (including ``*``), ``text()`` and ``node()`` kind tests;
* predicates with boolean connectives, value comparisons, positional
  predicates, and a small function library (``position``, ``last``,
  ``count``, ``contains``, ``not``, ``deep-equal``, ``empty``,
  ``exists``, ``string``, ``number``);
* path roots: absolute (``/...``, ``//...``), ``doc("uri")``, and
  variable references (``$x/...``) for paths embedded in FLWOR clauses.

One deliberate deviation from W3C XPath, matching the paper's usage in
Appendix A: a path *inside a predicate* is evaluated relative to the
context node, so ``//address[//zip]`` selects addresses with a ``zip``
descendant (W3C would restart at the document root).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AXIS_NAMES",
    "LOCAL_AXES",
    "GLOBAL_AXES",
    "NameTest",
    "TextTest",
    "NodeTest",
    "AnyKindTest",
    "Step",
    "LocationPath",
    "RootDoc",
    "RootContext",
    "RootVariable",
    "Literal",
    "NumberLiteral",
    "FunctionCall",
    "Comparison",
    "BooleanExpr",
    "NotExpr",
    "Arithmetic",
    "Quantified",
    "Conditional",
    "Expr",
]

#: All axes the parser accepts.
AXIS_NAMES = frozenset({
    "child", "descendant", "descendant-or-self", "self", "parent",
    "attribute", "following-sibling", "ancestor", "preceding", "following",
})

#: Axes a NoK pattern tree may contain (Section 2.1: only ``/`` and
#: ``following-sibling`` are "local"; ``self`` is trivially local too).
LOCAL_AXES = frozenset({"child", "self", "following-sibling", "attribute"})

#: Axes that force an edge cut during BlossomTree decomposition.
GLOBAL_AXES = frozenset(AXIS_NAMES) - LOCAL_AXES


@dataclass(frozen=True)
class NameTest:
    """Match elements (or attributes) by name; ``*`` matches any name."""

    name: str

    def matches_tag(self, tag: str | None) -> bool:
        return tag is not None and (self.name == "*" or self.name == tag)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TextTest:
    """``text()`` kind test."""

    def __str__(self) -> str:
        return "text()"


@dataclass(frozen=True)
class AnyKindTest:
    """``node()`` kind test."""

    def __str__(self) -> str:
        return "node()"


NodeTest = NameTest | TextTest | AnyKindTest


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::test[pred1][pred2]...``."""

    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        if self.axis == "child":
            return f"{self.test}{preds}"
        if self.axis == "attribute":
            return f"@{self.test}{preds}"
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class RootDoc:
    """Path root ``doc("uri")`` — the named document's root."""

    uri: str

    def __str__(self) -> str:
        return f'doc("{self.uri}")'


@dataclass(frozen=True)
class RootContext:
    """Path root for absolute paths (``/`` or ``//``): the document node.

    For *relative* paths the root is also ``RootContext`` but with
    ``absolute=False``, meaning "start at the context node".
    """

    absolute: bool = True

    def __str__(self) -> str:
        return "" if self.absolute else "."


@dataclass(frozen=True)
class RootVariable:
    """Path root ``$name`` — a FLWOR variable binding."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


PathRoot = RootDoc | RootContext | RootVariable


@dataclass(frozen=True)
class LocationPath:
    """A rooted sequence of steps."""

    root: PathRoot
    steps: tuple[Step, ...] = ()

    def is_absolute(self) -> bool:
        return isinstance(self.root, RootContext) and self.root.absolute

    def __str__(self) -> str:
        parts: list[str] = []
        head = str(self.root)
        if head == "." and self.steps:
            head = ""  # leading "." before steps would not re-parse stably
        if head:
            parts.append(head)
        for step in self.steps:
            sep = "//" if step.axis in ("descendant", "descendant-or-self") else "/"
            # Axes written explicitly keep the single-slash separator.
            if step.axis not in ("child", "descendant", "attribute"):
                sep = "/"
            parts.append(f"{sep}{_strip_axis_for_display(step)}")
        text = "".join(parts)
        return text or "."


def _strip_axis_for_display(step: Step) -> str:
    preds = "".join(f"[{p}]" for p in step.predicates)
    if step.axis in ("child", "descendant"):
        return f"{step.test}{preds}"
    if step.axis == "attribute":
        return f"@{step.test}{preds}"
    return f"{step.axis}::{step.test}{preds}"


@dataclass(frozen=True)
class Literal:
    """A quoted string literal."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class NumberLiteral:
    """A numeric literal.  In predicate position an integer means
    ``position() = n``."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class FunctionCall:
    """A call to one of the supported functions."""

    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Comparison:
    """Binary comparison: value ops ``= != < <= > >=`` or node-order ops
    ``<<``, ``>>``, ``is``, ``isnot``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BooleanExpr:
    """N-ary ``and`` / ``or``."""

    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        return f" {self.op} ".join(
            f"({o})" if isinstance(o, BooleanExpr) else str(o) for o in self.operands)


@dataclass(frozen=True)
class NotExpr:
    """``not(expr)`` — kept distinct from FunctionCall because the
    BlossomTree builder treats negated comparisons specially."""

    operand: Expr

    def __str__(self) -> str:
        return f"not({self.operand})"


@dataclass(frozen=True)
class Arithmetic:
    """Binary arithmetic: ``+ - * div mod`` (numeric, XPath 1.0 style)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Quantified:
    """``some $v in path satisfies expr`` / ``every $v in path satisfies expr``.

    Part of the XQuery surface beyond the paper's core grammar (its
    Section-6 future work); usable anywhere an expression is (where
    clauses, predicates).  The engine treats quantifiers as residual
    conditions, re-verified per tuple.
    """

    kind: str  # "some" | "every"
    var: str
    source: Expr
    satisfies: Expr

    def __str__(self) -> str:
        return f"{self.kind} ${self.var} in {self.source} satisfies {self.satisfies}"


@dataclass(frozen=True)
class Conditional:
    """``if (cond) then expr else expr``."""

    condition: Expr
    then_branch: Expr
    else_branch: Expr

    def __str__(self) -> str:
        return (f"if ({self.condition}) then {self.then_branch} "
                f"else {self.else_branch}")


Expr = (LocationPath | Literal | NumberLiteral | FunctionCall | Comparison
        | BooleanExpr | NotExpr | Arithmetic | Quantified | Conditional)
