"""Navigational XPath evaluator — the reference semantics.

This evaluator defines what every other operator in the repository must
agree with: the differential tests run the BlossomTree engine, the
TwigStack pipeline and the pipelined joins against it.  It is also the
core of the simulated commercial navigational engine
(:mod:`repro.baseline.xhive`), which deliberately evaluates step by
step with materialized, deduplicated intermediate node sets — the
architecture the paper compares against.

Value model
-----------
An expression evaluates to one of: a node list (document order, no
duplicates), ``str``, ``float`` or ``bool``.  Comparisons over node
lists are existential (any pair may satisfy the operator), following
XPath 1.0.  Effective boolean value: non-empty list / non-empty string /
non-zero number / the bool itself.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.errors import ExecutionError
from repro.xpath.ast import (
    BooleanExpr,
    Arithmetic,
    Comparison,
    Conditional,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NotExpr,
    NumberLiteral,
    RootContext,
    RootDoc,
    Quantified,
    RootVariable,
    Step,
    TextTest,
)
from repro.xmlkit.tree import ELEMENT, TEXT, Document, Node, deep_equal_sequences

__all__ = ["AttrNode", "EvalContext", "XPathEvaluator", "evaluate_xpath", "boolean_value"]

Value = list | str | float | bool


class AttrNode:
    """A lightweight stand-in node for attribute-axis results.

    Carries enough of the :class:`~repro.xmlkit.tree.Node` protocol for
    value comparison and output; attributes have no children and are not
    part of the document-order node arena.
    """

    __slots__ = ("owner", "name", "value")

    def __init__(self, owner: Node, name: str, value: str) -> None:
        self.owner = owner
        self.name = name
        self.value = value

    @property
    def nid(self) -> int:
        # Attributes sort with their owner element for document order.
        return self.owner.nid

    def string_value(self) -> str:
        return self.value

    def typed_value(self) -> object:
        try:
            return float(self.value)
        except ValueError:
            return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AttrNode {self.name}={self.value!r} of {self.owner.tag}>"


AnyNode = Node | AttrNode


@dataclass
class EvalContext:
    """Dynamic context for one expression evaluation."""

    item: AnyNode
    position: int = 1
    size: int = 1
    variables: dict[str, Value] = field(default_factory=dict)
    resolve_doc: Callable[[str], Document] | None = None

    def with_item(self, item: AnyNode, position: int, size: int) -> EvalContext:
        return EvalContext(item, position, size, self.variables, self.resolve_doc)


class XPathEvaluator:
    """Evaluates the XPath-subset AST over the tree model.

    Instances are stateless apart from optional work counters, so a
    single evaluator can be shared across queries.

    Parameters
    ----------
    count_work:
        Optional callable invoked with the number of candidate nodes
        examined at each step; the X-Hive simulation uses this to report
        navigation effort.
    """

    def __init__(self, count_work: Callable[[int], None] | None = None) -> None:
        self._count_work = count_work
        self._examined = 0

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------

    def evaluate_path(self, path: LocationPath, context: EvalContext) -> list[AnyNode]:
        """Evaluate a location path to a document-ordered node list."""
        current = self._root_items(path, context)
        for step in path.steps:
            current = self._apply_step(step, current, context)
        return current

    def evaluate(self, expr: Expr, context: EvalContext) -> Value:
        """Evaluate any expression to its value."""
        if isinstance(expr, LocationPath):
            # A bare ``$v`` bound to an atomic (string/number/boolean —
            # e.g. an external query parameter) is the atomic itself;
            # only step application requires a node sequence.
            if not expr.steps and isinstance(expr.root, RootVariable):
                value = context.variables.get(expr.root.name)
                if value is not None and not isinstance(value, list):
                    return value
            return self.evaluate_path(expr, context)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, NotExpr):
            return not boolean_value(self.evaluate(expr.operand, context))
        if isinstance(expr, BooleanExpr):
            if expr.op == "and":
                return all(boolean_value(self.evaluate(o, context)) for o in expr.operands)
            return any(boolean_value(self.evaluate(o, context)) for o in expr.operands)
        if isinstance(expr, Comparison):
            return self._compare(expr, context)
        if isinstance(expr, FunctionCall):
            return self._call(expr, context)
        if isinstance(expr, Arithmetic):
            left = _to_number(self.evaluate(expr.left, context))
            right = _to_number(self.evaluate(expr.right, context))
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "div":
                if right == 0:
                    return float("inf") if left > 0 else (
                        float("-inf") if left < 0 else float("nan"))
                return left / right
            assert expr.op == "mod"
            if right == 0:
                return float("nan")
            return math.fmod(left, right)
        if isinstance(expr, Quantified):
            return self._quantified(expr, context)
        if isinstance(expr, Conditional):
            branch = (expr.then_branch
                      if boolean_value(self.evaluate(expr.condition, context))
                      else expr.else_branch)
            return self.evaluate(branch, context)
        raise ExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")

    def _quantified(self, expr: Quantified, context: EvalContext) -> bool:
        source = self.evaluate(expr.source, context)
        if not isinstance(source, list):
            raise ExecutionError("quantifier source must be a node sequence")
        for item in source:
            inner = EvalContext(context.item, context.position, context.size,
                                dict(context.variables), context.resolve_doc)
            inner.variables[expr.var] = [item]
            holds = boolean_value(self.evaluate(expr.satisfies, inner))
            if expr.kind == "some" and holds:
                return True
            if expr.kind == "every" and not holds:
                return False
        return expr.kind == "every"

    # ------------------------------------------------------------------
    # Path machinery.
    # ------------------------------------------------------------------

    def _root_items(self, path: LocationPath, context: EvalContext) -> list[AnyNode]:
        root = path.root
        if isinstance(root, RootDoc):
            if context.resolve_doc is None:
                raise ExecutionError(f'no document resolver for doc("{root.uri}")')
            return [context.resolve_doc(root.uri).document_node]
        if isinstance(root, RootVariable):
            value = context.variables.get(root.name)
            if value is None:
                raise ExecutionError(f"unbound variable ${root.name}")
            if isinstance(value, list):
                return list(value)
            raise ExecutionError(
                f"variable ${root.name} is not a node sequence and cannot root a path")
        assert isinstance(root, RootContext)
        if root.absolute:
            item = context.item
            doc = item.doc if isinstance(item, Node) else item.owner.doc
            return [doc.document_node]
        return [context.item]

    def _apply_step(self, step: Step, items: list[AnyNode],
                    context: EvalContext) -> list[AnyNode]:
        results: list[AnyNode] = []
        seen: set[int] = set()
        for item in items:
            if isinstance(item, AttrNode):
                continue  # no axes out of attributes in this subset
            candidates = self._axis_candidates(step, item)
            if self._count_work is not None:
                # Charge the nodes *examined* along the axis, not just
                # the survivors of the name test — this is the unit of
                # navigation work a step performs.
                self._count_work(self._examined)
            selected = candidates
            for predicate in step.predicates:
                selected = self._filter_predicate(predicate, selected, context)
            for node in selected:
                key = id(node) if isinstance(node, AttrNode) else node.nid
                if key not in seen:
                    seen.add(key)
                    results.append(node)
        results.sort(key=_document_order_key)
        return results

    def _axis_candidates(self, step: Step, item: Node) -> list[AnyNode]:
        axis = step.axis
        test = step.test
        if axis == "attribute":
            assert isinstance(test, NameTest)
            if test.name == "*":
                return [AttrNode(item, k, v) for k, v in item.attrs.items()]
            if test.name in item.attrs:
                return [AttrNode(item, test.name, item.attrs[test.name])]
            return []

        if axis == "child":
            pool: Iterable[Node] = item.children
        elif axis == "descendant":
            pool = item.descendants()
        elif axis == "descendant-or-self":
            pool = item.subtree()
        elif axis == "self":
            pool = [item]
        elif axis == "parent":
            pool = [item.parent] if item.parent is not None else []
        elif axis == "ancestor":
            pool = item.ancestors()
        elif axis == "following-sibling":
            pool = _following_siblings(item)
        elif axis == "preceding":
            pool = (n for n in item.doc.nodes[:item.nid] if n.end < item.start)
        elif axis == "following":
            pool = (n for n in item.doc.nodes[item.nid + 1:] if n.start > item.end)
        else:
            raise ExecutionError(f"unsupported axis {axis!r}")

        examined = 0
        selected: list[Node] = []
        for node in pool:
            examined += 1
            if _test_matches(test, node):
                selected.append(node)
        self._examined = examined
        return selected

    def _filter_predicate(self, predicate: Expr, candidates: list[AnyNode],
                          context: EvalContext) -> list[AnyNode]:
        size = len(candidates)
        kept: list[AnyNode] = []
        for position, node in enumerate(candidates, start=1):
            local = context.with_item(node, position, size)
            value = self.evaluate(predicate, local)
            if isinstance(value, float):
                # Numeric predicate means position() = value.
                if value == position:
                    kept.append(node)
            elif boolean_value(value):
                kept.append(node)
        return kept

    # ------------------------------------------------------------------
    # Comparisons and functions.
    # ------------------------------------------------------------------

    def _compare(self, expr: Comparison, context: EvalContext) -> bool:
        op = expr.op
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)

        if op in ("<<", ">>", "is", "isnot"):
            lnode = _single_node(left, op)
            rnode = _single_node(right, op)
            if lnode is None or rnode is None:
                return False
            if op == "<<":
                return lnode.nid < rnode.nid
            if op == ">>":
                return lnode.nid > rnode.nid
            if op == "is":
                return lnode is rnode
            return lnode is not rnode

        left_atoms = _atomize(left)
        right_atoms = _atomize(right)
        return any(_compare_atoms(op, a, b) for a in left_atoms for b in right_atoms)

    def _call(self, expr: FunctionCall, context: EvalContext) -> Value:
        name = expr.name
        args = expr.args

        if name == "position":
            return float(context.position)
        if name == "last":
            return float(context.size)
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "count":
            value = self.evaluate(args[0], context)
            _require_nodes(value, "count")
            return float(len(value))
        if name in ("empty", "exists"):
            value = self.evaluate(args[0], context)
            _require_nodes(value, name)
            return (len(value) == 0) if name == "empty" else (len(value) > 0)
        if name == "contains":
            haystack = string_value(self.evaluate(args[0], context))
            needle = string_value(self.evaluate(args[1], context))
            return needle in haystack
        if name == "starts-with":
            haystack = string_value(self.evaluate(args[0], context))
            needle = string_value(self.evaluate(args[1], context))
            return haystack.startswith(needle)
        if name == "string-length":
            return float(len(string_value(self.evaluate(args[0], context))))
        if name == "normalize-space":
            target = (self.evaluate(args[0], context) if args
                      else context.item)
            return " ".join(string_value(target).split())
        if name == "concat":
            return "".join(string_value(self.evaluate(a, context)) for a in args)
        if name == "string":
            return string_value(self.evaluate(args[0], context) if args else [context.item])
        if name == "number":
            raw = string_value(self.evaluate(args[0], context) if args else [context.item])
            try:
                return float(raw.strip())
            except ValueError:
                return float("nan")
        if name == "name" or name == "local-name":
            value = self.evaluate(args[0], context) if args else [context.item]
            _require_nodes(value, name)
            if not value:
                return ""
            head = value[0]
            if isinstance(head, AttrNode):
                return head.name
            return head.tag or ""
        if name == "deep-equal":
            left = self.evaluate(args[0], context)
            right = self.evaluate(args[1], context)
            _require_nodes(left, "deep-equal")
            _require_nodes(right, "deep-equal")
            return deep_equal_sequences(left, right)
        if name == "not":
            return not boolean_value(self.evaluate(args[0], context))
        if name in ("sum", "avg", "min", "max"):
            return self._aggregate(name, args, context)
        if name in ("floor", "ceiling", "round", "abs"):
            value = _to_number(self.evaluate(args[0], context))
            if value != value:  # NaN propagates
                return value
            if name == "floor":
                return float(math.floor(value))
            if name == "ceiling":
                return float(math.ceil(value))
            if name == "abs":
                return float(abs(value))
            return float(math.floor(value + 0.5))  # XPath round: half up
        if name == "substring":
            text = string_value(self.evaluate(args[0], context))
            start = int(_to_number(self.evaluate(args[1], context)))
            if len(args) >= 3:
                length = int(_to_number(self.evaluate(args[2], context)))
                return text[max(0, start - 1):max(0, start - 1 + length)]
            return text[max(0, start - 1):]
        if name == "substring-before":
            text = string_value(self.evaluate(args[0], context))
            sep = string_value(self.evaluate(args[1], context))
            index = text.find(sep)
            return text[:index] if index >= 0 else ""
        if name == "substring-after":
            text = string_value(self.evaluate(args[0], context))
            sep = string_value(self.evaluate(args[1], context))
            index = text.find(sep)
            return text[index + len(sep):] if index >= 0 else ""
        if name == "translate":
            text = string_value(self.evaluate(args[0], context))
            src = string_value(self.evaluate(args[1], context))
            dst = string_value(self.evaluate(args[2], context))
            table = {}
            for i, ch in enumerate(src):
                if ch not in table:
                    table[ch] = dst[i] if i < len(dst) else None
            return "".join(table.get(ch, ch) for ch in text
                           if table.get(ch, ch) is not None)
        if name == "upper-case":
            return string_value(self.evaluate(args[0], context)).upper()
        if name == "lower-case":
            return string_value(self.evaluate(args[0], context)).lower()
        if name == "boolean":
            return boolean_value(self.evaluate(args[0], context))
        if name == "distinct-values":
            value = self.evaluate(args[0], context)
            _require_nodes(value, "distinct-values")
            seen: list[str] = []
            for node in value:
                text = node.string_value()
                if text not in seen:
                    seen.append(text)
            return seen if False else _StringSequence(seen)
        raise ExecutionError(f"unknown function {name}()")

    def _aggregate(self, name: str, args, context: EvalContext) -> float:
        value = self.evaluate(args[0], context)
        _require_nodes(value, name)
        numbers = [_to_number(n.typed_value()) for n in value]
        if not numbers:
            if name == "sum":
                return 0.0
            raise ExecutionError(f"{name}() of an empty sequence")
        if name == "sum":
            return float(sum(numbers))
        if name == "avg":
            return float(sum(numbers) / len(numbers))
        if name == "min":
            return float(min(numbers))
        return float(max(numbers))


# ----------------------------------------------------------------------
# Helpers shared with other evaluators.
# ----------------------------------------------------------------------

def evaluate_xpath(doc: Document, text_or_path, variables: dict | None = None,
                   resolve_doc: Callable[[str], Document] | None = None) -> list[AnyNode]:
    """One-shot convenience: parse (if needed) and evaluate against a document."""
    from repro.xpath.parser import parse_xpath

    path = text_or_path
    if isinstance(path, str):
        path = parse_xpath(path)
    resolver = resolve_doc if resolve_doc is not None else (lambda uri: doc)
    context = EvalContext(doc.document_node, variables=dict(variables or {}),
                          resolve_doc=resolver)
    return XPathEvaluator().evaluate_path(path, context)


def boolean_value(value: Value) -> bool:
    """Effective boolean value (XPath 1.0 rules)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and value == value  # excludes NaN
    if isinstance(value, str):
        return bool(value)
    return len(value) > 0


def string_value(value: Value) -> str:
    """String value of any expression result (first node for lists)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return str(value)
    if isinstance(value, str):
        return value
    if not value:
        return ""
    return value[0].string_value()


def _atomize(value: Value) -> list[object]:
    """Convert a value to the atom list used by existential comparison."""
    if isinstance(value, list):
        return [n.typed_value() for n in value]
    return [value]


def _compare_atoms(op: str, a: object, b: object) -> bool:
    """Compare two atoms with XPath-1.0-flavoured coercion.

    Numbers compare numerically; a number against a string attempts a
    numeric parse of the string first.  Booleans coerce the other side
    to boolean for ``=``/``!=``.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        if op == "=":
            return bool(a) == bool(b)
        if op == "!=":
            return bool(a) != bool(b)
        a, b = float(bool(a)), float(bool(b))
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa = a if isinstance(a, float) else float(str(a).strip())
            fb = b if isinstance(b, float) else float(str(b).strip())
        except ValueError:
            if op == "=":
                return False
            if op == "!=":
                return True
            return False
        return _numeric_compare(op, fa, fb)
    sa, sb = str(a).strip(), str(b).strip()
    if op == "=":
        return sa == sb
    if op == "!=":
        return sa != sb
    # Order comparison on strings: numeric when both parse, else lexicographic.
    try:
        return _numeric_compare(op, float(sa), float(sb))
    except ValueError:
        return _numeric_compare(op, sa, sb)  # type: ignore[arg-type]


def _numeric_compare(op: str, a, b) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _single_node(value: Value, op: str) -> AnyNode | None:
    if not isinstance(value, list):
        raise ExecutionError(f"operand of {op} must be a node sequence")
    if not value:
        return None
    if len(value) > 1:
        raise ExecutionError(f"operand of {op} must be a single node, got {len(value)}")
    return value[0]


class _StringSequence(list):
    """A sequence of atomized strings (distinct-values results).

    Quacks enough like a node list for boolean tests and counting; each
    item exposes ``string_value``/``typed_value`` via _StringItem.
    """

    def __init__(self, values: list[str]) -> None:
        super().__init__(_StringItem(v) for v in values)


class _StringItem(str):
    def string_value(self) -> str:
        return str(self)

    def typed_value(self) -> object:
        try:
            return float(self)
        except ValueError:
            return str(self)

    @property
    def nid(self) -> int:
        return -1


def _to_number(value) -> float:
    if isinstance(value, float):
        return value
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, list):
        value = value[0].string_value() if value else ""
    try:
        return float(str(value).strip())
    except ValueError:
        return float("nan")


def _require_nodes(value: Value, fn: str) -> None:
    if not isinstance(value, list):
        raise ExecutionError(f"{fn}() requires a node sequence argument")


def _test_matches(test, node: Node) -> bool:
    if isinstance(test, NameTest):
        return node.kind == ELEMENT and test.matches_tag(node.tag)
    if isinstance(test, TextTest):
        return node.kind == TEXT
    return True  # AnyKindTest


def _following_siblings(node: Node) -> list[Node]:
    parent = node.parent
    if parent is None:
        return []
    siblings = parent.children
    for i, sib in enumerate(siblings):
        if sib is node:
            return siblings[i + 1:]
    return []


def _document_order_key(node: AnyNode) -> tuple[int, int]:
    if isinstance(node, AttrNode):
        return (node.owner.nid, 1)
    return (node.nid, 0)
