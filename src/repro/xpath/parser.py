"""Recursive-descent parser for the XPath subset.

Grammar (see :mod:`repro.xpath.ast` for the semantic notes)::

    path       ::= root? relpath?                (at least one of the two)
    root       ::= '/' | '//' | 'doc' '(' STRING ')' | '$' NAME | '.'
    relpath    ::= step (('/' | '//') step)*
    step       ::= (axis '::')? nodetest predicate*
                 | '@' nodetest predicate*
                 | '.' | '..'
    nodetest   ::= NAME | '*' | 'text' '(' ')' | 'node' '(' ')'
    predicate  ::= '[' expr ']'
    expr       ::= orExpr
    orExpr     ::= andExpr ('or' andExpr)*
    andExpr    ::= cmpExpr ('and' cmpExpr)*
    cmpExpr    ::= value (cmpOp value)?
    cmpOp      ::= '=' | '!=' | '<' | '<=' | '>' | '>=' | '<<' | '>>'
                 | 'is' | 'isnot'
    value      ::= STRING | NUMBER | functionCall | path | '(' expr ')'

Paths inside predicates are relative to the context node even when they
start with ``/`` or ``//`` (the convention the paper's Appendix A
queries use).
"""

from __future__ import annotations

from repro.xpath.ast import (
    AXIS_NAMES,
    AnyKindTest,
    BooleanExpr,
    Arithmetic,
    Comparison,
    Conditional,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NotExpr,
    NumberLiteral,
    RootContext,
    RootDoc,
    Quantified,
    RootVariable,
    Step,
    TextTest,
)
from repro.xpath.lexer import (
    NAME,
    NUMBER,
    STRING,
    SYMBOL,
    VARIABLE,
    TokenCursor,
    tokenize_query,
)

__all__ = ["parse_xpath", "parse_expr", "KNOWN_FUNCTIONS", "XPathParser"]

#: Functions the evaluator implements.  ``text``/``node`` are node tests,
#: not functions, and are excluded deliberately.
KNOWN_FUNCTIONS = frozenset({
    "position", "last", "count", "contains", "starts-with", "string-length",
    "deep-equal", "empty", "exists", "string", "number", "name", "not",
    "true", "false", "local-name", "normalize-space", "concat",
    "sum", "avg", "min", "max", "floor", "ceiling", "round", "abs",
    "substring", "substring-before", "substring-after", "translate",
    "upper-case", "lower-case", "boolean", "distinct-values",
})

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">", "<<", ">>")


def parse_xpath(text: str) -> LocationPath:
    """Parse a complete XPath string; raises ``QuerySyntaxError``."""
    cursor = TokenCursor(tokenize_query(text), text)
    parser = XPathParser(cursor)
    path = parser.parse_path(top_level=True)
    if not cursor.at_eof():
        raise cursor.error(f"unexpected trailing input {cursor.current.value!r}")
    return path


def parse_expr(text: str) -> Expr:
    """Parse a standalone boolean/value expression (e.g. a where clause)."""
    cursor = TokenCursor(tokenize_query(text), text)
    parser = XPathParser(cursor)
    expr = parser.parse_or_expr()
    if not cursor.at_eof():
        raise cursor.error(f"unexpected trailing input {cursor.current.value!r}")
    return expr


class XPathParser:
    """Parses XPath constructs from a shared :class:`TokenCursor`.

    The FLWOR parser instantiates this class on its own cursor to parse
    the path expressions embedded in for/let/where/order-by clauses.
    """

    def __init__(self, cursor: TokenCursor) -> None:
        self.cursor = cursor

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    def parse_path(self, top_level: bool = False) -> LocationPath:
        """Parse a location path.

        ``top_level`` controls whether a leading slash makes the path
        absolute (it stays "relative to context" inside predicates).
        """
        cur = self.cursor
        steps: list[Step] = []
        root = RootContext(absolute=False)

        if cur.current.is_name("doc") and cur.peek().is_symbol("("):
            cur.advance()
            cur.expect_symbol("(")
            uri = cur.expect_kind(STRING).value
            cur.expect_symbol(")")
            root = RootDoc(uri)
            if not (cur.current.is_symbol("/") or cur.current.is_symbol("//")):
                return LocationPath(root, ())
            steps.extend(self._parse_rel_steps())
            return LocationPath(root, tuple(steps))

        if cur.current.kind == VARIABLE:
            name = cur.advance().value
            root = RootVariable(name)
            if not (cur.current.is_symbol("/") or cur.current.is_symbol("//")):
                return LocationPath(root, ())
            steps.extend(self._parse_rel_steps())
            return LocationPath(root, tuple(steps))

        if cur.current.is_symbol("/") or cur.current.is_symbol("//"):
            root = RootContext(absolute=top_level)
            steps.extend(self._parse_rel_steps())
            return LocationPath(root, tuple(steps))

        # Plain relative path: step ('/' step)*
        steps.append(self._parse_step())
        steps.extend(self._parse_rel_steps(optional=True))
        return LocationPath(root, tuple(steps))

    def _parse_rel_steps(self, optional: bool = False) -> list[Step]:
        """Parse ``(('/'|'//') step)*``; requires one step unless optional."""
        cur = self.cursor
        steps: list[Step] = []
        first = True
        while True:
            if cur.accept_symbol("//"):
                step = self._parse_step()
                if step.axis == "child":
                    step = Step("descendant", step.test, step.predicates)
                elif step.axis == "self":
                    step = Step("descendant-or-self", AnyKindTest(), step.predicates)
                steps.append(step)
            elif cur.accept_symbol("/"):
                steps.append(self._parse_step())
            else:
                if first and not optional:
                    raise cur.error("expected a path step")
                return steps
            first = False

    def _parse_step(self) -> Step:
        cur = self.cursor
        token = cur.current

        if token.is_symbol("."):
            cur.advance()
            return Step("self", AnyKindTest(), self._parse_predicates())
        if token.is_symbol(".."):
            cur.advance()
            return Step("parent", AnyKindTest(), self._parse_predicates())
        if token.is_symbol("@"):
            cur.advance()
            test = self._parse_name_or_star()
            return Step("attribute", test, self._parse_predicates())
        if token.is_symbol("*"):
            cur.advance()
            return Step("child", NameTest("*"), self._parse_predicates())

        if token.kind != NAME:
            raise cur.error(f"expected a step, got {token.value!r}")

        # Explicit axis?
        if cur.peek().is_symbol("::"):
            axis = token.value
            if axis not in AXIS_NAMES:
                raise cur.error(f"unknown axis {axis!r}")
            cur.advance()
            cur.expect_symbol("::")
            test = self._parse_node_test()
            if axis == "attribute" and isinstance(test, (TextTest, AnyKindTest)):
                raise cur.error("attribute axis requires a name test")
            return Step(axis, test, self._parse_predicates())

        test = self._parse_node_test()
        return Step("child", test, self._parse_predicates())

    def _parse_node_test(self):
        cur = self.cursor
        if cur.current.is_symbol("*"):
            cur.advance()
            return NameTest("*")
        token = cur.expect_kind(NAME)
        if token.value == "text" and cur.current.is_symbol("("):
            cur.expect_symbol("(")
            cur.expect_symbol(")")
            return TextTest()
        if token.value == "node" and cur.current.is_symbol("("):
            cur.expect_symbol("(")
            cur.expect_symbol(")")
            return AnyKindTest()
        return NameTest(token.value)

    def _parse_name_or_star(self):
        cur = self.cursor
        if cur.current.is_symbol("*"):
            cur.advance()
            return NameTest("*")
        return NameTest(cur.expect_kind(NAME).value)

    def _parse_predicates(self) -> tuple[Expr, ...]:
        cur = self.cursor
        predicates: list[Expr] = []
        while cur.accept_symbol("["):
            predicates.append(self.parse_or_expr())
            cur.expect_symbol("]")
        return tuple(predicates)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def parse_or_expr(self) -> Expr:
        cur = self.cursor
        # Quantified and conditional expressions bind loosest.
        if (cur.current.kind == NAME and cur.current.value in ("some", "every")
                and cur.peek().kind == VARIABLE):
            kind = cur.advance().value
            var = cur.expect_kind(VARIABLE).value
            cur.expect_name("in")
            source = self.parse_path(top_level=False)
            cur.expect_name("satisfies")
            satisfies = self.parse_or_expr()
            return Quantified(kind, var, source, satisfies)
        if cur.current.is_name("if") and cur.peek().is_symbol("("):
            cur.advance()
            cur.expect_symbol("(")
            condition = self.parse_or_expr()
            cur.expect_symbol(")")
            cur.expect_name("then")
            then_branch = self.parse_or_expr()
            cur.expect_name("else")
            else_branch = self.parse_or_expr()
            return Conditional(condition, then_branch, else_branch)
        operands = [self.parse_and_expr()]
        while self.cursor.current.is_name("or"):
            self.cursor.advance()
            operands.append(self.parse_and_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("or", tuple(operands))

    def parse_and_expr(self) -> Expr:
        operands = [self.parse_comparison()]
        while self.cursor.current.is_name("and"):
            self.cursor.advance()
            operands.append(self.parse_comparison())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("and", tuple(operands))

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        cur = self.cursor
        for op in _COMPARISON_OPS:
            if cur.current.is_symbol(op):
                cur.advance()
                return Comparison(op, left, self.parse_additive())
        if cur.current.is_name("is"):
            cur.advance()
            return Comparison("is", left, self.parse_additive())
        if cur.current.is_name("isnot"):
            cur.advance()
            return Comparison("isnot", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        cur = self.cursor
        while cur.current.is_symbol("+") or cur.current.is_symbol("-"):
            op = cur.advance().value
            left = Arithmetic(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_value()
        cur = self.cursor
        while (cur.current.is_symbol("*") and not self._star_is_name_test()) \
                or cur.current.is_name("div") or cur.current.is_name("mod"):
            op = cur.advance().value
            left = Arithmetic(op, left, self.parse_value())
        return left

    def _star_is_name_test(self) -> bool:
        """Heuristic: ``*`` right after ``/`` or ``[`` or at expression
        start is a wildcard step, not multiplication.  Since paths are
        parsed greedily by parse_value, a ``*`` seen *here* always
        follows a complete operand and is multiplication."""
        return False

    def parse_value(self) -> Expr:
        cur = self.cursor
        token = cur.current

        if token.kind == STRING:
            cur.advance()
            return Literal(token.value)
        if token.kind == NUMBER:
            cur.advance()
            return NumberLiteral(float(token.value))
        if token.is_symbol("("):
            cur.advance()
            inner = self.parse_or_expr()
            cur.expect_symbol(")")
            return inner
        if token.is_name("not") and cur.peek().is_symbol("("):
            cur.advance()
            cur.expect_symbol("(")
            inner = self.parse_or_expr()
            cur.expect_symbol(")")
            return NotExpr(inner)
        if (token.kind == NAME and cur.peek().is_symbol("(")
                and token.value in KNOWN_FUNCTIONS):
            cur.advance()
            cur.expect_symbol("(")
            args: list[Expr] = []
            if not cur.current.is_symbol(")"):
                args.append(self.parse_or_expr())
                while cur.accept_symbol(","):
                    args.append(self.parse_or_expr())
            cur.expect_symbol(")")
            return FunctionCall(token.value, tuple(args))

        # Otherwise it must be a (relative) path.
        if (token.kind in (NAME, VARIABLE)
                or token.kind == SYMBOL and token.value in ("/", "//", ".", "..", "@", "*")):
            return self.parse_path(top_level=False)
        raise cur.error(f"expected an expression, got {token.value!r}")
