"""Shared lexer for XPath and the FLWOR subset.

A single token stream serves both parsers: the XQuery parser needs every
XPath token plus keywords (``for``, ``let``, ``where``, ``order``,
``by``, ``return``, ``in``), ``:=``, commas, braces and the node-order
comparators.  Element constructors inside a ``return`` clause are lexed
separately by the XQuery parser because they switch to XML mode.

Keywords are *contextual*: ``for`` is a valid tag or variable name, so
the lexer emits plain NAME tokens and the parsers decide what is a
keyword where — the same strategy real XQuery grammars use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

__all__ = [
    "Token",
    "tokenize_query",
    "NAME", "NUMBER", "STRING", "VARIABLE", "SYMBOL", "EOF",
]

NAME = "name"
NUMBER = "number"
STRING = "string"
VARIABLE = "variable"
SYMBOL = "symbol"
EOF = "eof"

# Multi-character symbols first so maximal munch works.
_SYMBOLS = [
    "<<", ">>", "!=", "<=", ">=", ":=", "::", "//", "..",
    "/", "[", "]", "(", ")", "@", ".", "*", "=", "<", ">",
    ",", "$", "{", "}", "|", "+", "-",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    pos: int

    def is_symbol(self, text: str) -> bool:
        return self.kind == SYMBOL and self.value == text

    def is_name(self, text: str) -> bool:
        return self.kind == NAME and self.value == text


def tokenize_query(text: str) -> list[Token]:
    """Tokenize a query string; always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "(" and text.startswith("(:", i):
            # XQuery comment (: ... :), nestable.
            depth = 0
            j = i
            while j < n:
                if text.startswith("(:", j):
                    depth += 1
                    j += 2
                elif text.startswith(":)", j):
                    depth -= 1
                    j += 2
                    if depth == 0:
                        break
                else:
                    j += 1
            if depth != 0:
                raise QuerySyntaxError("unterminated comment", i, text)
            i = j
            continue
        if ch in "\"'":
            j = text.find(ch, i + 1)
            if j < 0:
                raise QuerySyntaxError("unterminated string literal", i, text)
            tokens.append(Token(STRING, text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], i))
            i = j
            continue
        if ch == "$":
            j = i + 1
            if j >= n or text[j] not in _NAME_START:
                raise QuerySyntaxError("expected variable name after '$'", i, text)
            while j < n and text[j] in _NAME_CHARS:
                j += 1
            tokens.append(Token(VARIABLE, text[i + 1:j], i))
            i = j
            continue
        if ch in _NAME_START:
            j = i
            while j < n and text[j] in _NAME_CHARS:
                j += 1
            # Names may not end with '.' or '-' (they belong to symbols).
            while text[j - 1] in ".-":
                j -= 1
            tokens.append(Token(NAME, text[i:j], i))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(SYMBOL, sym, i))
                i += len(sym)
                break
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token(EOF, "", n))
    return tokens


class TokenCursor:
    """Forward cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def accept_symbol(self, text: str) -> bool:
        if self.current.is_symbol(text):
            self.advance()
            return True
        return False

    def accept_name(self, text: str) -> bool:
        if self.current.is_name(text):
            self.advance()
            return True
        return False

    def expect_symbol(self, text: str) -> Token:
        if not self.current.is_symbol(text):
            raise self.error(f"expected {text!r}, got {self.current.value!r}")
        return self.advance()

    def expect_name(self, text: str) -> Token:
        if not self.current.is_name(text):
            raise self.error(f"expected keyword {text!r}, got {self.current.value!r}")
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise self.error(f"expected {kind}, got {self.current.value!r}")
        return self.advance()

    def at_eof(self) -> bool:
        return self.current.kind == EOF

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, self.current.pos, self.source)
