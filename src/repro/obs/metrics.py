"""Process-wide metrics: labeled counters, gauges, histograms.

A tiny Prometheus-shaped metrics layer with no dependencies.  Metrics
are registered (idempotently) on a :class:`MetricsRegistry` and carry
free-form label sets::

    from repro.obs.metrics import REGISTRY

    QUERIES = REGISTRY.counter("repro_queries_total", "Queries executed")
    QUERIES.inc(strategy="pipelined")

The process-wide :data:`REGISTRY` is what the engine session, the
physical operators and the slow-query log all write to; export it with
:func:`repro.obs.export.prometheus_text`.

The conventional metric families the engine feeds (all prefixed
``repro_``):

=============================================  =========  ==============================
name                                           type       labels
=============================================  =========  ==============================
``repro_queries_total``                        counter    ``strategy``
``repro_query_latency_ms``                     histogram  ``strategy``
``repro_nodes_scanned_total``                  counter    —
``repro_scans_total``                          counter    —
``repro_comparisons_total``                    counter    —
``repro_intermediate_results_total``           counter    —
``repro_peak_buffered``                        gauge      —
``repro_join_selected_total``                  counter    ``algorithm``
``repro_operator_invocations_total``           counter    ``operator``
``repro_operator_output_total``                counter    ``operator``
``repro_budget_trips_total``                   counter    —
``repro_dnf_total``                            counter    ``strategy``
``repro_slow_queries_total``                   counter    —
``repro_plan_cache_hits_total``                counter    —
``repro_plan_cache_misses_total``              counter    —
``repro_plan_cache_evictions_total``           counter    —
``repro_plan_cache_invalidations_total``       counter    ``reason``
``repro_plan_verify_total``                    counter    ``outcome``
``repro_plan_verify_findings_total``           counter    ``rule``
``repro_query_timeout_total``                  counter    —
``repro_snapshot_publishes_total``             counter    —
``repro_snapshot_retires_total``               counter    —
``repro_snapshots_live``                       gauge      —
``repro_service_queue_depth``                  gauge      —
``repro_service_inflight``                     gauge      —
``repro_service_rejections_total``             counter    —
``repro_service_coalesced_total``              counter    —
``repro_service_wait_ms``                      histogram  —
``repro_service_run_ms``                       histogram  —
``repro_plan_retries_total``                   counter    —
``repro_result_cache_hits_total``              counter    —
``repro_result_cache_misses_total``            counter    —
``repro_result_cache_bytes``                   gauge      —
``repro_result_cache_evictions_total``         counter    —
``repro_result_cache_expirations_total``       counter    —
``repro_result_cache_invalidated_total``       counter    —
``repro_partition_splits_total``               counter    —
``repro_partition_scans_total``                counter    —
``repro_partition_fallbacks_total``            counter    —
``repro_tag_index_builds_total``               counter    —
``repro_stats_records_total``                  counter    —
``repro_stats_recost_total``                   counter    —
``repro_strategy_demotions_total``             counter    ``from_strategy``, ``to_strategy``
``repro_service_worker_utilization``           gauge      —
``repro_service_timeouts_total``               counter    —
=============================================  =========  ==============================

The plan-cache family is registered by :mod:`repro.engine.plancache`
(imported with the engine), and the ``query`` span carries a
``plan-cache`` attribute (``hit`` / ``miss`` / ``bypass`` /
``prepared``) tying individual traces to the counters.  The
plan-verify family is registered by :mod:`repro.analysis.analyzer`;
each compile opens a ``verify-plan`` span whose ``findings``/``rules``
attributes tie a trace to the analyzer's counters.  The serving
families (``repro_snapshot_*`` / ``repro_service_*`` /
``repro_result_cache_*`` plus the timeout and retry counters) are
registered by :mod:`repro.serve` — the wait/run histograms split a
served query's latency into queue time and execution time, and the
result-cache byte/eviction/expiration/invalidation family is owned by
the policy/storage split in :mod:`repro.serve.cachepolicy`.  The
partition family comes from :mod:`repro.xmlkit.partition` (subtree
splits of skewed documents) and :mod:`repro.physical.parallel_scan`
(per-partition scan tasks and single-partition fallbacks to the serial
scan); ``repro_tag_index_builds_total`` counts full-document tag-index
materializations — the serving catalog caches one index per snapshot,
so this should rise at most once per version.  The statistics family
(``repro_stats_*`` and the demotion counter) is registered by
:mod:`repro.obs.statstore`: every execution recorded into a
:class:`~repro.obs.statstore.StatsStore`, every re-costing against
observed selectivities, and every strategy the feedback loop demoted
after a measured latency regression.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "bucket_quantile", "get_registry"]

LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (milliseconds).
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    if not labels:          # unlabeled metrics dominate the hot path
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Common storage: one value cell per distinct label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._cells: dict[LabelKey, float] = {}

    def value(self, **labels: Any) -> float:
        """Current value for one label set (0 if never touched)."""
        return self._cells.get(_label_key(labels), 0.0)

    def cells(self) -> dict[LabelKey, float]:
        """All (label-set, value) cells, for exposition."""
        return dict(self._cells)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def bound(self, **labels: Any):
        """A zero-argument incrementer with the label key precomputed.

        ``inc(**labels)`` rebuilds and sorts the label key on every
        call; hot paths that bump one fixed label set (e.g. the plan
        verifier's ``outcome="ok"``) bind it once instead.
        """
        key = _label_key(labels)
        lock = self._lock
        cells = self._cells

        def inc_bound() -> None:
            with lock:
                cells[key] = cells.get(key, 0.0) + 1.0

        return inc_bound


class Gauge(_Metric):
    """A value that can go up and down (e.g. peak buffer size)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._cells[_label_key(labels)] = float(value)

    def max(self, value: float, **labels: Any) -> None:
        """Keep the running maximum (handy for peak-style gauges)."""
        key = _label_key(labels)
        with self._lock:
            if value > self._cells.get(key, float("-inf")):
                self._cells[key] = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Iterable[float] | None = None) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets if buckets is not None
                                    else DEFAULT_BUCKETS))
        self._lock = threading.Lock()
        #: label key -> (per-bucket counts, sum, count)
        self._cells: dict[LabelKey, tuple[list[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            counts, total, n = self._cells.get(
                key, ([0] * len(self.buckets), 0.0, 0))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._cells[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        cell = self._cells.get(_label_key(labels))
        return cell[2] if cell else 0

    def sum(self, **labels: Any) -> float:
        cell = self._cells.get(_label_key(labels))
        return cell[1] if cell else 0.0

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from the buckets.

        Prometheus ``histogram_quantile`` semantics: linear
        interpolation inside the bucket the rank falls into, and the
        last finite bucket bound when the rank lands in the ``+Inf``
        overflow bucket (the histogram has no upper bound to
        interpolate toward).  ``None`` when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cell = self._cells.get(_label_key(labels))
        if cell is None:
            return None
        counts, _total, n = cell
        return bucket_quantile(self.buckets, counts, n, q)

    def cells(self) -> dict[LabelKey, tuple[list[int], float, int]]:
        return dict(self._cells)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()


def bucket_quantile(buckets: tuple[float, ...], counts: list[int],
                    n: int, q: float) -> float | None:
    """Quantile estimate over cumulative bucket counts.

    Shared by :meth:`Histogram.quantile` and the Prometheus exposition
    (which reads raw cells), so the two views can never disagree.
    """
    if n <= 0:
        return None
    rank = q * n
    if rank <= 0:
        # q == 0: the estimate is the floor of the first non-empty
        # bucket; a vanishing positive rank lands exactly there.
        rank = 1e-9
    prev_bound, prev_count = 0.0, 0
    for bound, cumulative in zip(buckets, counts, strict=True):
        if cumulative >= rank:
            span = cumulative - prev_count
            if span <= 0:       # degenerate: rank on an empty bucket edge
                return bound
            fraction = (rank - prev_count) / span
            return prev_bound + fraction * (bound - prev_bound)
        prev_bound, prev_count = bound, cumulative
    # The rank falls in the +Inf overflow bucket: no finite upper bound
    # to interpolate toward, so report the largest finite bound.
    return buckets[-1] if buckets else None


class MetricsRegistry:
    """Create-or-get registry of named metrics, in registration order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _register(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if getattr(existing, "kind", None) != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{getattr(existing, 'kind', '?')}, not {kind}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help_text), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help_text), "gauge")

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] | None = None) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_text, buckets), "histogram")

    def get(self, name: str):
        """A registered metric by name, or ``None``."""
        return self._metrics.get(name)

    def collect(self) -> list[object]:
        """All metrics in registration order (for exposition)."""
        return list(self._metrics.values())

    def reset(self) -> None:
        """Zero every metric's cells (registrations survive) — tests."""
        for metric in self._metrics.values():
            metric.clear()  # type: ignore[attr-defined]


#: The process-wide registry every engine component writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
