"""Runtime statistics store: per-plan actuals, recorded on every run.

The cost model estimates; ``explain_analyze`` measures — but until this
module the two never met: actuals were computed, printed, and thrown
away while the optimizer kept deciding from static
:mod:`repro.xmlkit.stats` summaries.  :class:`StatsStore` is the
missing memory.  Every execution that flows through
:meth:`Engine._shell <repro.engine.session.Engine>` records, keyed like
the plan cache —

``(normalized query text, executed strategy, stats fingerprint,
executor backend key)``

— the observed wall time (a full latency histogram, not just a mean),
the run's work-counter deltas (nodes scanned, comparisons, buffered
intermediates), the output cardinality, and the per-NoK observed
selectivities (matches per pattern root tag).  On top of those
observations sit the consumers:

* the **feedback loop** in :mod:`repro.engine.optimizer`
  (:class:`~repro.engine.optimizer.StrategyAdvisor`) compares measured
  latencies across strategies of one query and demotes the static
  choice when an alternative measures faster (with hysteresis, so the
  decision does not flap);
* **re-costing** in :mod:`repro.engine.cost` — observed per-tag match
  cardinalities override the index cardinalities, so
  ``Engine.recost()`` ranks strategies against reality instead of
  against the static histogram;
* the **introspection surface** — ``Database.stats()`` /
  ``QueryService.stats()`` embed :meth:`StatsStore.snapshot`, the
  ``python -m repro.obs`` CLI renders it as tables, and
  :meth:`to_jsonl` exports one JSON line per plan for offline tooling.

Counters (process-wide, exported like every ``repro_*`` family):

=============================================  ==============================
``repro_stats_records_total``                  executions recorded
``repro_stats_recost_total``                   feedback/observed re-costings
``repro_strategy_demotions_total``             strategies demoted by measured
                                               regression (labels:
                                               ``from_strategy``,
                                               ``to_strategy``)
=============================================  ==============================

The store is thread-safe (one lock around the accumulator map; callers
of the serving layer share one store per document) and bounded: at
``max_plans`` distinct keys the least-recently-recorded plan is
evicted, so a long-lived service cannot grow it without bound.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import REGISTRY, Histogram

__all__ = ["DemotionRecord", "PlanStats", "StatsStore",
           "RESULT_SIZE_BUCKETS",
           "STATS_RECORDS", "STATS_RECOSTS", "STRATEGY_DEMOTIONS"]

STATS_RECORDS = REGISTRY.counter(
    "repro_stats_records_total",
    "Query executions recorded into a runtime statistics store")
STATS_RECOSTS = REGISTRY.counter(
    "repro_stats_recost_total",
    "Plans re-costed against observed runtime statistics")
STRATEGY_DEMOTIONS = REGISTRY.counter(
    "repro_strategy_demotions_total",
    "Strategy choices demoted after an observed latency regression")

#: Latency buckets for the per-plan histograms — finer than the default
#: registry buckets at the low end, where strategy differences live.
PLAN_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                        50.0, 100.0, 250.0, 1000.0, 5000.0)

#: Work-counter deltas the store accumulates per plan.
WORK_COUNTERS = ("nodes_scanned", "comparisons", "intermediate_results")

#: Serialized result-size buckets (bytes) — log-spaced from scalar
#: aggregates to whole subtrees.  The serving layer records every
#: cacheable result's byte size here; the adaptive cache policy reads
#: the distribution back to bound per-entry admission.
RESULT_SIZE_BUCKETS = (256, 1024, 4096, 16384, 65536, 262144,
                       1048576, 4194304, 16777216)


@dataclass
class DemotionRecord:
    """One feedback decision that overrode the static strategy choice.

    Kept by the store (bounded ring) and surfaced through
    :meth:`StatsStore.snapshot`, ``Database.stats()`` and the
    ``python -m repro.obs`` CLI, so every demotion is auditable: what
    query, which strategies, and the measured latencies that justified
    the move.
    """

    query: str
    fingerprint: str
    executor: str
    from_strategy: str
    to_strategy: str
    from_mean_ms: float
    to_mean_ms: float
    executions: int          # observations across both arms at decision time
    reason: str
    timestamp: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            "fingerprint": self.fingerprint,
            "executor": self.executor,
            "from_strategy": self.from_strategy,
            "to_strategy": self.to_strategy,
            "from_mean_ms": round(self.from_mean_ms, 3),
            "to_mean_ms": round(self.to_mean_ms, 3),
            "executions": self.executions,
            "reason": self.reason,
            "timestamp": self.timestamp,
        }


class PlanStats:
    """Accumulated actuals of one (query, strategy, version, executor).

    Mutated only by :meth:`StatsStore.record` (under the store lock);
    readers get plain dicts via :meth:`to_dict`.
    """

    __slots__ = ("text", "strategy", "fingerprint", "executor",
                 "executions", "errors", "total_ms", "min_ms", "max_ms",
                 "latency", "items_total", "work", "nok_matches",
                 "cache_hits", "last_error", "last_recorded")

    def __init__(self, text: str, strategy: str, fingerprint: tuple,
                 executor: str) -> None:
        self.text = text
        self.strategy = strategy
        self.fingerprint = fingerprint
        self.executor = executor
        self.executions = 0
        self.errors = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0
        self.latency = Histogram("plan_latency_ms", buckets=PLAN_LATENCY_BUCKETS)
        self.items_total = 0
        #: accumulated work-counter deltas (see :data:`WORK_COUNTERS`).
        self.work: dict[str, int] = dict.fromkeys(WORK_COUNTERS, 0)
        #: pattern root tag -> [total matches, observations] — the
        #: observed NoK selectivities the re-coster consumes.
        self.nok_matches: dict[str, list[int]] = {}
        self.cache_hits = 0
        self.last_error: str | None = None
        self.last_recorded = 0.0

    # -- derived quantities -------------------------------------------------

    @property
    def successes(self) -> int:
        return self.executions - self.errors

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.executions if self.executions else 0.0

    def quantile(self, q: float) -> float | None:
        return self.latency.quantile(q)

    def observed_cardinality(self, tag: str) -> float | None:
        """Mean observed matches of one NoK root tag, or ``None``."""
        cell = self.nok_matches.get(tag)
        if not cell or not cell[1]:
            return None
        return cell[0] / cell[1]

    def to_dict(self) -> dict[str, object]:
        """JSON-able summary (what ``stats()`` snapshots embed)."""
        return {
            "query": self.text,
            "strategy": self.strategy,
            "fingerprint": _fingerprint_text(self.fingerprint),
            "executor": self.executor,
            "executions": self.executions,
            "errors": self.errors,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "min_ms": round(self.min_ms, 3) if self.executions else None,
            "max_ms": round(self.max_ms, 3),
            "p50_ms": _round_opt(self.quantile(0.50)),
            "p95_ms": _round_opt(self.quantile(0.95)),
            "p99_ms": _round_opt(self.quantile(0.99)),
            "items_total": self.items_total,
            "work": dict(self.work),
            "nok_selectivity": {
                tag: round(total / max(1, n), 3)
                for tag, (total, n) in sorted(self.nok_matches.items())},
            "cache_hits": self.cache_hits,
            "last_error": self.last_error,
        }


def _round_opt(value: float | None) -> float | None:
    return round(value, 3) if value is not None else None


def _fingerprint_text(fingerprint: tuple) -> str:
    return "/".join(str(part) for part in fingerprint)


class StatsStore:
    """Thread-safe accumulator of per-plan runtime statistics.

    One store is owned by each plain :class:`~repro.engine.session.Engine`
    (or shared: the serving :class:`~repro.serve.catalog.Catalog` hands
    one store per document to every snapshot engine, exactly like the
    shared plan cache, so observations survive snapshot churn).
    """

    def __init__(self, max_plans: int = 512, max_demotions: int = 256) -> None:
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, PlanStats] = OrderedDict()
        self.max_plans = max(1, max_plans)
        self.max_demotions = max(1, max_demotions)
        self._demotions: list[DemotionRecord] = []
        #: (text, fingerprint, executor) -> strategy the feedback
        #: loop has settled on (the advisor's persistent decision).
        self._settled: dict[tuple, str] = {}
        self.records = 0
        #: Distribution of serialized result sizes (bytes), fed by the
        #: serving layer's cache admission path and consumed by
        #: :class:`repro.serve.cachepolicy.AdaptiveCachePolicy`.
        self.result_bytes = Histogram("result_bytes",
                                      buckets=RESULT_SIZE_BUCKETS)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def record(self, text: str, strategy: str, fingerprint: tuple,
               executor: str, *, elapsed_ms: float,
               counters: Mapping[str, int] | None = None,
               items: int | None = None,
               nok_matches: Iterable[tuple[str, int]] | None = None,
               cache_status: str | None = None,
               error: str | None = None) -> PlanStats:
        """Record one execution's actuals; returns the updated entry.

        ``counters`` carries the run's work-counter *deltas* (the shell
        computes them against its before-snapshot); ``nok_matches`` the
        per-NoK ``(root tag, match count)`` pairs of the match phase;
        ``error`` the exception type name when the run failed (failed
        runs count toward latency but not toward selectivities).
        """
        key = (text, strategy, fingerprint, executor)
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                entry = PlanStats(text, strategy, fingerprint, executor)
                while len(self._plans) >= self.max_plans:
                    self._plans.popitem(last=False)
                self._plans[key] = entry
            else:
                self._plans.move_to_end(key)
            entry.executions += 1
            entry.total_ms += elapsed_ms
            entry.min_ms = min(entry.min_ms, elapsed_ms)
            entry.max_ms = max(entry.max_ms, elapsed_ms)
            entry.latency.observe(elapsed_ms)
            entry.last_recorded = time.time()
            if counters:
                for name in WORK_COUNTERS:
                    entry.work[name] += int(counters.get(name, 0))
            if items is not None:
                entry.items_total += items
            if cache_status in ("hit", "prepared"):
                entry.cache_hits += 1
            if error is not None:
                entry.errors += 1
                entry.last_error = error
            elif nok_matches:
                for tag, matches in nok_matches:
                    cell = entry.nok_matches.setdefault(tag, [0, 0])
                    cell[0] += matches
                    cell[1] += 1
            self.records += 1
        STATS_RECORDS.inc()
        return entry

    def record_result_bytes(self, nbytes: int) -> None:
        """Record one serialized result's byte size.

        The serving layer calls this on every cache-admission decision
        (hit or miss), building the entry-size distribution the
        adaptive cache policy sizes its admission bound from.
        """
        self.result_bytes.observe(float(nbytes))

    # ------------------------------------------------------------------
    # Lookups the feedback loop and re-coster consume.
    # ------------------------------------------------------------------

    def get(self, text: str, strategy: str, fingerprint: tuple,
            executor: str) -> PlanStats | None:
        with self._lock:
            return self._plans.get((text, strategy, fingerprint, executor))

    def arms(self, text: str, fingerprint: tuple,
             executor: str) -> dict[str, PlanStats]:
        """Per-strategy observations of one (query, version, backend).

        The advisor's view: the same query executed under different
        strategies, comparable because everything else in the key is
        held fixed.
        """
        with self._lock:
            return {entry.strategy: entry
                    for (t, _s, f, x), entry in self._plans.items()
                    if t == text and f == fingerprint and x == executor}

    def observed_cardinalities(self, fingerprint: tuple) -> dict[str, float]:
        """Mean observed matches per NoK root tag for one document version.

        Aggregated across every recorded plan of that fingerprint —
        this is what :class:`~repro.engine.cost.CostModel` accepts as
        its ``observed`` override, replacing index cardinalities with
        measured selectivities.
        """
        totals: dict[str, list[int]] = {}
        with self._lock:
            for (_t, _s, f, _p), entry in self._plans.items():
                if f != fingerprint:
                    continue
                for tag, (total, n) in entry.nok_matches.items():
                    cell = totals.setdefault(tag, [0, 0])
                    cell[0] += total
                    cell[1] += n
        return {tag: total / n for tag, (total, n) in totals.items() if n}

    # ------------------------------------------------------------------
    # Feedback decisions (the advisor's persistent state).
    # ------------------------------------------------------------------

    def settled_strategy(self, text: str, fingerprint: tuple,
                         executor: str) -> str | None:
        """The strategy the feedback loop settled on, if decided."""
        with self._lock:
            return self._settled.get((text, fingerprint, executor))

    def settle(self, text: str, fingerprint: tuple, executor: str,
               strategy: str, demotion: DemotionRecord | None = None) -> None:
        """Persist a feedback decision (and its demotion record, if the
        decision moved away from the static choice)."""
        with self._lock:
            self._settled[(text, fingerprint, executor)] = strategy
            if demotion is not None:
                self._demotions.append(demotion)
                del self._demotions[:len(self._demotions) - self.max_demotions]
        if demotion is not None:
            STRATEGY_DEMOTIONS.inc(from_strategy=demotion.from_strategy,
                                   to_strategy=demotion.to_strategy)

    @property
    def demotions(self) -> list[DemotionRecord]:
        with self._lock:
            return list(self._demotions)

    # ------------------------------------------------------------------
    # Introspection: snapshots, tables, export.
    # ------------------------------------------------------------------

    def top_queries(self, n: int = 10) -> list[dict[str, object]]:
        """The ``n`` most expensive plans by accumulated wall time."""
        with self._lock:
            entries = sorted(self._plans.values(),
                             key=lambda e: e.total_ms, reverse=True)
        return [entry.to_dict() for entry in entries[:n]]

    def strategy_table(self) -> list[dict[str, object]]:
        """Per-strategy aggregate with measured win/loss counts.

        A *win* means: among the recorded strategies of one
        (query, fingerprint, executor) group with at least two
        measured strategies, this strategy had the lowest mean latency.
        Groups with a single strategy contribute to the aggregate
        columns but not to wins/losses (there was no contest).
        """
        with self._lock:
            entries = list(self._plans.values())
        groups: dict[tuple, list[PlanStats]] = {}
        for entry in entries:
            groups.setdefault(
                (entry.text, entry.fingerprint, entry.executor),
                []).append(entry)
        rows: dict[str, dict[str, object]] = {}
        pooled: dict[str, list[Histogram]] = {}
        for entry in entries:
            row = rows.setdefault(entry.strategy, {
                "strategy": entry.strategy, "executions": 0, "errors": 0,
                "total_ms": 0.0, "wins": 0, "losses": 0})
            row["executions"] += entry.executions
            row["errors"] += entry.errors
            row["total_ms"] += entry.total_ms
            pooled.setdefault(entry.strategy, []).append(entry.latency)
        for contenders in groups.values():
            measured = [e for e in contenders if e.successes > 0]
            if len(measured) < 2:
                continue
            winner = min(measured, key=lambda e: e.mean_ms)
            for entry in measured:
                column = "wins" if entry is winner else "losses"
                rows[entry.strategy][column] += 1
        for strategy, row in rows.items():
            execs = row["executions"]
            row["mean_ms"] = round(row["total_ms"] / execs, 3) if execs else 0.0
            row["total_ms"] = round(row["total_ms"], 3)
            merged = _pool_histograms(pooled[strategy])
            for q, label in ((0.50, "p50_ms"), (0.95, "p95_ms"),
                             (0.99, "p99_ms")):
                row[label] = _round_opt(merged.quantile(q))
        return sorted(rows.values(), key=lambda r: r["total_ms"], reverse=True)

    def snapshot(self, top: int | None = None) -> dict[str, object]:
        """A JSON-able view of the whole store.

        ``top`` bounds the per-plan list (most expensive first); the
        strategy table, demotions and totals always cover everything.
        """
        with self._lock:
            n_plans = len(self._plans)
            records = self.records
            settled = {" | ".join((t, _fingerprint_text(f), x)): s
                       for (t, f, x), s in self._settled.items()}
        return {
            "plans": self.top_queries(top if top is not None else n_plans),
            "n_plans": n_plans,
            "records": records,
            "by_strategy": self.strategy_table(),
            "demotions": [d.to_dict() for d in self.demotions],
            "settled": settled,
            "result_bytes": {
                "observations": self.result_bytes.count(),
                "p50": _round_opt(self.result_bytes.quantile(0.50)),
                "p95": _round_opt(self.result_bytes.quantile(0.95)),
            },
        }

    def to_jsonl(self) -> str:
        """One JSON line per plan entry plus one per demotion record."""
        lines = [json.dumps({"kind": "plan", **entry})
                 for entry in self.top_queries(len(self))]
        lines.extend(json.dumps({"kind": "demotion", **d.to_dict()})
                     for d in self.demotions)
        return "\n".join(lines) + ("\n" if lines else "")

    def export_jsonl(self, path: str | Path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns lines written."""
        text = self.to_jsonl()
        Path(path).write_text(text, encoding="utf-8")
        return sum(1 for line in text.splitlines() if line)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._demotions.clear()
            self._settled.clear()
            self.records = 0
            self.result_bytes.clear()


def _pool_histograms(histograms: list[Histogram]) -> Histogram:
    """Merge same-bucket histograms into one (for per-strategy quantiles)."""
    merged = Histogram("pooled", buckets=PLAN_LATENCY_BUCKETS)
    counts = [0] * len(merged.buckets)
    total, n = 0.0, 0
    for histogram in histograms:
        for cell_counts, cell_total, cell_n in histogram.cells().values():
            for index, count in enumerate(cell_counts):
                counts[index] += count
            total += cell_total
            n += cell_n
    if n:
        merged._cells[()] = (counts, total, n)
    return merged
