"""Command-line introspection: ``python -m repro.obs``.

Two subcommands over the runtime statistics surface:

``report``
    Render a saved statistics snapshot as text tables.  Accepts (via
    ``--stats FILE``, or ``-`` for stdin) any of the JSON shapes this
    package produces: a ``Database.stats()`` dict, a
    ``QueryService.stats()`` dict, a raw :meth:`StatsStore.snapshot
    <repro.obs.statstore.StatsStore.snapshot>`, or the JSON-lines
    export of :meth:`StatsStore.to_jsonl
    <repro.obs.statstore.StatsStore.to_jsonl>`.

``demo``
    Build a small in-memory corpus, run a feedback-enabled workload
    against it, and render the resulting report — a self-contained tour
    of the observe → re-cost → demote loop.  ``--export FILE`` saves
    the ``Database.stats()`` snapshot as JSON, ``--jsonl FILE`` the
    per-plan JSON-lines export.

Run with::

    python -m repro.obs demo
    python -m repro.obs report --stats stats.json [--top 10] [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import format_table

_PLAN_COLUMNS = ("query", "strategy", "par", "execs", "errors", "mean_ms",
                 "p50_ms", "p99_ms", "total_ms", "items", "cache_hits")
_RIGHT = ("par", "execs", "errors", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
          "total_ms", "items", "cache_hits", "wins", "losses", "executions")
_QUERY_WIDTH = 48

#: The ``stats()`` schema version this CLI understands.  Both
#: ``Database.stats()`` and ``QueryService.stats()`` stamp their
#: payloads with ``"schema": 1``; ``report`` rejects anything newer
#: (or otherwise unknown) instead of silently mis-rendering it.
STATS_SCHEMA = 1


def _clip(text: object, width: int = _QUERY_WIDTH) -> str:
    text = str(text)
    return text if len(text) <= width else text[:width - 1] + "…"


def _plan_rows(plans: list[dict], top: int) -> list[dict[str, object]]:
    rows = []
    for plan in plans[:top]:
        rows.append({
            "query": _clip(plan.get("query", "?")),
            "strategy": plan.get("strategy", "?"),
            "executor": plan.get("executor", "serial"),
            "execs": plan.get("executions", 0),
            "errors": plan.get("errors", 0),
            "mean_ms": plan.get("mean_ms", ""),
            "p50_ms": _opt(plan.get("p50_ms")),
            "p99_ms": _opt(plan.get("p99_ms")),
            "total_ms": plan.get("total_ms", ""),
            "items": plan.get("items_total", 0),
            "cache_hits": plan.get("cache_hits", 0),
        })
    return rows


def _opt(value: object) -> object:
    return "-" if value is None else value


def _strategy_rows(by_strategy: list[dict]) -> list[dict[str, object]]:
    rows = []
    for row in by_strategy:
        rows.append({
            "strategy": row.get("strategy", "?"),
            "executions": row.get("executions", 0),
            "errors": row.get("errors", 0),
            "wins": row.get("wins", 0),
            "losses": row.get("losses", 0),
            "mean_ms": row.get("mean_ms", ""),
            "p50_ms": _opt(row.get("p50_ms")),
            "p95_ms": _opt(row.get("p95_ms")),
            "p99_ms": _opt(row.get("p99_ms")),
            "total_ms": row.get("total_ms", ""),
        })
    return rows


def _cache_line(cache: dict | None) -> str:
    if not cache:
        return "(no plan cache data)"
    ratio = cache.get("hit_ratio")
    ratio_text = "-" if ratio is None else f"{ratio:.2%}"
    return (f"size {cache.get('size', '?')}/{cache.get('capacity', '?')}  "
            f"hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}  "
            f"evictions {cache.get('evictions', 0)}  hit ratio {ratio_text}")


def _ratio_text(ratio) -> str:
    return "-" if ratio is None else f"{ratio:.2%}"


def _result_cache_line(cache: dict) -> str:
    """Render the byte-accounted result-cache section of ``stats()``."""
    if not cache.get("enabled", True) and "size" not in cache:
        return "disabled"
    window = cache.get("window") or {}
    audit = cache.get("audit") or {}
    return (f"{cache.get('size', 0)} entries  "
            f"{cache.get('bytes', 0)}/{cache.get('capacity_bytes', '?')} B  "
            f"hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}  "
            f"hit ratio {_ratio_text(cache.get('hit_ratio'))} "
            f"(window {_ratio_text(window.get('hit_ratio'))})  "
            f"evictions {cache.get('evictions', 0)}  "
            f"expirations {cache.get('expirations', 0)}  "
            f"invalidated {cache.get('invalidated', 0)} "
            f"({audit.get('snapshots_invalidated', 0)} snapshots, "
            f"{audit.get('survivors', 0)} audit survivors)")


def render_statstore(snapshot: dict, top: int = 10) -> str:
    """Text tables over one :meth:`StatsStore.snapshot` dict."""
    lines = [f"runtime statistics: {snapshot.get('records', 0)} recorded "
             f"executions over {snapshot.get('n_plans', 0)} plans"]
    plans = snapshot.get("plans") or []
    if plans:
        lines.append("")
        lines.append(f"top {min(top, len(plans))} plans by accumulated time:")
        lines.append(format_table(_plan_rows(plans, top), right_align=_RIGHT))
    by_strategy = snapshot.get("by_strategy") or []
    if by_strategy:
        lines.append("")
        lines.append("per-strategy win/loss (win = fastest measured mean of "
                     "a contested query):")
        lines.append(format_table(_strategy_rows(by_strategy),
                                  right_align=_RIGHT))
    demotions = snapshot.get("demotions") or []
    if demotions:
        lines.append("")
        lines.append(f"feedback demotions ({len(demotions)}):")
        for record in demotions:
            lines.append(
                f"  {_clip(record.get('query', '?'))}: "
                f"{record.get('from_strategy')} "
                f"({record.get('from_mean_ms')} ms) -> "
                f"{record.get('to_strategy')} "
                f"({record.get('to_mean_ms')} ms)")
    settled = snapshot.get("settled") or {}
    if settled:
        lines.append("")
        lines.append(f"settled feedback decisions ({len(settled)}):")
        for key, strategy in sorted(settled.items()):
            lines.append(f"  {_clip(key, 64)} -> {strategy}")
    return "\n".join(lines)


def render_service(stats: dict, top: int = 10) -> str:
    """Text report over one ``QueryService.stats()`` dict."""
    counters = stats.get("counters") or {}
    lines = ["query service:"]
    lines.append(
        f"  workers {stats.get('workers', '?')}  "
        f"queue depth {stats.get('queue_depth', '?')}  "
        f"inflight {stats.get('inflight', '?')}  "
        f"utilization {stats.get('worker_utilization', 0.0):.1%}  "
        f"uptime {stats.get('uptime_s', 0.0):.1f}s")
    if counters:
        pairs = "  ".join(f"{name} {value}"
                          for name, value in sorted(counters.items()))
        lines.append(f"  counters: {pairs}")
    result_cache = stats.get("result_cache")
    if isinstance(result_cache, dict):
        lines.append(f"  result cache: {_result_cache_line(result_cache)}")
    for name, doc in sorted((stats.get("documents") or {}).items()):
        lines.append("")
        lines.append(f"document {name!r} (snapshot "
                     f"{doc.get('snapshot_id', '?')}):")
        lines.append(f"  plan cache: {_cache_line(doc.get('plan_cache'))}")
        store = doc.get("statstore")
        if store:
            lines.append(_indent(render_statstore(store, top)))
    return "\n".join(lines)


def render_report(payload: dict, top: int = 10) -> str:
    """Dispatch on the payload shape and render the full text report."""
    if "documents" in payload and "statstore" not in payload:
        return render_service(payload, top)
    lines = []
    document = payload.get("document")
    if document:
        lines.append(
            f"document: {document.get('n_elements', '?')} elements, "
            f"{document.get('n_distinct_tags', '?')} tags, depth "
            f"{document.get('max_depth', '?')}, "
            f"{'recursive' if document.get('recursive') else 'flat'} "
            f"(fingerprint {document.get('fingerprint', '?')})")
    if "feedback" in payload:
        lines.append("feedback-driven strategy selection: "
                     + ("on" if payload.get("feedback") else "off"))
    if "plan_cache" in payload:
        lines.append(f"plan cache: {_cache_line(payload.get('plan_cache'))}")
    slow = payload.get("slow_queries")
    if isinstance(slow, dict):
        lines.append(f"slow-query log: {slow.get('entries', 0)} entries over "
                     f"{slow.get('threshold_ms', '?')} ms")
    store = payload.get("statstore",
                        payload if "plans" in payload else None)
    if store is not None:
        if lines:
            lines.append("")
        lines.append(render_statstore(store, top))
    service = payload.get("service")
    if isinstance(service, dict):
        lines.append("")
        lines.append(render_service(service, top))
    if not lines:
        return "(nothing to report: unrecognized stats payload)"
    return "\n".join(lines)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line if line else line
                     for line in text.splitlines())


def _load_payload(path: str) -> dict:
    """Read a stats payload: JSON dict or the JSONL per-plan export."""
    text = (sys.stdin.read() if path == "-"
            else Path(path).read_text(encoding="utf-8"))
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "kind" not in payload:
        return payload
    # JSON-lines export: one dict per line, tagged with "kind".
    plans, demotions = [], []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "demotion":
            demotions.append(record)
        else:
            plans.append(record)
    plans.sort(key=lambda p: p.get("total_ms", 0.0), reverse=True)
    return {"plans": plans, "n_plans": len(plans),
            "records": sum(p.get("executions", 0) for p in plans),
            "by_strategy": [], "demotions": demotions, "settled": {}}


# ----------------------------------------------------------------------
# The demo workload.
# ----------------------------------------------------------------------

_DEMO_BOOKS = 400


def _demo_document() -> str:
    """A small bibliography with skewed predicates (deterministic)."""
    books = []
    for i in range(_DEMO_BOOKS):
        price = 10 + (i * 7) % 60
        year = 1990 + i % 12
        extra = (f"<editor><last>E{i % 5}</last></editor>"
                 if i % 4 == 0 else "")
        books.append(
            f"<book><title>T{i}</title>"
            f"<author><first>F{i % 13}</first><last>L{i % 7}</last></author>"
            f"{extra}<price>{price}</price><year>{year}</year></book>")
    return "<bib>" + "".join(books) + "</bib>"


_DEMO_QUERIES = (
    "//book[author]/title",
    "//book//last",
    "for $b in //book where $b/price > 40 return $b/title",
)


def _run_demo(args: argparse.Namespace) -> int:
    import repro

    print("building demo corpus and running the feedback workload "
          f"({args.rounds} rounds x {len(_DEMO_QUERIES)} queries)...\n")
    with repro.connect(_demo_document(), slow_query_ms=250.0,
                       feedback=True) as db:
        db.engine.index.build()     # twig alternatives need the tag index
        for _ in range(args.rounds):
            for query in _DEMO_QUERIES:
                db.query(query)
        stats = db.stats(top=args.top)
        if args.export:
            Path(args.export).write_text(json.dumps(stats, indent=2),
                                         encoding="utf-8")
            print(f"wrote {args.export}")
        if args.jsonl:
            written = db.engine.stats_store.export_jsonl(args.jsonl)
            print(f"wrote {args.jsonl} ({written} lines)")
        print(render_report(stats, top=args.top))
    return 0


def _run_report(args: argparse.Namespace) -> int:
    try:
        payload = _load_payload(args.stats)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read stats from {args.stats!r}: {exc}",
              file=sys.stderr)
        return 2
    if payload.get("tool") == "repro.analysis":
        print("error: this is a repro.analysis report, not a stats "
              "snapshot; validate it with "
              "'python -m repro.analysis --check-report'", file=sys.stderr)
        return 2
    schema = payload.get("schema", STATS_SCHEMA)
    if schema != STATS_SCHEMA:
        print(f"error: stats payload declares schema {schema!r}; this "
              f"reader understands schema {STATS_SCHEMA} only (upgrade "
              "repro, or re-export the snapshot)", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(payload, top=args.top))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render runtime statistics reports.")
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser("report", help="render a saved stats snapshot")
    report.add_argument("--stats", required=True,
                        help="JSON stats file ('-' for stdin): Database."
                             "stats(), QueryService.stats(), a raw store "
                             "snapshot, or a JSONL export")
    report.add_argument("--top", type=int, default=10,
                        help="plans to show (default 10)")
    report.add_argument("--json", action="store_true",
                        help="echo the normalized payload as JSON instead "
                             "of tables")

    demo = sub.add_parser("demo", help="run a feedback workload and "
                                       "render its report (default)")
    demo.add_argument("--rounds", type=int, default=8,
                      help="workload rounds (default 8)")
    demo.add_argument("--top", type=int, default=10)
    demo.add_argument("--export", help="also write Database.stats() JSON here")
    demo.add_argument("--jsonl", help="also write the per-plan JSONL export")

    args = parser.parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command is None:
        args = demo.parse_args([])
    return _run_demo(args)


if __name__ == "__main__":
    sys.exit(main())
