"""Query observability: span tracing, metrics, export, slow-query log.

The engine's whole argument — and the paper's (Section 6, Table 3) —
rests on *measuring* where time and work go.  This package is the
measuring instrument, threaded through the session/compiler/optimizer/
executor stack and the physical operators:

* :mod:`repro.obs.trace` — a zero-dependency span tracer with a
  context-manager API (per-query span trees: compile → optimize →
  match/join/bind/finish, one child span per NoK scan and per
  inter-edge join).
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters, gauges and histograms fed from
  :class:`~repro.xmlkit.storage.ScanCounters` and from hooks in the
  physical operators.
* :mod:`repro.obs.export` — JSON-lines trace export, Prometheus-style
  text exposition, and a pretty span-tree renderer.
* :mod:`repro.obs.slowlog` — a configurable slow-query log used by
  :class:`~repro.engine.database.Database`.
* :mod:`repro.obs.statstore` — the runtime statistics store: per-plan
  observed latencies, work counters and NoK selectivities, the raw
  material for feedback-driven re-costing (``python -m repro.obs``
  renders it).

Nothing in here imports from the engine or operator layers, so every
layer may depend on ``repro.obs`` without cycles.
"""

from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, QueryTrace, Span, Tracer
from repro.obs.export import prometheus_text, render_span_tree, trace_to_jsonl
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.statstore import DemotionRecord, PlanStats, StatsStore

__all__ = [
    "Counter",
    "DemotionRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PlanStats",
    "QueryTrace",
    "REGISTRY",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StatsStore",
    "Tracer",
    "prometheus_text",
    "render_span_tree",
    "trace_to_jsonl",
]
