"""Slow-query log: record queries whose wall time crosses a threshold.

Databases live and die by this instrument; ours records, per offending
query, everything needed to reproduce and diagnose it offline: the
query text, the strategy the caller asked for, the plan the optimizer
chose, the elapsed wall time, and the full work-counter snapshot
(nodes scanned, comparisons, buffering) of the run.

The log is bounded (a ring of ``max_entries``) and can additionally
stream JSON lines to a file for post-mortem analysis::

    db = Database.from_xml(xml)
    db.configure_slow_log(threshold_ms=50.0, path="slow.jsonl")
    db.query("//a//b")          # recorded iff it took >= 50 ms
    for record in db.slow_log.entries:
        print(record.describe())
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import REGISTRY

__all__ = ["SlowQueryLog", "SlowQueryRecord"]

_SLOW = REGISTRY.counter("repro_slow_queries_total",
                         "Queries exceeding the slow-query threshold")


@dataclass
class SlowQueryRecord:
    """One slow query: what ran, how it was planned, what it cost.

    ``snapshot_id`` and ``deadline_state`` are filled by the serving
    layer (queries routed through
    :class:`~repro.serve.service.QueryService`): which immutable
    snapshot served the query, and where its deadline stood when the
    record was made — ``"none"`` (no deadline set), ``"ok"`` (finished
    within it) or ``"expired"`` (the query timed out).  ``client`` is
    the caller identity the network server attaches
    (``connection#request``), so remote slow queries are attributable
    to the connection that sent them.  Plain ``Database`` queries
    leave all three at their defaults.
    """

    query: str
    strategy: str
    plan: str
    elapsed_ms: float
    counters: dict[str, int] = field(default_factory=dict)
    timestamp: float = 0.0
    snapshot_id: int | None = None
    deadline_state: str = "none"
    client: str | None = None

    def to_json(self) -> str:
        return json.dumps({
            "timestamp": self.timestamp,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "query": self.query,
            "strategy": self.strategy,
            "plan": self.plan,
            "counters": self.counters,
            "snapshot_id": self.snapshot_id,
            "deadline_state": self.deadline_state,
            "client": self.client,
        })

    def describe(self) -> str:
        tags = ""
        if self.snapshot_id is not None:
            tags += f" snapshot={self.snapshot_id}"
        if self.deadline_state != "none":
            tags += f" deadline={self.deadline_state}"
        if self.client is not None:
            tags += f" client={self.client}"
        return (f"[{self.elapsed_ms:.1f} ms] strategy={self.strategy}{tags} "
                f"plan={self.plan!r} counters={self.counters} "
                f"query={self.query!r}")


class SlowQueryLog:
    """Bounded in-memory slow-query ring with optional JSONL streaming."""

    def __init__(self, threshold_ms: float = 100.0,
                 path: str | Path | None = None,
                 max_entries: int = 1000) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.threshold_ms = threshold_ms
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            # A misconfigured log directory must not break queries.
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.entries: list[SlowQueryRecord] = []

    def observe(self, query: str, strategy: str, plan: str,
                elapsed_ms: float,
                counters: dict[str, int] | None = None, *,
                snapshot_id: int | None = None,
                deadline_state: str = "none",
                client: str | None = None) -> SlowQueryRecord | None:
        """Record the query iff it crossed the threshold.

        Returns the record when one was made, ``None`` otherwise.
        """
        if elapsed_ms < self.threshold_ms:
            return None
        record = SlowQueryRecord(query=query, strategy=strategy, plan=plan,
                                 elapsed_ms=elapsed_ms,
                                 counters=dict(counters or {}),
                                 timestamp=time.time(),
                                 snapshot_id=snapshot_id,
                                 deadline_state=deadline_state,
                                 client=client)
        self.entries.append(record)
        if len(self.entries) > self.max_entries:
            del self.entries[:len(self.entries) - self.max_entries]
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        _SLOW.inc()
        return record

    def clear(self) -> None:
        self.entries.clear()

    def close(self) -> None:
        """Flush point for :meth:`Database.close`.

        Records stream to the JSONL file eagerly on :meth:`observe`
        (the file is opened and closed per record), so there is nothing
        buffered to write — this exists so the database's lifecycle has
        a single, explicit quiesce call.
        """

    def __len__(self) -> int:
        return len(self.entries)
