"""Exporters: span-tree rendering, JSON-lines traces, Prometheus text.

Three read-only views over the observability data:

* :func:`render_span_tree` — human-oriented indented tree with
  durations and attributes (what ``QueryTrace.pretty()`` prints);
* :func:`trace_to_jsonl` — one JSON object per span, parent-linked by
  id, for ingestion into external tooling;
* :func:`prometheus_text` — the text exposition format
  (``# HELP`` / ``# TYPE`` / samples) for a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Plus :func:`format_table`, the aligned-column renderer shared by
``Engine.explain_analyze`` (kept here, not in :mod:`repro.bench`, so
the engine does not import the benchmark harness).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.trace import QueryTrace, Span

__all__ = ["render_span_tree", "trace_to_jsonl", "prometheus_text",
           "format_table"]


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = [f"{key}={value}" for key, value in attrs.items()]
    return "  [" + " ".join(parts) + "]"


def render_span_tree(trace: QueryTrace) -> str:
    """Indented tree with per-span durations and attributes."""
    lines: list[str] = []

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            connector, child_prefix = "", ""
        else:
            connector = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(f"{connector}{span.name} ({span.duration_ms:.3f} ms)"
                     f"{_format_attrs(span.attrs)}")
        for index, child in enumerate(span.children):
            visit(child, child_prefix, index == len(span.children) - 1, False)

    for root in trace.roots:
        visit(root, "", True, True)
    return "\n".join(lines)


def trace_to_jsonl(trace: QueryTrace) -> str:
    """One JSON object per span (pre-order), parent-linked by span id."""
    lines: list[str] = []
    ids: dict[int, int] = {}

    def visit(span: Span, parent_id: int) -> None:
        span_id = len(ids) + 1
        ids[id(span)] = span_id
        lines.append(json.dumps({
            "id": span_id,
            "parent": parent_id or None,
            "name": span.name,
            "start_ns": span.start_ns,
            "duration_ns": span.duration_ns,
            "attrs": _jsonable(span.attrs),
        }, sort_keys=False))
        for child in span.children:
            visit(child, span_id)

    for root in trace.roots:
        visit(root, 0)
    return "\n".join(lines)


def _jsonable(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def _labels_text(key) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every metric in the registry."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            cells = metric.cells()
            if not cells:
                lines.append(f"{metric.name} 0")
                continue
            for key in sorted(cells):
                lines.append(f"{metric.name}{_labels_text(key)} "
                             f"{_num(cells[key])}")
        elif isinstance(metric, Histogram):
            for key in sorted(metric.cells()):
                counts, total, count = metric.cells()[key]
                for bound, cumulative in zip(metric.buckets, counts, strict=True):
                    bucket_key = key + (("le", _num(bound)),)
                    lines.append(f"{metric.name}_bucket{_labels_text(bucket_key)} "
                                 f"{cumulative}")
                inf_key = key + (("le", "+Inf"),)
                lines.append(f"{metric.name}_bucket{_labels_text(inf_key)} {count}")
                lines.append(f"{metric.name}_sum{_labels_text(key)} {_num(total)}")
                lines.append(f"{metric.name}_count{_labels_text(key)} {count}")
                # Pre-computed quantile estimates (strictly speaking a
                # summary-style sample, but scrape-side tooling is not
                # always there to run histogram_quantile()).
                for q in (0.5, 0.95, 0.99):
                    estimate = bucket_quantile(metric.buckets, counts,
                                               count, q)
                    if estimate is None:
                        continue
                    q_key = key + (("quantile", _num(q)),)
                    lines.append(f"{metric.name}_quantile"
                                 f"{_labels_text(q_key)} "
                                 f"{_num(round(estimate, 6))}")
    return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def format_table(rows: Sequence[dict[str, object]],
                 right_align: Sequence[str] = ()) -> str:
    """Aligned text table over uniform dict rows (explain-analyze view)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    right = set(right_align)

    def cell(column: str, text: object) -> str:
        if column in right:
            return str(text).rjust(widths[column])
        return str(text).ljust(widths[column])

    lines = [
        "  ".join(cell(c, c) for c in columns).rstrip(),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for row in rows:
        lines.append("  ".join(cell(c, row.get(c, "")) for c in columns).rstrip())
    return "\n".join(lines)
