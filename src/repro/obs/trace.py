"""Zero-dependency span tracer for per-query execution traces.

A :class:`Tracer` records a tree of timed :class:`Span` objects via a
context-manager API::

    tracer = Tracer()
    with tracer.span("query", strategy="auto") as q:
        with tracer.span("match-phase") as m:
            ...
            m.set(matches=12)
    trace = tracer.finish()
    print(trace.pretty())

Timing uses :func:`time.perf_counter_ns`; attributes are free-form
key/value pairs set at open time or any time before close.  The engine
threads one tracer through session → compiler → optimizer → executor,
so a finished :class:`QueryTrace` shows the full pipeline: compile,
optimize, then the four executor phases with one child span per NoK
scan and per inter-NoK join.

When tracing is off the engine passes :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op context manager — the instrumented
code pays one attribute lookup and one method call per span, nothing
else, which keeps the untraced hot path essentially free.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from typing import Any

__all__ = ["Span", "Tracer", "QueryTrace", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region of work with attributes and child spans."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start_ns: int = 0
        self.end_ns: int = 0
        self.children: list[Span] = []

    # -- attributes -----------------------------------------------------

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    # -- timing ---------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        if self.end_ns and self.start_ns:
            return self.end_ns - self.start_ns
        return 0

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    # -- traversal ------------------------------------------------------

    def walk(self, depth: int = 0) -> Iterator[tuple[int, Span]]:
        """Yield (depth, span) pairs in pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Span | None:
        """First span (pre-order) with the given name, or ``None``."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        """Every span (pre-order) with the given name."""
        return [s for _, s in self.walk() if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Span {self.name!r} {self.duration_ms:.3f}ms {self.attrs}>"


class _SpanContext:
    """Context manager opening one span; closes it even on exceptions."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        span.start_ns = time.perf_counter_ns()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


class Tracer:
    """Builds one span tree; reusable only after :meth:`finish`."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the currently active span."""
        return _SpanContext(self, Span(name, attrs))

    def current(self) -> Span | None:
        """The innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def finish(self) -> QueryTrace:
        """Seal the tree into a :class:`QueryTrace` and reset the tracer."""
        # Close any spans left open by an exception unwinding past them.
        now = time.perf_counter_ns()
        for span in self._stack:
            if not span.end_ns:
                span.end_ns = now
        trace = QueryTrace(self.roots)
        self.roots = []
        self._stack = []
        return trace


class QueryTrace:
    """A finished span tree attached to a query result."""

    def __init__(self, roots: list[Span]) -> None:
        self.roots = roots

    @property
    def root(self) -> Span | None:
        return self.roots[0] if self.roots else None

    def walk(self) -> Iterator[tuple[int, Span]]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list[Span]:
        out: list[Span] = []
        for root in self.roots:
            out.extend(root.find_all(name))
        return out

    @property
    def total_ms(self) -> float:
        return sum(root.duration_ms for root in self.roots)

    def pretty(self) -> str:
        """Indented tree rendering (see :mod:`repro.obs.export`)."""
        from repro.obs.export import render_span_tree

        return render_span_tree(self)

    def to_jsonl(self) -> str:
        """JSON-lines export (see :mod:`repro.obs.export`)."""
        from repro.obs.export import trace_to_jsonl

        return trace_to_jsonl(self)

    def __repr__(self) -> str:  # pragma: no cover
        n = sum(1 for _ in self.walk())
        return f"<QueryTrace {n} spans, {self.total_ms:.3f}ms>"


class _NullSpan:
    """Accepts attribute writes and traversal calls, records nothing."""

    __slots__ = ()

    name = "null"
    attrs: dict[str, Any] = {}
    start_ns = 0
    end_ns = 0
    children: list[Span] = []
    duration_ns = 0
    duration_ms = 0.0

    def set(self, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Drop-in tracer that records nothing (the untraced fast path)."""

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def current(self) -> None:
        return None

    def finish(self) -> QueryTrace:
        return QueryTrace([])


#: Shared no-op tracer used whenever ``trace=False``.
NULL_TRACER = NullTracer()
