"""Build a BlossomTree from a FLWOR expression (paper Section 3.1).

Construction rules
------------------
* Every for/let clause path contributes a fresh chain of vertices from
  its anchor — the document root (``doc(...)`` / absolute paths) or the
  vertex of the variable it dereferences (``$v/...``).  Chains are never
  shared between clauses: sharing would let one clause's mandatory-match
  pruning corrupt another clause's binding (e.g. an ``f``-pruned chain
  shrinking a ``let`` sequence).
* Edge modes: for-clause steps are mandatory (``f``), let-clause steps
  optional (``l``) — see the mode-policy note in
  :mod:`repro.pattern.blossom`.
* Step predicates become: value predicates on the vertex (comparisons
  against literals on ``.``, ``text()`` or ``@attr``), existential
  mandatory subtrees (bare relative paths), or a combination (path
  compared to a literal).  Anything else (positional predicates,
  ``or``-expressions over paths, functions) is unsupported by the
  pattern matcher and raises :class:`~repro.errors.CompileError`; the
  engine then falls back to the navigational evaluator.
* Top-level ``and``-conjuncts of the where clause become crossing edges
  (``<<``, ``>>``, value comparisons, ``deep-equal``, their negations)
  when both sides are variable-rooted paths; single-variable comparisons
  against literals become mandatory pruning chains when the variable is
  for-bound.  Remaining conjuncts go to ``residual_where``.  The
  executor re-verifies the complete where clause per tuple, so all of
  this is sound pruning, never a semantic shortcut.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.xpath.ast import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    Conditional,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NotExpr,
    NumberLiteral,
    Quantified,
    RootContext,
    RootDoc,
    RootVariable,
    Step,
    TextTest,
)
from repro.xquery.ast import FLWOR, ForClause, LetClause
from repro.pattern.blossom import (
    MODE_MANDATORY,
    MODE_OPTIONAL,
    BlossomTree,
    BlossomVertex,
)

__all__ = ["build_blossom_tree", "build_from_path", "path_as_flwor"]

#: Variable name used when a bare path query is wrapped in a FLWOR.
RESULT_VAR = "#result"

_VALUE_OPS = ("=", "!=", "<", "<=", ">", ">=")
_ORDER_OPS = ("<<", ">>", "is", "isnot")


def path_as_flwor(path: LocationPath) -> FLWOR:
    """Wrap a bare path query as ``for $#result in <path> return $#result``."""
    result_ref = LocationPath(RootVariable(RESULT_VAR), ())
    return FLWOR((ForClause(RESULT_VAR, path),), None, (), result_ref)


def build_from_path(path: LocationPath) -> BlossomTree:
    """Build the BlossomTree of a bare path query."""
    return build_blossom_tree(path_as_flwor(path))


def build_blossom_tree(flwor: FLWOR,
                       external: frozenset[str] = frozenset()) -> BlossomTree:
    """Translate a FLWOR expression into a BlossomTree.

    ``external`` names the query's external ``$parameters`` (values
    supplied at execution time, unknown at compile time).  Where-clause
    conjuncts that mention them cannot become crossing edges or pruning
    chains — their values do not exist yet — so they are routed to
    ``residual_where``, which the executor re-verifies per tuple with
    the actual bindings merged in.  A *clause* rooted at an external
    parameter has no pattern-tree anchor at all and raises
    :class:`~repro.errors.CompileError` (navigational fallback).

    Raises :class:`~repro.errors.CompileError` when the expression uses
    constructs outside the pattern-matching subset (the engine catches
    this and falls back to navigational evaluation).
    """
    builder = _Builder(external)
    for clause in flwor.clauses:
        if isinstance(clause, ForClause):
            builder.add_clause_path(clause.var, clause.source, "for")
        else:
            assert isinstance(clause, LetClause)
            builder.add_clause_path(clause.var, clause.source, "let")
    if flwor.where is not None:
        builder.add_where(flwor.where)
    builder.finalize()
    return builder.tree


class _Builder:
    def __init__(self, external: frozenset[str] = frozenset()) -> None:
        self.tree = BlossomTree()
        self._external = external
        #: document uri -> its #root vertex (shared so all absolute paths
        #: over one document form a single interconnected pattern tree,
        #: enabling the merged-scan optimization of Section 4.2).
        self._doc_roots: dict[str, BlossomVertex] = {}

    # ------------------------------------------------------------------
    # Clause paths.
    # ------------------------------------------------------------------

    def add_clause_path(self, var: str, path: LocationPath, kind: str) -> None:
        mode = MODE_MANDATORY if kind == "for" else MODE_OPTIONAL
        anchor = self._anchor_vertex(path)
        leaf = self._extend_chain(anchor, path.steps, mode)
        if leaf is anchor and isinstance(path.root, RootVariable):
            # ``let $y := $x`` — aliasing a variable to another vertex.
            raise CompileError("variable aliasing without steps is not "
                               "supported by the pattern matcher")
        self.tree.bind_variable(var, leaf, kind)

    def _anchor_vertex(self, path: LocationPath) -> BlossomVertex:
        root = path.root
        if isinstance(root, RootDoc):
            return self._doc_root(root.uri)
        if isinstance(root, RootVariable):
            vertex = self.tree.var_vertex.get(root.name)
            if vertex is None:
                if root.name in self._external:
                    raise CompileError(
                        f"clause rooted at external parameter ${root.name} "
                        "has no pattern-tree anchor (navigational fallback "
                        "required)")
                raise CompileError(f"path references unbound variable ${root.name}")
            return vertex
        assert isinstance(root, RootContext)
        if not root.absolute:
            raise CompileError("relative clause paths need a context item, "
                               "which the pattern matcher does not model")
        return self._doc_root("")

    def _doc_root(self, uri: str) -> BlossomVertex:
        vertex = self._doc_roots.get(uri)
        if vertex is None:
            vertex = self.tree.new_root("#root")
            vertex.returning = True
            setattr(vertex, "doc_uri", uri)
            self._doc_roots[uri] = vertex
        return vertex

    # ------------------------------------------------------------------
    # Steps.
    # ------------------------------------------------------------------

    def _extend_chain(self, anchor: BlossomVertex, steps: tuple[Step, ...],
                      mode: str) -> BlossomVertex:
        """Append a fresh vertex chain for ``steps`` below ``anchor``."""
        current = anchor
        for step in steps:
            current = self._apply_step(current, step, mode)
        return current

    def _apply_step(self, parent: BlossomVertex, step: Step, mode: str) -> BlossomVertex:
        axis = step.axis
        if axis == "self":
            # ``.`` — predicates attach to the current vertex.
            for predicate in step.predicates:
                self._attach_predicate(parent, predicate, mode)
            return parent
        if axis not in ("child", "descendant", "following-sibling"):
            raise CompileError(f"axis {axis!r} is outside the pattern-matching "
                               "subset (navigational fallback required)")
        if not isinstance(step.test, NameTest):
            raise CompileError(f"node test {step.test} is outside the "
                               "pattern-matching subset")

        if axis == "following-sibling":
            edge_in = parent.parent_edge
            if edge_in is None or edge_in.axis != "child":
                # Sibling constraints are only local when the current
                # vertex is anchored by a child edge; //a/following-
                # sibling::b would need the sibling's parent to be "any
                # a-ancestor", which is not a NoK-expressible shape.
                raise CompileError("following-sibling is only supported "
                                   "after a child step")
            grand = edge_in.parent
            vertex = self.tree.new_vertex(step.test.name)
            self.tree.add_edge(grand, vertex, "child", mode)
            setattr(vertex, "after_vid", parent.vid)
        else:
            vertex = self.tree.new_vertex(step.test.name)
            self.tree.add_edge(parent, vertex, axis, mode)

        for predicate in step.predicates:
            self._attach_predicate(vertex, predicate, mode)
        return vertex

    # ------------------------------------------------------------------
    # Step predicates.
    # ------------------------------------------------------------------

    def _attach_predicate(self, vertex: BlossomVertex, predicate: Expr,
                          mode: str) -> None:
        """Translate one step predicate onto ``vertex``.

        The predicate was written in a context where ``vertex``'s match
        is the context node; existence requirements inside it are always
        mandatory relative to the vertex regardless of the clause mode.
        """
        if isinstance(predicate, BooleanExpr) and predicate.op == "and":
            for operand in predicate.operands:
                self._attach_predicate(vertex, operand, mode)
            return
        if isinstance(predicate, LocationPath):
            # Existential: [p] requires a match of p below the vertex.
            self._build_existential(vertex, predicate, value_pred=None)
            return
        if isinstance(predicate, Comparison) and predicate.op in _VALUE_OPS:
            handled = self._attach_comparison(vertex, predicate)
            if handled:
                return
        if isinstance(predicate, NumberLiteral):
            raise CompileError("positional predicates are outside the "
                               "pattern-matching subset")
        if _mentions_position(predicate):
            raise CompileError("position()/last() predicates are outside the "
                               "pattern-matching subset")
        if _mentions_variable(predicate):
            raise CompileError("variable references inside step predicates are "
                               "outside the pattern-matching subset")
        # Anything else (boolean mixes, functions, negated existence) is
        # checked navigationally per candidate node during NoK matching;
        # the full XPath evaluator runs with the candidate as context.
        vertex.value_predicates.append(predicate)

    def _attach_comparison(self, vertex: BlossomVertex, cmp: Comparison) -> bool:
        """Handle ``path op literal`` predicates; returns True if consumed."""
        path, literal, op = _split_path_literal(cmp)
        if path is None or literal is None:
            return False
        if not isinstance(path.root, RootContext) or path.root.absolute:
            return False
        if not path.steps:
            # [. op literal]
            vertex.value_predicates.append(cmp)
            return True
        if len(path.steps) == 1 and path.steps[0].axis in ("attribute", "self") \
                and not path.steps[0].predicates:
            vertex.value_predicates.append(cmp)
            return True
        if len(path.steps) == 1 and isinstance(path.steps[0].test, TextTest) \
                and path.steps[0].axis == "child" and not path.steps[0].predicates:
            vertex.value_predicates.append(cmp)
            return True
        # [a/b op literal] — existential subtree with a value-constrained leaf.
        leaf_pred = Comparison(op, LocationPath(RootContext(False), ()), literal) \
            if _path_is_left(cmp) else \
            Comparison(op, literal, LocationPath(RootContext(False), ()))
        self._build_existential(vertex, path, value_pred=leaf_pred)
        return True

    def _build_existential(self, vertex: BlossomVertex, path: LocationPath,
                           value_pred: Expr | None) -> None:
        """Build a mandatory, non-returning subtree below ``vertex``."""
        if not isinstance(path.root, RootContext) or path.root.absolute:
            raise CompileError("predicate paths must be relative to the "
                               "context node")
        leaf = self._extend_chain(vertex, path.steps, MODE_MANDATORY)
        if leaf is vertex:
            raise CompileError("empty predicate path")
        if value_pred is not None:
            leaf.value_predicates.append(value_pred)

    # ------------------------------------------------------------------
    # Where clause.
    # ------------------------------------------------------------------

    def add_where(self, where: Expr) -> None:
        for conjunct in _flatten_and(where):
            self._add_conjunct(conjunct)

    def _add_conjunct(self, conjunct: Expr) -> None:
        tree = self.tree
        inner, negated = _strip_not(conjunct)

        if isinstance(inner, FunctionCall) and inner.name == "deep-equal" \
                and len(inner.args) == 2:
            if isinstance(inner.args[0], LocationPath) \
                    and isinstance(inner.args[1], LocationPath):
                # One endpoint may resolve (building its chain) while the
                # other does not; abandon the pair atomically or the
                # half-built chain stays behind (rule BT006).
                mark = tree.checkpoint()
                u = self._where_endpoint(inner.args[0])
                v = self._where_endpoint(inner.args[1])
                if u is not None and v is not None:
                    tree.add_crossing(u, v, "deep-equal", negated)
                    return
                tree.rollback(mark)
            tree.residual_where.append(conjunct)
            return

        if isinstance(inner, Comparison):
            op = inner.op
            if (op in _ORDER_OPS or op in _VALUE_OPS) \
                    and isinstance(inner.left, LocationPath) \
                    and isinstance(inner.right, LocationPath):
                mark = tree.checkpoint()
                u = self._where_endpoint(inner.left)
                v = self._where_endpoint(inner.right)
                if u is not None and v is not None:
                    tree.add_crossing(u, v, op, negated)
                    return
                tree.rollback(mark)
            if op in _VALUE_OPS and not negated:
                if self._try_prune_literal(inner):
                    # Conjunct kept in residual_where too: the crossing
                    # machinery only prunes, the executor re-verifies.
                    return
        tree.residual_where.append(conjunct)

    def _where_endpoint(self, expr: Expr) -> BlossomVertex | None:
        """Resolve a where-side expression to a vertex (building an
        optional chain for ``$v/steps`` forms).  None if not a
        variable-rooted path."""
        if not isinstance(expr, LocationPath):
            return None
        if not isinstance(expr.root, RootVariable):
            return None
        anchor = self.tree.var_vertex.get(expr.root.name)
        if anchor is None:
            if expr.root.name in self._external:
                return None    # value unknown until execute(): residual
            raise CompileError(f"where references unbound variable ${expr.root.name}")
        if not expr.steps:
            return anchor
        mark = self.tree.checkpoint()
        try:
            leaf = self._extend_chain(anchor, expr.steps, MODE_OPTIONAL)
        except CompileError:
            # An untranslatable step may fail mid-chain; drop the
            # vertices already built or they survive as inert optional
            # leaves (rule BT006) and the conjunct is checked twice.
            self.tree.rollback(mark)
            return None
        leaf.returning = True
        return leaf

    def _try_prune_literal(self, cmp: Comparison) -> bool:
        """``$v/steps op literal`` where $v is for-bound: add a mandatory
        pruning chain with the value constraint on its leaf."""
        path, literal, _ = _split_path_literal(cmp)
        if path is None or literal is None:
            return False
        if not isinstance(path.root, RootVariable):
            return False
        anchor = self.tree.var_vertex.get(path.root.name)
        if anchor is None:
            if path.root.name in self._external:
                return False   # value unknown until execute(): residual
            raise CompileError(f"where references unbound variable ${path.root.name}")
        if anchor.var_kinds.get(path.root.name) != "for":
            return False  # pruning a let-bound sequence would change it
        if not path.steps:
            anchor.value_predicates.append(
                Comparison(cmp.op,
                           LocationPath(RootContext(False), ()) if _path_is_left(cmp)
                           else literal,
                           literal if _path_is_left(cmp)
                           else LocationPath(RootContext(False), ())))
            self.tree.residual_where.append(cmp)
            return True
        leaf_pred = (Comparison(cmp.op, LocationPath(RootContext(False), ()), literal)
                     if _path_is_left(cmp)
                     else Comparison(cmp.op, literal, LocationPath(RootContext(False), ())))
        mark = self.tree.checkpoint()
        try:
            self._build_existential(anchor, LocationPath(RootContext(False), path.steps),
                                    value_pred=leaf_pred)
        except CompileError:
            # A partially built *mandatory* chain would keep pruning
            # tuples even though the conjunct fell back to residual
            # re-verification; roll it back (rule BT006).
            self.tree.rollback(mark)
            return False
        self.tree.residual_where.append(cmp)
        return True

    # ------------------------------------------------------------------
    # Finalization.
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Mark which vertices must be kept in NestedList output."""
        tree = self.tree
        # Returning-ness propagates up: any vertex with a returning
        # descendant must be kept so projections can navigate to it.
        changed = True
        while changed:
            changed = False
            for edge in tree.tree_edges:
                if edge.child.returning and not edge.parent.returning:
                    edge.parent.returning = True
                    changed = True


# ----------------------------------------------------------------------
# Expression shape helpers.
# ----------------------------------------------------------------------

def _flatten_and(expr: Expr) -> list[Expr]:
    if isinstance(expr, BooleanExpr) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_flatten_and(operand))
        return out
    return [expr]


def _strip_not(expr: Expr) -> tuple[Expr, bool]:
    negated = False
    while True:
        if isinstance(expr, NotExpr):
            expr = expr.operand
            negated = not negated
        elif isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
            expr = expr.args[0]
            negated = not negated
        else:
            return expr, negated


def _split_path_literal(cmp: Comparison):
    """Return (path, literal, op) when one side is a path and the other a
    literal; (None, None, op) otherwise."""
    literal_types = (Literal, NumberLiteral)
    if isinstance(cmp.left, LocationPath) and isinstance(cmp.right, literal_types):
        return cmp.left, cmp.right, cmp.op
    if isinstance(cmp.right, LocationPath) and isinstance(cmp.left, literal_types):
        return cmp.right, cmp.left, cmp.op
    return None, None, cmp.op


def _path_is_left(cmp: Comparison) -> bool:
    return isinstance(cmp.left, LocationPath)


def _mentions_position(expr: Expr) -> bool:
    if isinstance(expr, Quantified):
        return _mentions_position(expr.source) or _mentions_position(expr.satisfies)
    if isinstance(expr, Conditional):
        return any(_mentions_position(e) for e in
                   (expr.condition, expr.then_branch, expr.else_branch))
    return _mentions_position_core(expr)


def _mentions_position_core(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name in ("position", "last"):
            return True
        return any(_mentions_position(a) for a in expr.args)
    if isinstance(expr, (BooleanExpr,)):
        return any(_mentions_position(o) for o in expr.operands)
    if isinstance(expr, NotExpr):
        return _mentions_position(expr.operand)
    if isinstance(expr, (Comparison, Arithmetic)):
        return _mentions_position(expr.left) or _mentions_position(expr.right)
    if isinstance(expr, LocationPath):
        return any(any(_mentions_position(p) for p in s.predicates) for s in expr.steps)
    return False


def _mentions_variable_ext(expr: Expr) -> bool:
    if isinstance(expr, Quantified):
        # The quantifier binds its own variable; references to it are
        # fine, but its source/satisfies may still leak outer variables.
        return _mentions_variable(expr.source) or _mentions_variable(expr.satisfies)
    if isinstance(expr, Conditional):
        return any(_mentions_variable(e) for e in
                   (expr.condition, expr.then_branch, expr.else_branch))
    return False


def _mentions_variable(expr: Expr) -> bool:
    if isinstance(expr, (Quantified, Conditional)):
        return _mentions_variable_ext(expr)
    if isinstance(expr, LocationPath):
        if isinstance(expr.root, RootVariable):
            return True
        return any(any(_mentions_variable(p) for p in s.predicates) for s in expr.steps)
    if isinstance(expr, FunctionCall):
        return any(_mentions_variable(a) for a in expr.args)
    if isinstance(expr, BooleanExpr):
        return any(_mentions_variable(o) for o in expr.operands)
    if isinstance(expr, NotExpr):
        return _mentions_variable(expr.operand)
    if isinstance(expr, (Comparison, Arithmetic)):
        return _mentions_variable(expr.left) or _mentions_variable(expr.right)
    return False


def _is_local_value_expr(expr: Expr) -> bool:
    """True when the expression only inspects the context element's own
    text, attributes or direct text children — safe to evaluate as a
    vertex value predicate during NoK matching."""
    if isinstance(expr, (Literal, NumberLiteral)):
        return True
    if isinstance(expr, LocationPath):
        if not isinstance(expr.root, RootContext) or expr.root.absolute:
            return False
        for step in expr.steps:
            if step.predicates:
                return False
            if step.axis == "attribute":
                continue
            if step.axis in ("child", "self") and isinstance(step.test, TextTest):
                continue
            if step.axis == "self" and isinstance(step.test, NameTest):
                continue
            return False
        return True
    if isinstance(expr, (Comparison, Arithmetic)):
        return _is_local_value_expr(expr.left) and _is_local_value_expr(expr.right)
    if isinstance(expr, BooleanExpr):
        return all(_is_local_value_expr(o) for o in expr.operands)
    if isinstance(expr, NotExpr):
        return _is_local_value_expr(expr.operand)
    if isinstance(expr, FunctionCall):
        if expr.name in ("contains", "starts-with", "string-length", "normalize-space",
                         "string", "number", "true", "false", "concat"):
            return all(_is_local_value_expr(a) for a in expr.args)
        return False
    return False
