"""Pattern layer: BlossomTree, construction, decomposition, Dewey IDs."""

from repro.pattern.blossom import (
    MODE_MANDATORY,
    MODE_OPTIONAL,
    BlossomTree,
    BlossomVertex,
    CrossingEdge,
    TreeEdge,
)
from repro.pattern.artifact import PatternArtifacts, prepare_artifacts
from repro.pattern.build import build_blossom_tree, build_from_path, path_as_flwor
from repro.pattern.decompose import Decomposition, InterEdge, NoKTree, decompose
from repro.pattern.dewey import DeweyAssignment, assign_dewey

__all__ = [
    "MODE_MANDATORY",
    "MODE_OPTIONAL",
    "BlossomTree",
    "BlossomVertex",
    "CrossingEdge",
    "Decomposition",
    "DeweyAssignment",
    "InterEdge",
    "NoKTree",
    "PatternArtifacts",
    "TreeEdge",
    "assign_dewey",
    "build_blossom_tree",
    "build_from_path",
    "decompose",
    "path_as_flwor",
    "prepare_artifacts",
]
