"""Dewey ID assignment for returning nodes (paper Sections 3.2 / 4.1).

The paper addresses returning nodes with Dewey IDs assigned over the
*returning tree*: the tree formed by the returning vertices only, where
two returning vertices are connected iff one is the closest returning
ancestor of the other in the BlossomTree.  Because a BlossomTree can
have several pattern roots, an artificial super-root ``(1,)`` is
introduced and the pattern roots become ``(1, 1)``, ``(1, 2)``, ... in
declaration order (Section 3.3's construction for Example 4).

Dewey IDs are assigned *globally* — on the BlossomTree, not per NoK —
which is the precondition of Theorem 2's order-preservation result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pattern.blossom import BlossomTree, BlossomVertex

__all__ = ["DeweyAssignment", "assign_dewey"]

Dewey = tuple[int, ...]


@dataclass
class DeweyAssignment:
    """Bidirectional mapping between returning vertices and Dewey IDs."""

    of_vertex: dict[int, Dewey] = field(default_factory=dict)   # vid -> dewey
    vertex_of: dict[Dewey, BlossomVertex] = field(default_factory=dict)
    #: closest returning ancestor (vid -> vid), for returning-tree walks
    returning_parent: dict[int, int | None] = field(default_factory=dict)

    def dewey(self, vertex: BlossomVertex) -> Dewey:
        return self.of_vertex[vertex.vid]

    def vertex(self, dewey: Dewey) -> BlossomVertex:
        return self.vertex_of[dewey]

    def variable_dewey(self, tree: BlossomTree, name: str) -> Dewey:
        return self.of_vertex[tree.var_vertex[name].vid]

    def format(self, dewey: Dewey) -> str:
        return ".".join(str(part) for part in dewey)


def assign_dewey(tree: BlossomTree) -> DeweyAssignment:
    """Assign Dewey IDs to every returning vertex of the BlossomTree."""
    assignment = DeweyAssignment()
    super_root: Dewey = (1,)
    for ordinal, root in enumerate(tree.roots, start=1):
        _assign_subtree(tree, root, super_root + (ordinal,), None, assignment)
    return assignment


def _assign_subtree(tree: BlossomTree, vertex: BlossomVertex, dewey: Dewey,
                    returning_parent: int | None,
                    assignment: DeweyAssignment) -> None:
    """Assign ``dewey`` to ``vertex`` (assumed returning or a root) and
    recurse into the closest returning descendants."""
    assignment.of_vertex[vertex.vid] = dewey
    assignment.vertex_of[dewey] = vertex
    assignment.returning_parent[vertex.vid] = returning_parent

    ordinal = 0
    for descendant in _closest_returning_descendants(vertex):
        ordinal += 1
        _assign_subtree(tree, descendant, dewey + (ordinal,), vertex.vid, assignment)


def _closest_returning_descendants(vertex: BlossomVertex) -> list[BlossomVertex]:
    """Returning vertices below ``vertex`` with no returning vertex
    strictly between (the returning-tree children)."""
    found: list[BlossomVertex] = []
    stack = [edge.child for edge in reversed(vertex.child_edges)]
    while stack:
        node = stack.pop()
        if node.returning:
            found.append(node)
            continue
        for edge in reversed(node.child_edges):
            stack.append(edge.child)
    return found
