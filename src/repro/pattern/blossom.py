"""BlossomTree: the paper's formalism (Definition 1).

A BlossomTree is an annotated directed graph of interconnected pattern
trees.  Vertices carry a tag-name test, optional value constraints and
an optional variable (a *blossom*).  Tree edges carry an axis and a
matching mode: ``"f"`` (mandatory — a valid mapping needs a non-empty
image) or ``"l"`` (optional — the image may be the empty sequence).
Crossing edges carry structural (``<<``, ``>>``), value-based (``=``,
``!=``) or mixed (``deep-equal``) relationships contributed by the
where clause.

Mode policy (a deliberate, documented refinement of the paper): the
paper annotates edges "f" for for-clauses and "l" for let-clauses and
draws where/return-contributed edges as "f".  We derive modes from
binding semantics instead — for-clause steps are "f" (an empty step
kills the tuple), while let/where/order-by/return steps are "l"
(XQuery's empty-sequence semantics mean e.g. ``not($a/t = $b/t)`` is
*satisfied* by a missing ``t``).  This keeps BlossomTree matching
exactly equivalent to the naive FLWOR semantics on all documents, not
just those where the optional nodes happen to exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.xpath.ast import Expr

__all__ = [
    "MODE_MANDATORY",
    "MODE_OPTIONAL",
    "BlossomVertex",
    "TreeEdge",
    "CrossingEdge",
    "BlossomTree",
    "TreeCheckpoint",
]

MODE_MANDATORY = "f"
MODE_OPTIONAL = "l"


@dataclass
class BlossomVertex:
    """One vertex of a BlossomTree.

    Attributes
    ----------
    vid:
        Dense vertex id within the owning BlossomTree.
    name:
        Tag-name test (``"*"`` matches any element).  The special name
        ``"#root"`` marks a pattern-tree root that matches the document
        node itself.
    value_predicates:
        Local value constraints from path predicates — XPath expressions
        evaluated with a candidate element as context node (e.g.
        ``. = "Smith"`` or ``@year = "2000"``).  These stay *inside* the
        NoK pattern tree: they never force an edge cut.
    variables:
        Variable names bound to this vertex (the vertex is a *blossom*
        when non-empty).  Several variables may share a vertex when
        their defining paths coincide.
    var_kinds:
        For each variable in ``variables``: ``"for"`` (bound to a single
        node per tuple) or ``"let"`` (bound to the whole sequence).
    returning:
        Whether matches of this vertex must be kept in the NestedList
        output (blossoms, join endpoints and output vertices are
        returning; purely existential vertices are not).
    """

    vid: int
    name: str
    value_predicates: list[Expr] = field(default_factory=list)
    variables: list[str] = field(default_factory=list)
    var_kinds: dict[str, str] = field(default_factory=dict)
    returning: bool = False

    # Filled in by BlossomTree bookkeeping:
    parent_edge: TreeEdge | None = None
    child_edges: list[TreeEdge] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent_edge is None

    @property
    def is_blossom(self) -> bool:
        return bool(self.variables)

    def matches_tag(self, tag: str | None) -> bool:
        """Tag-name test (value predicates are checked separately)."""
        if self.name == "#root":
            return False  # roots match the document node, not elements
        return self.name == "*" or self.name == tag

    def children(self) -> list[BlossomVertex]:
        return [e.child for e in self.child_edges]

    def __repr__(self) -> str:  # pragma: no cover
        mark = f" ${','.join(self.variables)}" if self.variables else ""
        return f"<V{self.vid} {self.name}{mark}>"


@dataclass
class TreeEdge:
    """A tree edge ``parent --axis,mode--> child``."""

    parent: BlossomVertex
    child: BlossomVertex
    axis: str          # "child", "descendant", "following-sibling", ...
    mode: str          # MODE_MANDATORY or MODE_OPTIONAL

    @property
    def is_local(self) -> bool:
        """Local edges stay inside a NoK pattern tree (Section 2.1)."""
        return self.axis in ("child", "self", "attribute", "following-sibling")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<E {self.parent.vid}-{self.axis},{self.mode}->{self.child.vid}>"


@dataclass
class CrossingEdge:
    """A crossing edge from a where-clause relationship.

    ``relation`` is one of ``<<``, ``>>``, ``is``, ``isnot`` (structural),
    ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=`` (value-based, existential
    over the two projected sequences) or ``deep-equal`` (mixed).
    ``negated`` wraps the relation in ``not(...)``.

    Crossing edges are *pruning* devices: the executor re-verifies the
    full where clause per tuple, so a crossing edge may be conservative
    (keep when unsure) without affecting correctness.
    """

    u: BlossomVertex
    v: BlossomVertex
    relation: str
    negated: bool = False

    @property
    def kind(self) -> str:
        if self.relation in ("<<", ">>", "is", "isnot"):
            return "structural"
        if self.relation == "deep-equal":
            return "mixed"
        return "value"

    def __repr__(self) -> str:  # pragma: no cover
        op = f"not {self.relation}" if self.negated else self.relation
        return f"<X {self.u.vid} {op} {self.v.vid}>"


@dataclass(frozen=True)
class TreeCheckpoint:
    """A snapshot of a BlossomTree's construction state.

    Taken with :meth:`BlossomTree.checkpoint` before a speculative
    build (a where-endpoint chain, a pruning subtree) and restored with
    :meth:`BlossomTree.rollback` when the build turns out to be
    untranslatable — otherwise the abandoned vertices stay behind as
    dead weight (analyzer rule BT006).
    """

    n_vertices: int
    n_tree_edges: int
    n_crossing_edges: int
    n_residual: int
    #: value-predicate count per then-existing vertex (a ``self`` step
    #: can attach predicates to a pre-checkpoint vertex).
    predicate_counts: tuple[int, ...]


class BlossomTree:
    """The annotated graph: vertices, tree edges, crossing edges, roots."""

    def __init__(self) -> None:
        self.vertices: list[BlossomVertex] = []
        self.roots: list[BlossomVertex] = []
        self.tree_edges: list[TreeEdge] = []
        self.crossing_edges: list[CrossingEdge] = []
        #: variable name -> vertex bound to it
        self.var_vertex: dict[str, BlossomVertex] = {}
        #: where-clause conjuncts not captured by crossing edges or
        #: value predicates; re-checked per tuple by the executor.
        self.residual_where: list[Expr] = []

    # ------------------------------------------------------------------
    # Construction API (used by the builder).
    # ------------------------------------------------------------------

    def new_vertex(self, name: str) -> BlossomVertex:
        vertex = BlossomVertex(len(self.vertices), name)
        self.vertices.append(vertex)
        return vertex

    def new_root(self, name: str = "#root") -> BlossomVertex:
        vertex = self.new_vertex(name)
        self.roots.append(vertex)
        return vertex

    def add_edge(self, parent: BlossomVertex, child: BlossomVertex,
                 axis: str, mode: str) -> TreeEdge:
        if child.parent_edge is not None:
            raise ValueError(f"vertex {child!r} already has a parent")
        edge = TreeEdge(parent, child, axis, mode)
        parent.child_edges.append(edge)
        child.parent_edge = edge
        self.tree_edges.append(edge)
        return edge

    def add_crossing(self, u: BlossomVertex, v: BlossomVertex, relation: str,
                     negated: bool = False) -> CrossingEdge:
        edge = CrossingEdge(u, v, relation, negated)
        u.returning = True
        v.returning = True
        self.crossing_edges.append(edge)
        return edge

    def bind_variable(self, name: str, vertex: BlossomVertex, kind: str) -> None:
        """Attach a for/let variable to a vertex, making it a blossom."""
        if name in self.var_vertex:
            raise ValueError(f"variable ${name} bound twice")
        vertex.variables.append(name)
        vertex.var_kinds[name] = kind
        vertex.returning = True
        self.var_vertex[name] = vertex

    # ------------------------------------------------------------------
    # Speculative construction.
    # ------------------------------------------------------------------

    def checkpoint(self) -> TreeCheckpoint:
        """Snapshot the tree before a speculative chain build."""
        return TreeCheckpoint(
            len(self.vertices), len(self.tree_edges),
            len(self.crossing_edges), len(self.residual_where),
            tuple(len(v.value_predicates) for v in self.vertices))

    def rollback(self, mark: TreeCheckpoint) -> None:
        """Undo everything added since ``mark`` was taken.

        Removes the vertices, tree edges, crossing edges, residual
        conjuncts and value predicates created after the checkpoint and
        restores parent/child bookkeeping, so an abandoned speculative
        build leaves no trace (vertex ids stay dense because builds
        only append).
        """
        for edge in self.tree_edges[mark.n_tree_edges:]:
            edge.parent.child_edges = [
                e for e in edge.parent.child_edges if e is not edge]
            edge.child.parent_edge = None
        del self.tree_edges[mark.n_tree_edges:]
        dropped = {id(v) for v in self.vertices[mark.n_vertices:]}
        del self.vertices[mark.n_vertices:]
        self.roots = [r for r in self.roots if id(r) not in dropped]
        self.var_vertex = {name: v for name, v in self.var_vertex.items()
                           if id(v) not in dropped}
        del self.crossing_edges[mark.n_crossing_edges:]
        del self.residual_where[mark.n_residual:]
        for vertex, count in zip(self.vertices, mark.predicate_counts,
                                 strict=True):
            del vertex.value_predicates[count:]

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def iter_subtree(self, root: BlossomVertex) -> Iterator[BlossomVertex]:
        """Depth-first iteration of a vertex's pattern (sub)tree."""
        stack = [root]
        while stack:
            vertex = stack.pop()
            yield vertex
            for edge in reversed(vertex.child_edges):
                stack.append(edge.child)

    def pattern_root_of(self, vertex: BlossomVertex) -> BlossomVertex:
        node = vertex
        while node.parent_edge is not None:
            node = node.parent_edge.parent
        return node

    def blossoms(self) -> list[BlossomVertex]:
        return [v for v in self.vertices if v.is_blossom]

    def mandatory_path_to_root(self, vertex: BlossomVertex) -> bool:
        """True iff every edge from the vertex up to its root is mode f."""
        node = vertex
        while node.parent_edge is not None:
            if node.parent_edge.mode != MODE_MANDATORY:
                return False
            node = node.parent_edge.parent
        return True

    def describe(self) -> str:
        """Multi-line textual rendering (tests and the examples use it)."""
        lines: list[str] = []
        for root in self.roots:
            self._describe_vertex(root, 0, lines)
        for edge in self.crossing_edges:
            op = f"not({edge.relation})" if edge.negated else edge.relation
            lines.append(f"crossing: V{edge.u.vid} {op} V{edge.v.vid}")
        for expr in self.residual_where:
            lines.append(f"residual: {expr}")
        return "\n".join(lines)

    def _describe_vertex(self, vertex: BlossomVertex, depth: int,
                         lines: list[str]) -> None:
        pad = "  " * depth
        variables = f" ${{{','.join(vertex.variables)}}}" if vertex.variables else ""
        preds = "".join(f"[{p}]" for p in vertex.value_predicates)
        ret = " (ret)" if vertex.returning else ""
        edge = vertex.parent_edge
        arrow = f"-{edge.axis},{edge.mode}-> " if edge else ""
        lines.append(f"{pad}{arrow}V{vertex.vid} {vertex.name}{preds}{variables}{ret}")
        for child_edge in vertex.child_edges:
            self._describe_vertex(child_edge.child, depth + 1, lines)
