"""Decompose a BlossomTree into interconnected NoK pattern trees.

This is Algorithm 1 of the paper: a depth-first traversal that keeps
local-axis edges (``/``, ``following-sibling``) inside the current NoK
pattern tree and cuts global-axis edges (``//`` etc.), making each cut
edge's child vertex the root of a new NoK tree.  The cut edges become
the *inter-NoK edges* that the structural-join operators (pipelined,
bounded nested-loop, TwigStack) later evaluate.

Value-based crossing edges never appear as tree edges (the builder puts
them in ``BlossomTree.crossing_edges``), so — as Section 2.2 notes —
edge-cutting here happens on global axes only; value joins are already
separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pattern.blossom import BlossomTree, BlossomVertex, TreeEdge

__all__ = ["NoKTree", "InterEdge", "Decomposition", "decompose"]


@dataclass
class NoKTree:
    """One NoK pattern tree: a root vertex plus local-edge descendants.

    ``doc_uri`` is set for NoKs whose root is a pattern-tree root
    (``#root`` vertex); joined NoKs inherit their document at plan time
    from the NoK on the other end of the inter edge.
    """

    nok_id: int
    root: BlossomVertex
    vertices: list[BlossomVertex] = field(default_factory=list)
    doc_uri: str | None = None

    def local_children(self, vertex: BlossomVertex) -> list[TreeEdge]:
        """Uncut child edges of a member vertex."""
        return [e for e in vertex.child_edges if not getattr(e, "cut", False)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NoK{self.nok_id} root=V{self.root.vid} |V|={len(self.vertices)}>"


@dataclass
class InterEdge:
    """A cut tree edge connecting two NoK trees.

    ``parent`` lives in NoK ``nok_from``; ``child`` is the root of NoK
    ``nok_to``.  ``axis`` is the cut edge's (global) axis and ``mode``
    its matching mode — a mandatory inter edge acts as a semi-join
    filter on the parent side when the child side carries no returning
    vertices.
    """

    parent: BlossomVertex
    child: BlossomVertex
    axis: str
    mode: str
    nok_from: int
    nok_to: int

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<InterEdge V{self.parent.vid} -{self.axis},{self.mode}-> "
                f"V{self.child.vid} (NoK{self.nok_from}->NoK{self.nok_to})>")


@dataclass
class Decomposition:
    """The result of Algorithm 1 plus Dewey bookkeeping hooks."""

    tree: BlossomTree
    noks: list[NoKTree]
    inter_edges: list[InterEdge]
    #: vertex id -> owning NoK id
    nok_of_vertex: dict[int, int] = field(default_factory=dict)

    def nok_of(self, vertex: BlossomVertex) -> NoKTree:
        return self.noks[self.nok_of_vertex[vertex.vid]]

    def children_noks(self, nok: NoKTree) -> list[InterEdge]:
        return [e for e in self.inter_edges if e.nok_from == nok.nok_id]

    def root_noks(self) -> list[NoKTree]:
        """NoKs whose root is a pattern-tree root (scan anchors)."""
        return [n for n in self.noks if n.root.is_root]

    def describe(self) -> str:
        lines = []
        for nok in self.noks:
            members = ", ".join(f"V{v.vid}:{v.name}" for v in nok.vertices)
            uri = f' doc="{nok.doc_uri}"' if nok.doc_uri is not None else ""
            lines.append(f"NoK{nok.nok_id}{uri}: {members}")
        for edge in self.inter_edges:
            lines.append(f"join: NoK{edge.nok_from}.V{edge.parent.vid} "
                         f"-{edge.axis},{edge.mode}-> NoK{edge.nok_to}.V{edge.child.vid}")
        return "\n".join(lines)


def decompose(tree: BlossomTree) -> Decomposition:
    """Run Algorithm 1 over a BlossomTree.

    ``S`` is the worklist of NoK roots still to process; ``T`` the
    members of the NoK currently being assembled — mirroring the
    pseudo-code's two sets.
    """
    result = Decomposition(tree, [], [])
    pending_roots: list[BlossomVertex] = list(tree.roots)  # the set S
    seen_roots: set[int] = {v.vid for v in tree.roots}

    while pending_roots:
        root = pending_roots.pop(0)
        nok = NoKTree(len(result.noks), root, doc_uri=getattr(root, "doc_uri", None))
        result.noks.append(nok)

        members: list[BlossomVertex] = [root]  # the set T, in DFS order
        stack = [root]
        while stack:
            vertex = stack.pop()
            local_children: list[BlossomVertex] = []
            for edge in vertex.child_edges:
                if edge.is_local:
                    setattr(edge, "cut", False)
                    members.append(edge.child)
                    local_children.append(edge.child)
                else:
                    setattr(edge, "cut", True)
                    if edge.child.vid not in seen_roots:
                        seen_roots.add(edge.child.vid)
                        pending_roots.append(edge.child)
            stack.extend(reversed(local_children))

        nok.vertices = members
        for vertex in members:
            result.nok_of_vertex[vertex.vid] = nok.nok_id

    # Inter edges can only be resolved once every vertex has a NoK id.
    for edge in tree.tree_edges:
        if getattr(edge, "cut", False):
            result.inter_edges.append(InterEdge(
                edge.parent, edge.child, edge.axis, edge.mode,
                result.nok_of_vertex[edge.parent.vid],
                result.nok_of_vertex[edge.child.vid]))
            # The join needs to project the parent side, so its matches
            # must be kept in the NestedList even if no variable or
            # output references the vertex (it becomes "returning" in
            # the paper's wider sense: a join endpoint).
            edge.parent.returning = True

    # Keeping a vertex requires keeping the path to it: re-propagate.
    changed = True
    while changed:
        changed = False
        for edge in tree.tree_edges:
            if edge.child.returning and not edge.parent.returning:
                edge.parent.returning = True
                changed = True
    return result
