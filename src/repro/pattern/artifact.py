"""Reusable pattern-compilation artifacts.

Building a BlossomTree, decomposing it into NoK pattern trees
(Algorithm 1) and assigning Dewey IDs are pure functions of the query —
no document is consulted — so their outputs can be computed once at
``prepare()`` time and replayed across executions.  This module bundles
them into one value object, :class:`PatternArtifacts`, which the plan
cache stores and the executor accepts in place of rebuilding.

Reuse safety: the executor's match phase only *reads* the pattern tree
(``select`` filters produce copies, merged scans allocate fresh entry
lists per run), so one ``PatternArtifacts`` instance can back any
number of concurrent or sequential executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pattern.blossom import BlossomTree
from repro.pattern.decompose import Decomposition, decompose
from repro.pattern.dewey import DeweyAssignment, assign_dewey

__all__ = ["PatternArtifacts", "prepare_artifacts"]


@dataclass(frozen=True)
class PatternArtifacts:
    """Everything the pattern layer derives from one query."""

    tree: BlossomTree
    decomposition: Decomposition
    dewey: DeweyAssignment


def prepare_artifacts(tree: BlossomTree) -> PatternArtifacts:
    """Run decomposition and Dewey assignment once, for replay."""
    return PatternArtifacts(tree=tree,
                            decomposition=decompose(tree),
                            dewey=assign_dewey(tree))
