"""Static semantic analysis of FLWOR expressions.

Catches, *before* any evaluation starts, the errors that would
otherwise surface as mid-query execution failures:

* references to unbound variables (in clause sources, where, order by
  and return — including inside nested constructors and quantifiers);
* duplicate variable bindings (the restricted grammar has no variable
  shadowing);
* correlation analysis: which variables each where-conjunct connects —
  the same classification the BlossomTree builder uses to place
  crossing edges, exposed here for tooling (``Engine.explain`` shows it).

The analyzer is purely syntactic — no document needed — and returns a
:class:`StaticReport`; callers may raise ``report.raise_errors()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StaticError
from repro.xpath.ast import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    Conditional,
    Expr,
    FunctionCall,
    LocationPath,
    NotExpr,
    Quantified,
    RootVariable,
)
from repro.xquery.ast import (
    ElementConstructor,
    Enclosed,
    FLWOR,
    QueryExpr,
    Sequence,
    TextItem,
)

__all__ = ["StaticReport", "Correlation", "analyze", "free_variables"]


@dataclass(frozen=True)
class Correlation:
    """One where-conjunct's variable footprint."""

    variables: tuple[str, ...]
    relation: str       # "<<", "=", "deep-equal", "other", ...
    description: str

    @property
    def is_join(self) -> bool:
        """Connects two or more variables — a crossing-edge candidate."""
        return len(self.variables) >= 2


@dataclass
class StaticReport:
    """The analyzer's findings."""

    errors: list[str] = field(default_factory=list)
    bound_variables: list[str] = field(default_factory=list)
    unused_variables: list[str] = field(default_factory=list)
    correlations: list[Correlation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_errors(self, query: str = "") -> None:
        if self.errors:
            raise StaticError("; ".join(self.errors), query=query)


def analyze(flwor: FLWOR,
            external: frozenset[str] = frozenset()) -> StaticReport:
    """Statically analyze a FLWOR expression.

    ``external`` names variables bound outside the query — the external
    ``$parameters`` of a prepared query.  References to them are legal
    everywhere a bound variable is; everything else about the analysis
    (duplicate bindings, correlations) is unchanged.
    """
    report = StaticReport()
    bound: list[str] = []
    used: set[str] = set()

    for clause in flwor.clauses:
        _check_expr(clause.source, bound, used, report, external)
        if clause.var in bound:
            report.errors.append(f"variable ${clause.var} bound twice")
        else:
            bound.append(clause.var)

    if flwor.where is not None:
        _check_expr(flwor.where, bound, used, report, external)
        for conjunct in _conjuncts(flwor.where):
            report.correlations.append(_classify(conjunct))
    for spec in flwor.order_by:
        _check_expr(spec.key, bound, used, report, external)
    _check_query_expr(flwor.return_expr, bound, used, report, external)

    report.bound_variables = list(bound)
    report.unused_variables = [v for v in bound if v not in used]
    return report


def free_variables(expr: QueryExpr) -> frozenset[str]:
    """All variables an expression references but does not bind.

    These are a query's external ``$parameters``: the names a caller
    must supply bindings for at execution time.  FLWOR clauses and
    quantifiers bind their own variables; everything else just refers.
    """
    report = StaticReport()
    used: set[str] = set()
    _check_query_expr(expr, [], used, report, frozenset())
    prefix = "reference to unbound variable $"
    return frozenset(e[len(prefix):] for e in report.errors
                     if e.startswith(prefix))


# ----------------------------------------------------------------------
# Traversal.
# ----------------------------------------------------------------------

def _check_query_expr(expr: QueryExpr, bound: list[str], used: set[str],
                      report: StaticReport,
                      external: frozenset[str] = frozenset()) -> None:
    if isinstance(expr, FLWOR):
        inner_bound = list(bound)
        for clause in expr.clauses:
            _check_expr(clause.source, inner_bound, used, report, external)
            if clause.var in inner_bound:
                report.errors.append(f"variable ${clause.var} bound twice")
            else:
                inner_bound.append(clause.var)
        if expr.where is not None:
            _check_expr(expr.where, inner_bound, used, report, external)
        for spec in expr.order_by:
            _check_expr(spec.key, inner_bound, used, report, external)
        _check_query_expr(expr.return_expr, inner_bound, used, report, external)
        return
    if isinstance(expr, ElementConstructor):
        for item in expr.content:
            if isinstance(item, TextItem):
                continue
            if isinstance(item, Enclosed):
                for sub in item.exprs:
                    _check_query_expr(sub, bound, used, report, external)
            else:
                _check_query_expr(item, bound, used, report, external)
        return
    if isinstance(expr, Sequence):
        for sub in expr.exprs:
            _check_query_expr(sub, bound, used, report, external)
        return
    _check_expr(expr, bound, used, report, external)


def _check_expr(expr: Expr, bound: list[str], used: set[str],
                report: StaticReport,
                external: frozenset[str] = frozenset()) -> None:
    if isinstance(expr, LocationPath):
        if isinstance(expr.root, RootVariable):
            name = expr.root.name
            used.add(name)
            if name not in bound and name not in external:
                report.errors.append(f"reference to unbound variable ${name}")
        for step in expr.steps:
            for predicate in step.predicates:
                _check_expr(predicate, bound, used, report, external)
        return
    if isinstance(expr, (Comparison, Arithmetic)):
        _check_expr(expr.left, bound, used, report, external)
        _check_expr(expr.right, bound, used, report, external)
        return
    if isinstance(expr, (BooleanExpr,)):
        for operand in expr.operands:
            _check_expr(operand, bound, used, report, external)
        return
    if isinstance(expr, NotExpr):
        _check_expr(expr.operand, bound, used, report, external)
        return
    if isinstance(expr, FunctionCall):
        for arg in expr.args:
            _check_expr(arg, bound, used, report, external)
        return
    if isinstance(expr, Quantified):
        _check_expr(expr.source, bound, used, report, external)
        inner = bound + [expr.var]
        _check_expr(expr.satisfies, inner, used, report, external)
        return
    if isinstance(expr, Conditional):
        for sub in (expr.condition, expr.then_branch, expr.else_branch):
            _check_expr(sub, bound, used, report, external)
        return
    # literals: nothing to check


# ----------------------------------------------------------------------
# Correlation classification.
# ----------------------------------------------------------------------

def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BooleanExpr) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expr]


def _variables_of(expr: Expr) -> tuple[str, ...]:
    found: list[str] = []

    def visit(node: Expr) -> None:
        if isinstance(node, LocationPath):
            if isinstance(node.root, RootVariable) and \
                    node.root.name not in found:
                found.append(node.root.name)
            for step in node.steps:
                for predicate in step.predicates:
                    visit(predicate)
        elif isinstance(node, (Comparison, Arithmetic)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, BooleanExpr):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, NotExpr):
            visit(node.operand)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Quantified):
            visit(node.source)
            visit(node.satisfies)
        elif isinstance(node, Conditional):
            visit(node.condition)
            visit(node.then_branch)
            visit(node.else_branch)

    visit(expr)
    return tuple(found)


def _classify(conjunct: Expr) -> Correlation:
    variables = _variables_of(conjunct)
    inner = conjunct
    while isinstance(inner, NotExpr):
        inner = inner.operand
    if isinstance(inner, FunctionCall) and inner.name == "not" and inner.args:
        inner = inner.args[0]
    if isinstance(inner, Comparison):
        relation = inner.op
    elif isinstance(inner, FunctionCall) and inner.name == "deep-equal":
        relation = "deep-equal"
    else:
        relation = "other"
    return Correlation(variables, relation, str(conjunct))
