"""XQuery FLWOR subset: AST and parser (paper Section 3.1 grammar)."""

from repro.xquery.ast import (
    ElementConstructor,
    Enclosed,
    FLWOR,
    ForClause,
    LetClause,
    OrderSpec,
    Sequence,
    TextItem,
)
from repro.xquery.parser import parse_flwor, parse_query
from repro.xquery.semantics import Correlation, StaticReport, analyze

__all__ = [
    "ElementConstructor",
    "Enclosed",
    "FLWOR",
    "ForClause",
    "LetClause",
    "OrderSpec",
    "Sequence",
    "TextItem",
    "Correlation",
    "StaticReport",
    "analyze",
    "parse_flwor",
    "parse_query",
]
