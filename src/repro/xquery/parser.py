"""Parser for the restricted FLWOR subset.

The XQuery-level parser is character driven because direct element
constructors switch the lexical ground rules (arbitrary text content).
Embedded path and boolean expressions are carved out of the source by
bracket-depth scanning and handed to the XPath parser, which is the
single definition of expression syntax in the repository.

Supported query forms::

    <tag attr="v"> ... { expr } ... </tag>        (constructor, nestable)
    for/let ... where ... order by ... return ...  (FLWOR)
    any XPath expression                           (paths, comparisons, ...)

Enclosed expressions may contain comma-separated sequences; each item
is again any of the three forms, so Example 1's
``<bib>{ for ... return <book-pair>...</book-pair> }</bib>`` parses
naturally.
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.xpath.ast import Expr, LocationPath
from repro.xpath.lexer import TokenCursor, tokenize_query
from repro.xpath.parser import XPathParser
from repro.xquery.ast import (
    ElementConstructor,
    Enclosed,
    FLWOR,
    ForClause,
    LetClause,
    OrderSpec,
    QueryExpr,
    Sequence,
    TextItem,
)

__all__ = ["parse_query", "parse_flwor"]

_NAME_RE = re.compile(r"[A-Za-z_][\w.-]*")
_KEYWORDS_AFTER_CLAUSE = ("for", "let", "where", "order", "return")


def parse_query(text: str) -> QueryExpr:
    """Parse a complete query (constructor, FLWOR, or XPath expression)."""
    parser = _QueryParser(text)
    expr = parser.parse_expr_single()
    parser.skip_ws()
    if not parser.at_end():
        raise parser.error("unexpected trailing input")
    return expr


def parse_flwor(text: str) -> FLWOR:
    """Parse a query that must be (or wrap exactly one) FLWOR expression."""
    expr = parse_query(text)
    flwor = _find_flwor(expr)
    if flwor is None:
        raise QuerySyntaxError("query contains no FLWOR expression", 0, text)
    return flwor


def _find_flwor(expr: QueryExpr) -> FLWOR | None:
    if isinstance(expr, FLWOR):
        return expr
    if isinstance(expr, ElementConstructor):
        found = None
        for item in expr.content:
            if isinstance(item, Enclosed):
                for sub in item.exprs:
                    inner = _find_flwor(sub)
                    if inner is not None:
                        if found is not None:
                            return None  # ambiguous: more than one
                        found = inner
        return found
    return None


class _QueryParser:
    """Character cursor with mode-switching for constructors."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level helpers ------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while not self.at_end():
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                depth = 0
                while self.pos < len(self.text):
                    if self.text.startswith("(:", self.pos):
                        depth += 1
                        self.pos += 2
                    elif self.text.startswith(":)", self.pos):
                        depth -= 1
                        self.pos += 2
                        if depth == 0:
                            break
                    else:
                        self.pos += 1
                if depth != 0:
                    raise self.error("unterminated comment")
            else:
                return

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, self.pos, self.text)

    def keyword_ahead(self, word: str) -> bool:
        """True iff ``word`` starts at the cursor as a whole word."""
        if not self.text.startswith(word, self.pos):
            return False
        end = self.pos + len(word)
        return end >= len(self.text) or not (self.text[end].isalnum()
                                             or self.text[end] in "_-.")

    def take_keyword(self, word: str) -> None:
        if not self.keyword_ahead(word):
            raise self.error(f"expected keyword {word!r}")
        self.pos += len(word)

    def take_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()

    def expect_char(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    # -- expression dispatch ----------------------------------------------

    def parse_expr_single(self) -> QueryExpr:
        self.skip_ws()
        if self.at_end():
            raise self.error("expected an expression")
        if self.keyword_ahead("for") or self.keyword_ahead("let"):
            return self.parse_flwor()
        if self.peek() == "<" and _NAME_RE.match(self.text, self.pos + 1):
            return self.parse_constructor()
        if self.peek() == "(" and not self.text.startswith("(:", self.pos):
            # Ambiguous: "(a, b)" is a sequence, "(a = b) and c" is one
            # XPath expression.  Try the expression reading first and
            # fall back to the sequence reading.
            start = self.pos
            try:
                return self._parse_xpath_expr(
                    self._scan_expr_extent(stop_chars=(",",)))
            except QuerySyntaxError:
                self.pos = start
                return self._parse_parenthesized()
        return self._parse_xpath_expr(self._scan_expr_extent(stop_chars=(",",)))

    def _parse_parenthesized(self) -> QueryExpr:
        start = self.pos
        self.expect_char("(")
        items: list[QueryExpr] = []
        self.skip_ws()
        if self.peek() == ")":
            self.pos += 1
            return Sequence(())
        while True:
            items.append(self.parse_expr_single())
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            if self.peek() == ")":
                self.pos += 1
                break
            # Not a sequence after all (e.g. "(a = b) and c"): re-parse the
            # whole parenthesized region as one XPath expression.
            self.pos = start
            return self._parse_xpath_expr(self._scan_expr_extent())
        if len(items) == 1:
            return items[0]
        return Sequence(tuple(items))

    # -- FLWOR -------------------------------------------------------------

    def parse_flwor(self) -> FLWOR:
        clauses: list[ForClause | LetClause] = []
        while True:
            self.skip_ws()
            if self.keyword_ahead("for"):
                self.take_keyword("for")
                clauses.extend(self._parse_for_bindings())
            elif self.keyword_ahead("let"):
                self.take_keyword("let")
                clauses.extend(self._parse_let_bindings())
            else:
                break
        if not clauses:
            raise self.error("FLWOR requires at least one for/let clause")

        where: Expr | None = None
        self.skip_ws()
        if self.keyword_ahead("where"):
            self.take_keyword("where")
            where = self._parse_xpath_boolean(
                self._scan_expr_extent(stop_keywords=("order", "return")))

        order_by: list[OrderSpec] = []
        self.skip_ws()
        if self.keyword_ahead("order"):
            self.take_keyword("order")
            self.skip_ws()
            self.take_keyword("by")
            while True:
                chunk = self._scan_expr_extent(
                    stop_keywords=("ascending", "descending", "return"),
                    stop_chars=(",",))
                key = self._parse_xpath_expr(chunk)
                descending = False
                self.skip_ws()
                if self.keyword_ahead("ascending"):
                    self.take_keyword("ascending")
                elif self.keyword_ahead("descending"):
                    self.take_keyword("descending")
                    descending = True
                order_by.append(OrderSpec(key, descending))
                self.skip_ws()
                if self.peek() == ",":
                    self.pos += 1
                    continue
                break

        self.skip_ws()
        self.take_keyword("return")
        return_expr = self.parse_expr_single()
        return FLWOR(tuple(clauses), where, tuple(order_by), return_expr)

    def _parse_for_bindings(self) -> list[ForClause]:
        bindings: list[ForClause] = []
        while True:
            self.skip_ws()
            self.expect_char("$")
            var = self.take_name()
            self.skip_ws()
            self.take_keyword("in")
            chunk = self._scan_expr_extent(stop_chars=(",",))
            path = self._parse_xpath_path(chunk)
            bindings.append(ForClause(var, path))
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            return bindings

    def _parse_let_bindings(self) -> list[LetClause]:
        bindings: list[LetClause] = []
        while True:
            self.skip_ws()
            self.expect_char("$")
            var = self.take_name()
            self.skip_ws()
            if not self.text.startswith(":=", self.pos):
                raise self.error("expected ':=' in let clause")
            self.pos += 2
            chunk = self._scan_expr_extent(stop_chars=(",",))
            path = self._parse_xpath_path(chunk)
            bindings.append(LetClause(var, path))
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            return bindings

    # -- element constructors ----------------------------------------------

    def parse_constructor(self) -> ElementConstructor:
        self.expect_char("<")
        tag = self.take_name()
        attrs: list[tuple[str, str]] = []
        while True:
            self.skip_ws()
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return ElementConstructor(tag, tuple(attrs), ())
            if self.peek() == ">":
                self.pos += 1
                break
            name = self.take_name()
            self.skip_ws()
            self.expect_char("=")
            self.skip_ws()
            quote = self.peek()
            if quote not in "\"'":
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            attrs.append((name, self.text[self.pos:end]))
            self.pos = end + 1

        content: list[TextItem | ElementConstructor | Enclosed] = []
        while True:
            if self.at_end():
                raise self.error(f"unterminated constructor <{tag}>")
            if self.text.startswith("</", self.pos):
                self.pos += 2
                closing = self.take_name()
                if closing != tag:
                    raise self.error(
                        f"mismatched constructor end tag </{closing}> for <{tag}>")
                self.skip_ws()
                self.expect_char(">")
                return ElementConstructor(tag, tuple(attrs), tuple(content))
            if self.peek() == "<":
                content.append(self.parse_constructor())
            elif self.peek() == "{":
                self.pos += 1
                exprs: list[QueryExpr] = [self.parse_expr_single()]
                self.skip_ws()
                while self.peek() == ",":
                    self.pos += 1
                    exprs.append(self.parse_expr_single())
                    self.skip_ws()
                self.expect_char("}")
                content.append(Enclosed(tuple(exprs)))
            else:
                start = self.pos
                while (not self.at_end()
                       and self.peek() not in "<{"):
                    self.pos += 1
                raw = self.text[start:self.pos]
                if raw.strip():
                    content.append(TextItem(raw))

    # -- expression extraction ----------------------------------------------

    def _scan_expr_extent(self, stop_keywords: tuple[str, ...] = _KEYWORDS_AFTER_CLAUSE,
                          stop_chars: tuple[str, ...] = ()) -> str:
        """Carve out the source text of one embedded XPath expression.

        Scans forward tracking bracket depth and string literals; stops at
        a depth-0 stop character, a depth-0 whole-word stop keyword, an
        unbalanced closing bracket (``)``, ``]``, ``}`` belonging to an
        enclosing construct) or end of input.
        """
        self.skip_ws()
        start = self.pos
        depth = 0
        text = self.text
        n = len(text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in "\"'":
                end = text.find(ch, self.pos + 1)
                if end < 0:
                    raise self.error("unterminated string literal")
                self.pos = end + 1
                continue
            if ch in "([":
                depth += 1
            elif ch in ")]":
                if depth == 0:
                    break
                depth -= 1
            elif ch == "{" or ch == "}":
                if depth == 0:
                    break
                # braces inside expressions are not in the subset
            elif depth == 0:
                if ch in stop_chars:
                    break
                if ch.isalpha():
                    for keyword in stop_keywords:
                        if self.keyword_ahead(keyword) and self._is_word_start():
                            chunk = text[start:self.pos].rstrip()
                            if chunk:
                                return chunk
                            raise self.error("expected an expression")
                    # skip the whole word so names containing keywords
                    # (e.g. 'information') are not split
                    match = _NAME_RE.match(text, self.pos)
                    if match:
                        self.pos = match.end()
                        continue
            self.pos += 1
        chunk = text[start:self.pos].rstrip()
        if not chunk:
            raise self.error("expected an expression")
        return chunk

    def _is_word_start(self) -> bool:
        """True iff the previous character cannot continue a name."""
        if self.pos == 0:
            return True
        prev = self.text[self.pos - 1]
        return not (prev.isalnum() or prev in "_-.$@")

    def _parse_xpath_path(self, chunk: str) -> LocationPath:
        cursor = TokenCursor(tokenize_query(chunk), chunk)
        path = XPathParser(cursor).parse_path(top_level=True)
        if not cursor.at_eof():
            raise QuerySyntaxError(
                f"unexpected input after path: {cursor.current.value!r}",
                cursor.current.pos, chunk)
        return path

    def _parse_xpath_expr(self, chunk: str) -> Expr:
        cursor = TokenCursor(tokenize_query(chunk), chunk)
        parser = XPathParser(cursor)
        expr = parser.parse_or_expr()
        if not cursor.at_eof():
            raise QuerySyntaxError(
                f"unexpected input after expression: {cursor.current.value!r}",
                cursor.current.pos, chunk)
        return expr

    def _parse_xpath_boolean(self, chunk: str) -> Expr:
        return self._parse_xpath_expr(chunk)
