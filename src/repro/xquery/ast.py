"""Abstract syntax for the restricted FLWOR subset (paper Section 3.1).

The grammar the paper evaluates::

    FLWOR ::= ( 'for' Var 'in' Path | 'let' Var ':=' Path )+
              ('where' Boolean)?
              ('order by' Path)?
              'return' Return

We additionally support the constructs Example 1 needs: direct element
constructors with enclosed expressions (``<tag>{ expr }</tag>``) in the
return clause and around a whole FLWOR, and comma-separated sequences
inside enclosed expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpath.ast import Expr, LocationPath

__all__ = [
    "ForClause",
    "LetClause",
    "OrderSpec",
    "FLWOR",
    "TextItem",
    "Enclosed",
    "ElementConstructor",
    "Sequence",
    "QueryExpr",
    "iter_clause_paths",
]


@dataclass(frozen=True)
class ForClause:
    """``for $var in <path>`` — iterates item by item (mode "f")."""

    var: str
    source: LocationPath

    def __str__(self) -> str:
        return f"for ${self.var} in {self.source}"


@dataclass(frozen=True)
class LetClause:
    """``let $var := <path>`` — binds the whole sequence (mode "l")."""

    var: str
    source: LocationPath

    def __str__(self) -> str:
        return f"let ${self.var} := {self.source}"


@dataclass(frozen=True)
class OrderSpec:
    """One ``order by`` key."""

    key: Expr
    descending: bool = False

    def __str__(self) -> str:
        suffix = " descending" if self.descending else ""
        return f"{self.key}{suffix}"


@dataclass(frozen=True)
class TextItem:
    """Literal character content inside an element constructor."""

    text: str


@dataclass(frozen=True)
class Enclosed:
    """``{ expr, expr, ... }`` inside a constructor."""

    exprs: tuple[QueryExpr, ...]


@dataclass(frozen=True)
class ElementConstructor:
    """A direct element constructor.

    ``attrs`` maps attribute names to literal strings (attribute value
    templates with enclosed expressions are outside the paper's subset).
    ``content`` is the ordered mix of text, nested constructors and
    enclosed expressions.
    """

    tag: str
    attrs: tuple[tuple[str, str], ...] = ()
    content: tuple[TextItem | ElementConstructor | Enclosed, ...] = ()

    def __str__(self) -> str:
        attrs = "".join(f' {k}="{v}"' for k, v in self.attrs)
        return f"<{self.tag}{attrs}>...</{self.tag}>"


@dataclass(frozen=True)
class Sequence:
    """Comma-separated expression sequence."""

    exprs: tuple[QueryExpr, ...]


@dataclass(frozen=True)
class FLWOR:
    """A restricted FLWOR expression."""

    clauses: tuple[ForClause | LetClause, ...]
    where: Expr | None = None
    order_by: tuple[OrderSpec, ...] = ()
    return_expr: QueryExpr = None  # type: ignore[assignment]

    def for_clauses(self) -> list[ForClause]:
        return [c for c in self.clauses if isinstance(c, ForClause)]

    def let_clauses(self) -> list[LetClause]:
        return [c for c in self.clauses if isinstance(c, LetClause)]

    def __str__(self) -> str:
        parts = [str(c) for c in self.clauses]
        if self.where is not None:
            parts.append(f"where {self.where}")
        if self.order_by:
            parts.append("order by " + ", ".join(str(s) for s in self.order_by))
        parts.append("return ...")
        return "\n".join(parts)


#: Anything that can appear where the XQuery grammar expects one expression.
QueryExpr = FLWOR | ElementConstructor | Sequence | Expr


def iter_clause_paths(flwor: FLWOR) -> list[tuple[str, LocationPath]]:
    """All (variable, path) pairs bound by for/let clauses, in order."""
    return [(c.var, c.source) for c in flwor.clauses]
