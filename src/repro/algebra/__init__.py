"""Algebraic layer: NestedList ADT, Env, logical operators (Section 3)."""

from repro.algebra.env import Env
from repro.algebra.nested_list import NLEntry, project, project_entries, sexpr_sequence
from repro.algebra.operators import Combined, join, project_sequence, select

__all__ = [
    "Combined",
    "Env",
    "NLEntry",
    "join",
    "project",
    "project_entries",
    "project_sequence",
    "select",
    "sexpr_sequence",
]
