"""The NestedList abstract data type (paper Definition 2, Figures 3-4, 6).

A NestedList is "a nested list representation of an ordered tree
structure that is leveraged by the grouping notation []".  Matches of a
NoK pattern tree are NestedLists: each pattern vertex contributes a
*group* — the document-ordered list of XML nodes matched to it under a
given parent match — and nesting follows the pattern-tree structure.

Physical layout (Figure 6)
--------------------------
Each match entry (:class:`NLEntry`) holds the matched XML node and one
group (Python list) per pattern child, which realizes exactly the
paper's design: sibling pointers become list adjacency, child-pointer
arrays become the per-child group lists, and the "pointer to the last
child" becomes ``list.append``.  Insertions happen at group tails
during the depth-first scan, which is what makes projections
document-ordered (Theorem 1).

The textual ``(a1,[(b1,()),...])`` rendering of Figure 4 is produced by
:meth:`NLEntry.sexpr` and is used verbatim in the paper-example tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.xmlkit.tree import Node
from repro.pattern.blossom import BlossomVertex

__all__ = ["NLEntry", "project", "project_entries", "sexpr_sequence"]


class NLEntry:
    """One match of a pattern vertex: the XML node plus child groups.

    ``groups[i]`` is the (possibly empty) document-ordered list of
    entries matched to ``vertex.children()[i]`` *within this match* —
    the paper's ``[]`` grouping.  Entries for non-kept vertices (purely
    existential subtrees) are represented by ``None`` placeholders to
    save memory; their existence was verified during matching.
    """

    __slots__ = ("vertex", "node", "groups")

    def __init__(self, vertex: BlossomVertex, node: Node | None,
                 n_groups: int) -> None:
        self.vertex = vertex
        self.node = node
        self.groups: list[list[NLEntry | None]] = [[] for _ in range(n_groups)]

    # ------------------------------------------------------------------
    # Navigation.
    # ------------------------------------------------------------------

    def group_for(self, child_vertex: BlossomVertex) -> list[NLEntry | None]:
        """The group of a specific pattern child."""
        children = self.vertex.children()
        for index, child in enumerate(children):
            if child is child_vertex:
                return self.groups[index]
        raise KeyError(f"V{child_vertex.vid} is not a child of V{self.vertex.vid}")

    def iter_group_entries(self) -> Iterator[NLEntry]:
        for group in self.groups:
            for entry in group:
                if entry is not None:
                    yield entry

    # ------------------------------------------------------------------
    # Rendering (paper notation).
    # ------------------------------------------------------------------

    def sexpr(self, label: Callable[[Node], str] | None = None) -> str:
        """Figure-4 notation: ``()`` nests, ``[]`` groups.

        ``label`` renders a matched node (default: ``tag`` + 1-based
        occurrence index is *not* known here, so the default is the tag
        name; tests pass a labeller built from the document).
        """
        render = label if label is not None else (lambda n: n.tag or "#text")
        return self._sexpr(render)

    def _sexpr(self, render: Callable[[Node], str]) -> str:
        name = render(self.node) if self.node is not None else ""
        parts = [name] if name else []
        for group in self.groups:
            real = [e for e in group if e is not None]
            if not real:
                parts.append("()")
            elif len(real) == 1:
                parts.append(real[0]._sexpr(render))
            else:
                parts.append("[" + ",".join(e._sexpr(render) for e in real) + "]")
        return "(" + ",".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover
        tag = self.node.tag if self.node is not None else "·"
        return f"<NLEntry V{self.vertex.vid}:{tag}>"


def project_entries(entry: NLEntry, target: BlossomVertex) -> list[NLEntry]:
    """Project an entry onto a descendant pattern vertex (π of Section 3.3).

    Returns the document-ordered entries matched to ``target`` inside
    this NestedList.  ``target`` must lie in the same NoK pattern tree
    (projections across NoKs go through join adjacency instead).
    """
    if entry.vertex is target:
        return [entry]
    # Walk the vertex path from entry.vertex down to target.
    path: list[BlossomVertex] = []
    node = target
    while node is not entry.vertex:
        edge = node.parent_edge
        if edge is None:
            raise KeyError(f"V{target.vid} is not below V{entry.vertex.vid}")
        if getattr(edge, "cut", False):
            raise KeyError(
                f"projection from V{entry.vertex.vid} to V{target.vid} crosses a "
                "NoK boundary; use the join adjacency instead")
        path.append(node)
        node = edge.parent
    path.reverse()

    current = [entry]
    for vertex in path:
        next_level: list[NLEntry] = []
        for item in current:
            for sub in item.group_for(vertex):
                if sub is not None:
                    next_level.append(sub)
        current = next_level
    return current


def project(entry: NLEntry, target: BlossomVertex) -> list[Node]:
    """Node-level projection: matched XML nodes of ``target``, in
    document order (Theorem 1 guarantees the order)."""
    return [e.node for e in project_entries(entry, target) if e.node is not None]


def sexpr_sequence(entries: list[NLEntry],
                   label: Callable[[Node], str] | None = None) -> str:
    """Render a sequence of NestedLists the way the paper lists results."""
    return "[" + ",\n ".join(e.sexpr(label) for e in entries) + "]"
