"""The Env abstract data type: variable bindings derived from NestedLists.

Figure 2 of the paper shows the data flow ``NestedList --variable
binding--> Env --construction--> XMLTree``.  An :class:`Env` is one
tuple of the FLWOR iteration: every for-variable is bound to a single
node (with the NestedList entry it came from, so descendant variables
can anchor their own enumeration), and every let-variable to a node
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit.tree import Node
from repro.algebra.nested_list import NLEntry

__all__ = ["Env"]


@dataclass
class Env:
    """One binding tuple.

    ``values`` maps variable names to node sequences (singletons for
    for-variables).  ``anchors`` maps for-variable names to the NestedList
    entry of the bound node; let-variables map to the entry list of
    their sequence.  The executor threads anchors through nested
    enumeration; the construction layer only reads ``values``.
    """

    values: dict[str, list[Node]] = field(default_factory=dict)
    anchors: dict[str, list[NLEntry]] = field(default_factory=dict)

    def bind_for(self, name: str, entry: NLEntry) -> Env:
        """Extend with a for-binding (returns a copy; Envs are persistent
        values handed to the construction layer)."""
        child = Env(dict(self.values), dict(self.anchors))
        assert entry.node is not None
        child.values[name] = [entry.node]
        child.anchors[name] = [entry]
        return child

    def bind_let(self, name: str, entries: list[NLEntry]) -> Env:
        """Extend with a let-binding over a (possibly empty) entry list."""
        child = Env(dict(self.values), dict(self.anchors))
        child.values[name] = [e.node for e in entries if e.node is not None]
        child.anchors[name] = entries
        return child

    def node_of(self, name: str) -> Node | None:
        seq = self.values.get(name)
        return seq[0] if seq else None

    def as_variables(self) -> dict[str, list[Node]]:
        """The mapping handed to the XPath evaluator for residual checks,
        order-by keys and return construction."""
        return self.values
