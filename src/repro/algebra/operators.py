"""Logical operators on NestedList sequences (paper Section 3.3).

These are the algebra-level π / σ / ⋈ with exactly the semantics the
paper defines; they operate on sequences of NestedLists and are
parameterized by pattern vertices (the code-level face of Dewey IDs —
:class:`~repro.pattern.dewey.DeweyAssignment` maps between the two).

The physical operators in :mod:`repro.physical` implement the same
semantics with specialized algorithms; the property-based tests check
each physical operator against these definitions.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.xmlkit.tree import Node
from repro.pattern.blossom import MODE_MANDATORY, BlossomVertex
from repro.algebra.nested_list import NLEntry, project

__all__ = ["project_sequence", "select", "join", "Combined"]


def project_sequence(entries: Iterable[NLEntry], target: BlossomVertex) -> list[Node]:
    """π: concatenated projection over a sequence of NestedLists.

    The result of projecting a single NestedList is document-ordered
    (Theorem 1); the concatenation over a sequential-scan result is also
    document-ordered because scan matches are emitted in document order
    of their root nodes.
    """
    out: list[Node] = []
    for entry in entries:
        out.extend(project(entry, target))
    return out


def select(entries: Iterable[NLEntry], target: BlossomVertex,
           predicate: Callable[[Node], bool]) -> list[NLEntry]:
    """σ: filter the items matched to ``target`` by a node predicate.

    Items failing the predicate are removed from their group; if a
    removal leaves a mandatory vertex without matches, the whole
    NestedList is removed from the sequence (the paper's "not a valid
    match anymore" rule).  The input entries are not mutated — filtered
    copies are produced.
    """
    result: list[NLEntry] = []
    for entry in entries:
        filtered = _filter_entry(entry, target, predicate)
        if filtered is not None:
            result.append(filtered)
    return result


def _filter_entry(entry: NLEntry, target: BlossomVertex,
                  predicate: Callable[[Node], bool]) -> NLEntry | None:
    if entry.vertex is target:
        if entry.node is not None and predicate(entry.node):
            return entry
        return None
    copy = NLEntry(entry.vertex, entry.node, len(entry.groups))
    children = entry.vertex.children()
    for index, group in enumerate(entry.groups):
        child_vertex = children[index] if index < len(children) else None
        on_path = child_vertex is not None and _is_on_path(child_vertex, target)
        if not on_path:
            copy.groups[index] = list(group)
            continue
        new_group: list[NLEntry | None] = []
        for sub in group:
            if sub is None:
                new_group.append(None)
                continue
            filtered = _filter_entry(sub, target, predicate)
            if filtered is not None:
                new_group.append(filtered)
        edge = child_vertex.parent_edge
        if edge is not None and edge.mode == MODE_MANDATORY and not new_group:
            return None
        copy.groups[index] = new_group
    return copy


def _is_on_path(vertex: BlossomVertex, target: BlossomVertex) -> bool:
    """True iff ``target`` equals or lies below ``vertex`` via uncut edges."""
    node = target
    while node is not None:
        if node is vertex:
            return True
        edge = node.parent_edge
        if edge is None or getattr(edge, "cut", False):
            return False
        node = edge.parent
    return False


class Combined:
    """The result of a logical join: one NestedList per joined pattern
    tree, kept side by side (the paper "fills out the placeholders";
    keeping the parts separate is the equivalent pointer-level move)."""

    __slots__ = ("parts",)

    def __init__(self, parts: tuple[NLEntry, ...]) -> None:
        self.parts = parts

    def project(self, target: BlossomVertex) -> list[Node]:
        for part in self.parts:
            try:
                return project(part, target)
            except KeyError:
                continue
        raise KeyError(f"V{target.vid} not reachable from any joined part")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Combined {len(self.parts)} parts>"


def join(left: Iterable, right: Iterable[NLEntry],
         predicate: Callable[[list[Node], list[Node]], bool],
         left_target: BlossomVertex, right_target: BlossomVertex) -> list[Combined]:
    """⋈: combine NestedLists whose projections satisfy the predicate.

    ``left`` items may be plain entries or :class:`Combined` results of
    earlier joins, so joins compose into sequences the way Section 3.3's
    "extended to a sequence of NestedLists" remark describes.  The
    predicate receives the two projected node lists; pairs for which it
    returns false produce the empty sequence (are dropped).
    """
    right_list = list(right)
    output: list[Combined] = []
    for litem in left:
        if isinstance(litem, Combined):
            lnodes = litem.project(left_target)
            lparts = litem.parts
        else:
            lnodes = project(litem, left_target)
            lparts = (litem,)
        for ritem in right_list:
            rnodes = project(ritem, right_target)
            if predicate(lnodes, rnodes):
                output.append(Combined(lparts + (ritem,)))
    return output
