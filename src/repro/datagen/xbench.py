"""d2 (address) and d3 (catalog): XBench-style non-recursive datasets.

XBench's data-centric documents (reference [19]) are shallow, regular
and non-recursive.  Signatures to reproduce (Table 1):

* **d2 address** — 7 distinct tags, average depth ≈ 3, maximum 3-4,
  very regular (every address looks alike except for optional parts).
* **d3 catalog** — 51 distinct tags, average depth ≈ 5, maximum 8,
  bushier with several optional subtrees (publisher, authors with
  contact information, item attributes).
"""

from __future__ import annotations

import random

from repro.xmlkit.tree import Document
from repro.datagen.core import GenContext, sentence, word

__all__ = ["generate_d2", "generate_d3"]

_STATES = ("ontario", "quebec", "bavaria", "texas", "oregon", "kyoto",
           "tuscany", "catalonia")
_CITIES = ("waterloo", "kitchener", "toronto", "boston", "munich", "lyon",
           "seattle", "girona", "florence", "osaka")
_COUNTRIES = ("CA", "US", "DE", "FR", "JP", "IT", "ES")


def generate_d2(scale: float = 1.0, seed: int = 102) -> Document:
    """d2 analogue: a flat list of addresses (~4000*scale elements)."""
    target = max(40, int(4000 * scale))
    ctx = GenContext(seed, target)
    rng = ctx.rng
    ctx.start("addresses")
    while not ctx.exhausted():
        ctx.start("address", {"id": f"addr{ctx.count}"})
        ctx.leaf("street_address", f"{rng.randint(1, 999)} {word(rng)} street")
        ctx.leaf("name_of_city", rng.choice(_CITIES))
        # name_of_state present for ~55% of addresses: the target of the
        # moderate-selectivity queries.
        if rng.random() < 0.55:
            ctx.leaf("name_of_state", rng.choice(_STATES))
        ctx.leaf("zip_code", f"{rng.randint(10000, 99999)}")
        # country_id is rare (~2%): the high-selectivity target.
        if rng.random() < 0.02:
            ctx.leaf("country_id", rng.choice(_COUNTRIES))
        ctx.end()
    ctx.end()
    return ctx.finish()


# ----------------------------------------------------------------------
# d3: catalog.
# ----------------------------------------------------------------------

_SUBJECTS = ("databases", "networks", "compilers", "graphics", "theory",
             "systems", "security", "learning")


def generate_d3(scale: float = 1.0, seed: int = 103) -> Document:
    """d3 analogue: a product catalog (~9000*scale elements, 51 tags)."""
    target = max(80, int(9000 * scale))
    ctx = GenContext(seed, target)
    rng = ctx.rng
    ctx.start("catalog")
    while not ctx.exhausted():
        _item(ctx, rng)
    ctx.end()
    return ctx.finish()


def _item(ctx: GenContext, rng: random.Random) -> None:
    ctx.start("item", {"id": f"item{ctx.count}"})
    ctx.start("title")
    ctx.leaf("main_title", sentence(rng, 3))
    if rng.random() < 0.3:
        ctx.leaf("subtitle", sentence(rng, 2))
    ctx.end()
    ctx.leaf("isbn", f"{rng.randint(1000000000, 9999999999)}")
    ctx.leaf("subject", rng.choice(_SUBJECTS))

    ctx.start("attributes")
    ctx.start("size_of_book")
    # length is uncommon (~15% of items): the high-selectivity target
    # //item/attributes//length.
    if rng.random() < 0.15:
        ctx.leaf("length", str(rng.randint(100, 900)))
    ctx.leaf("width", str(rng.randint(10, 30)))
    ctx.leaf("height", str(rng.randint(15, 40)))
    ctx.end()
    ctx.leaf("number_of_pages", str(rng.randint(80, 1200)))
    if rng.random() < 0.4:
        ctx.start("media")
        ctx.leaf("binding", rng.choice(("hardcover", "paperback")))
        ctx.leaf("reading_level", str(rng.randint(1, 5)))
        ctx.end()
    ctx.end()  # attributes

    for _ in range(rng.randint(2, 4)):
        _author(ctx, rng)

    # publisher subtree present for ~80% of items.
    if rng.random() < 0.8:
        _publisher(ctx, rng)

    ctx.leaf("pricing", str(rng.randint(10, 150)))
    ctx.start("publication")
    ctx.leaf("year_of_publication", str(rng.randint(1970, 2004)))
    ctx.leaf("edition", str(rng.randint(1, 5)))
    ctx.end()
    ctx.end()  # item


def _author(ctx: GenContext, rng: random.Random) -> None:
    ctx.start("authors")
    ctx.start("author")
    ctx.start("name")
    ctx.leaf("first_name", word(rng))
    ctx.leaf("last_name", word(rng))
    ctx.end()
    if rng.random() < 0.5:
        ctx.leaf("date_of_birth", f"19{rng.randint(20, 85)}")
    if rng.random() < 0.6:
        ctx.start("contact_information")
        _mailing_address(ctx, rng, with_state=rng.random() < 0.35)
        if rng.random() < 0.3:
            ctx.leaf("email_address", f"{word(rng)}@example.org")
        if rng.random() < 0.2:
            ctx.leaf("phone_number", f"{rng.randint(200, 999)}-{rng.randint(1000, 9999)}")
        ctx.end()
    ctx.end()
    ctx.end()


def _publisher(ctx: GenContext, rng: random.Random) -> None:
    ctx.start("publisher")
    ctx.leaf("publisher_name", f"{word(rng)} press")
    ctx.start("street_information")
    ctx.leaf("street_address", f"{rng.randint(1, 500)} {word(rng)} ave")
    ctx.leaf("suite_number", str(rng.randint(1, 90)))
    ctx.end()
    if rng.random() < 0.5:
        _mailing_address(ctx, rng, with_state=rng.random() < 0.4)
    if rng.random() < 0.3:
        ctx.start("web_site")
        ctx.leaf("url", f"http://{word(rng)}.example.org")
        ctx.end()
    ctx.end()


def _mailing_address(ctx: GenContext, rng: random.Random, with_state: bool) -> None:
    ctx.start("mailing_address")
    ctx.leaf("street_address", f"{rng.randint(1, 999)} {word(rng)} road")
    ctx.leaf("name_of_city", rng.choice(_CITIES))
    if with_state:
        ctx.leaf("name_of_state", rng.choice(_STATES))
    ctx.leaf("zip_code", str(rng.randint(10000, 99999)))
    if rng.random() < 0.15:
        ctx.leaf("name_of_country", rng.choice(_COUNTRIES))
    ctx.end()
