"""Command-line corpus generation: ``python -m repro.datagen``.

Writes the benchmark datasets to disk as XML files, so they can be
inspected, diffed across seeds, or fed to other tools::

    python -m repro.datagen --out corpora --scale 0.5
    python -m repro.datagen --out corpora --datasets d1,d4 --seed 7

Files are named ``<dataset>.xml`` and a ``MANIFEST.txt`` records the
generation parameters and the Table-1 statistics of each file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datagen.workload import DATASETS
from repro.xmlkit.serialize import serialize
from repro.xmlkit.stats import compute_stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.datagen")
    parser.add_argument("--out", type=Path, default=Path("corpora"),
                        help="output directory (default: ./corpora)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5)")
    parser.add_argument("--datasets", type=str, default="",
                        help="comma-separated subset, e.g. d1,d4 (default all)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-dataset default seed")
    args = parser.parse_args(argv)

    names = [d for d in args.datasets.split(",") if d] or list(DATASETS)
    args.out.mkdir(parents=True, exist_ok=True)

    manifest: list[str] = [f"scale={args.scale} seed={args.seed or 'default'}"]
    for name in names:
        spec = DATASETS.get(name)
        if spec is None:
            print(f"unknown dataset {name!r}", file=sys.stderr)
            return 2
        kwargs = {"scale": args.scale}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        doc = spec.generator(**kwargs)
        text = serialize(doc.root)
        path = args.out / f"{name}.xml"
        path.write_text(text, encoding="utf-8")
        stats = compute_stats(doc, with_size=False)
        line = (f"{name}: {len(text):,} bytes, {stats.n_elements} elements, "
                f"max depth {stats.max_depth}, "
                f"{'recursive' if stats.recursive else 'non-recursive'}")
        manifest.append(line)
        print(f"wrote {path}  ({line})")

    (args.out / "MANIFEST.txt").write_text("\n".join(manifest) + "\n",
                                           encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
