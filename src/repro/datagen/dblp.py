"""d5: dblp-style bibliography — shallow, bushy, non-recursive.

The dblp snapshot in the UW repository is a huge flat list of
publication records: average depth 3, maximum 6, 35 distinct tags, no
recursion.  This is the regime where the paper finds the pipelined
join comparable to or faster than TwigStack (no deep nesting for the
index to exploit; a single scan amortizes over many records).

Record mix mirrors dblp's: mostly ``article``/``inproceedings``, few
``proceedings``, rare ``phdthesis`` and ``www`` (the high-selectivity
targets of Q1-Q4).
"""

from __future__ import annotations

import random

from repro.xmlkit.tree import Document
from repro.datagen.core import GenContext, WeightedTags, sentence, word

__all__ = ["generate_d5"]

_KIND = WeightedTags([
    ("article", 0.44),
    ("inproceedings", 0.40),
    ("proceedings", 0.10),
    ("incollection", 0.03),
    ("phdthesis", 0.02),
    ("masterthesis", 0.01),
    ("www", 0.012),
])

_SCHOOLS = ("waterloo", "toronto", "stanford", "mit", "cmu", "ethz")
_JOURNALS = ("tods", "vldbj", "sigmod record", "tkde", "jacm")


def generate_d5(scale: float = 1.0, seed: int = 105) -> Document:
    """d5 analogue: flat bibliography (~16000*scale elements)."""
    target = max(100, int(16000 * scale))
    ctx = GenContext(seed, target)
    ctx.start("dblp")
    while not ctx.exhausted():
        _record(ctx, ctx.rng)
    ctx.end()
    return ctx.finish()


def _record(ctx: GenContext, rng: random.Random) -> None:
    kind = _KIND.choose(rng)
    ctx.start(kind, {"key": f"{kind}/{ctx.count}"})

    if kind == "proceedings":
        # ~60% of proceedings have editors; Q5/Q6 target these.
        if rng.random() < 0.6:
            for _ in range(rng.randint(1, 3)):
                ctx.leaf("editor", f"{word(rng)} {word(rng)}")
        ctx.leaf("title", sentence(rng, 4))
        ctx.leaf("booktitle", word(rng).upper())
        ctx.leaf("year", str(rng.randint(1980, 2004)))
        ctx.leaf("publisher", f"{word(rng)} press")
        if rng.random() < 0.5:
            ctx.leaf("isbn", str(rng.randint(10 ** 9, 10 ** 10 - 1)))
        if rng.random() < 0.55:
            ctx.leaf("url", f"db/conf/{word(rng)}.html")
    elif kind == "www":
        if rng.random() < 0.7:
            ctx.leaf("author", f"{word(rng)} {word(rng)}")
        ctx.leaf("title", sentence(rng, 3))
        if rng.random() < 0.65:
            ctx.leaf("url", f"http://{word(rng)}.example.org")
        if rng.random() < 0.5:
            ctx.leaf("editor", f"{word(rng)} {word(rng)}")
        if rng.random() < 0.6:
            ctx.leaf("year", str(rng.randint(1995, 2004)))
        if rng.random() < 0.2:
            ctx.leaf("note", sentence(rng, 2))
    elif kind in ("phdthesis", "masterthesis"):
        ctx.leaf("author", f"{word(rng)} {word(rng)}")
        ctx.leaf("title", sentence(rng, 5))
        ctx.leaf("year", str(rng.randint(1975, 2004)))
        if rng.random() < 0.8:
            ctx.leaf("school", rng.choice(_SCHOOLS))
        if rng.random() < 0.3:
            ctx.leaf("isbn", str(rng.randint(10 ** 9, 10 ** 10 - 1)))
    else:  # article / inproceedings / incollection
        for _ in range(rng.randint(1, 4)):
            ctx.leaf("author", f"{word(rng)} {word(rng)}")
        ctx.leaf("title", sentence(rng, 5))
        if kind == "article":
            ctx.leaf("journal", rng.choice(_JOURNALS))
            ctx.leaf("volume", str(rng.randint(1, 40)))
            if rng.random() < 0.7:
                ctx.leaf("number", str(rng.randint(1, 6)))
        else:
            ctx.leaf("booktitle", word(rng).upper())
        ctx.leaf("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
        ctx.leaf("year", str(rng.randint(1980, 2004)))
        if rng.random() < 0.45:
            ctx.leaf("ee", f"db/journals/{word(rng)}.html")
        if rng.random() < 0.25:
            ctx.leaf("crossref", f"conf/{word(rng)}")
        if rng.random() < 0.1:
            ctx.leaf("cite", f"ref{rng.randint(1, 999)}")
        if rng.random() < 0.05:
            ctx.leaf("note", sentence(rng, 2))
        if rng.random() < 0.04:
            ctx.leaf("cdrom", f"{word(rng).upper()}/{rng.randint(1, 9)}")
        if rng.random() < 0.03:
            ctx.leaf("month", str(rng.randint(1, 12)))
    ctx.end()
