"""Shared machinery for the deterministic dataset generators.

Each generator reproduces the *structural signature* of one of the
paper's Table-1 datasets — tag alphabet size, depth profile,
recursiveness, fan-out — at a laptop-friendly scale (the ``scale``
parameter multiplies the base element count).  Determinism comes from a
seeded :class:`random.Random` per generator call, so every test and
benchmark sees identical documents.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.xmlkit.tree import Document, DocumentBuilder

__all__ = ["WeightedTags", "GenContext", "word", "sentence"]

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform "
    "victor whiskey xray yankee zulu").split()


class WeightedTags:
    """Cumulative-weight tag chooser (stable across Python versions)."""

    def __init__(self, pairs: Sequence[tuple[str, float]]) -> None:
        self.tags = [tag for tag, _ in pairs]
        self.cumulative: list[float] = []
        total = 0.0
        for _, weight in pairs:
            total += weight
            self.cumulative.append(total)
        self.total = total

    def choose(self, rng: random.Random) -> str:
        point = rng.random() * self.total
        for index, bound in enumerate(self.cumulative):
            if point <= bound:
                return self.tags[index]
        return self.tags[-1]


class GenContext:
    """Builder + RNG + element budget for one generation run."""

    def __init__(self, seed: int, target_elements: int) -> None:
        self.rng = random.Random(seed)
        self.builder = DocumentBuilder()
        self.target = target_elements
        self.count = 0

    def exhausted(self) -> bool:
        return self.count >= self.target

    def start(self, tag: str, attrs: dict[str, str] | None = None) -> None:
        self.count += 1
        self.builder.start_element(tag, attrs)

    def end(self) -> None:
        self.builder.end_element()

    def leaf(self, tag: str, text: str | None = None,
             attrs: dict[str, str] | None = None) -> None:
        self.count += 1
        self.builder.element(tag, text, attrs)

    def finish(self) -> Document:
        return self.builder.finish()


def word(rng: random.Random) -> str:
    return rng.choice(_WORDS)


def sentence(rng: random.Random, n_words: int = 3) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n_words))
