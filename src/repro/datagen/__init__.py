"""Deterministic dataset generators and benchmark workloads (Table 1 / 2)."""

from repro.datagen.dblp import generate_d5
from repro.datagen.synthetic import generate_d1
from repro.datagen.treebank import generate_d4
from repro.datagen.workload import DATASETS, DatasetSpec, QuerySpec, measure_selectivity
from repro.datagen.xbench import generate_d2, generate_d3

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "QuerySpec",
    "generate_d1",
    "generate_d2",
    "generate_d3",
    "generate_d4",
    "generate_d5",
    "measure_selectivity",
]
