"""d4: Treebank-style deeply recursive dataset.

The real Treebank corpus (UW repository, licensed Penn Treebank data)
is parse trees encoded as XML: part-of-speech and phrase tags, extreme
depth (max 36), heavy recursion (``VP`` under ``VP`` under ``VP``...),
and a large tag alphabet (250).  This generator emits grammar-driven
parse trees with the same properties:

* phrase recursion through ``VP → VP PP``, ``NP → NP PP``, ``S``
  embedding (``SBAR → S``), driving both depth and recursion degree;
* a long tail of rare part-of-speech tags padding the alphabet toward
  250 distinct names.

What Table 3 exercises on d4 is exactly this regime: the pipelined
join is excluded (recursive), the bounded nested loop drowns in
overlapping subtree scans (DNF), TwigStack wins.
"""

from __future__ import annotations

import random

from repro.xmlkit.tree import Document
from repro.datagen.core import GenContext, word

__all__ = ["generate_d4"]

_MAX_DEPTH = 36

#: Rare filler tags to widen the alphabet toward Treebank's 250.
_RARE_TAGS = tuple(f"X{i}" for i in range(1, 201))

_POS = ("NN", "NNS", "NNP", "VB", "VBD", "VBZ", "JJ", "RB", "DT", "IN",
        "PRP", "CC", "CD", "TO", "MD", "WDT", "EX", "POS", "UH", "FW")


def generate_d4(scale: float = 1.0, seed: int = 104) -> Document:
    """d4 analogue: parse-tree forest (~15000*scale elements)."""
    target = max(100, int(15000 * scale))
    ctx = GenContext(seed, target)
    ctx.start("FILE")
    while not ctx.exhausted():
        _sentence(ctx, depth=2)
    ctx.end()
    return ctx.finish()


def _sentence(ctx: GenContext, depth: int) -> None:
    ctx.start("S")
    _np(ctx, depth + 1)
    _vp(ctx, depth + 1)
    ctx.end()


def _vp(ctx: GenContext, depth: int) -> None:
    rng = ctx.rng
    ctx.start("VP")
    if depth >= _MAX_DEPTH - 2 or ctx.exhausted():
        ctx.leaf("VB", word(rng))
        ctx.end()
        return
    roll = rng.random()
    if roll < 0.48:
        # VP -> VP PP : the recursion that makes d4 deep.
        _vp(ctx, depth + 1)
        _pp(ctx, depth + 1)
    elif roll < 0.66:
        ctx.leaf("VB", word(rng))
        _np(ctx, depth + 1)
        if rng.random() < 0.5:
            _pp(ctx, depth + 1)
    elif roll < 0.78:
        ctx.leaf("VBD", word(rng))
        _sbar(ctx, depth + 1)
    else:
        ctx.leaf("VB", word(rng))
        _pos_tail(ctx, rng)
    ctx.end()


def _np(ctx: GenContext, depth: int) -> None:
    rng = ctx.rng
    ctx.start("NP")
    if depth >= _MAX_DEPTH - 1 or ctx.exhausted():
        ctx.leaf("NN", word(rng))
        ctx.end()
        return
    roll = rng.random()
    if roll < 0.33:
        # NP -> NP PP : more recursion.
        _np(ctx, depth + 1)
        _pp(ctx, depth + 1)
    elif roll < 0.70:
        ctx.leaf("DT", word(rng))
        if rng.random() < 0.45:
            ctx.leaf("JJ", word(rng))
        ctx.leaf("NN", word(rng))
    else:
        ctx.leaf("NNP", word(rng))
        _pos_tail(ctx, rng)
    ctx.end()


def _pp(ctx: GenContext, depth: int) -> None:
    ctx.start("PP")
    ctx.leaf("IN", word(ctx.rng))
    if depth < _MAX_DEPTH - 1 and not ctx.exhausted():
        _np(ctx, depth + 1)
    ctx.end()


def _sbar(ctx: GenContext, depth: int) -> None:
    ctx.start("SBAR")
    ctx.leaf("WDT", word(ctx.rng))
    if depth < _MAX_DEPTH - 2 and not ctx.exhausted():
        _sentence(ctx, depth + 1)
    ctx.end()


def _pos_tail(ctx: GenContext, rng: random.Random) -> None:
    """Occasional rare tags: Treebank's long-tail alphabet."""
    if rng.random() < 0.35:
        ctx.leaf(rng.choice(_POS), word(rng))
    if rng.random() < 0.22:
        ctx.leaf(rng.choice(_RARE_TAGS), word(rng))
