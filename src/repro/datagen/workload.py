"""Datasets d1-d5 and query workloads Q1-Q6 (paper Section 5.1, Appendix A).

The paper classifies queries along two axes (Table 2): **selectivity**
(h: ~1% of nodes, m: ~10%, l: the most common patterns) and
**topology** (c: chain, b: branching).  Appendix A instantiates the
six categories per dataset; since our generators reproduce the paper
datasets' *structure* rather than their exact content, the queries
below keep each original's category and shape (axis mix, branch count,
tag roles) with tags adapted to the generated documents.  The
Table-2 reproduction test asserts the measured selectivities respect
``h < m < l`` per dataset with h below 2%.

Every query is a pure path expression — the paper eliminates
value-based constraints from the join experiments (Section 5.1) — and
has at least two NoK subtrees after decomposition, per the topology
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.xmlkit.stats import compute_stats
from repro.xmlkit.tree import Document
from repro.xpath.evaluator import evaluate_xpath
from repro.datagen.dblp import generate_d5
from repro.datagen.synthetic import generate_d1
from repro.datagen.treebank import generate_d4
from repro.datagen.xbench import generate_d2, generate_d3

__all__ = ["QuerySpec", "DatasetSpec", "DATASETS", "measure_selectivity"]


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: id, Table-2 category, path text."""

    qid: str         # "Q1".."Q6"
    category: str    # "hc","hb","mc","mb","lc","lb" — or "" (d5 has none)
    text: str

    @property
    def selectivity_class(self) -> str:
        return self.category[0] if self.category else ""

    @property
    def topology(self) -> str:
        return self.category[1] if self.category else ""


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: generator plus its Table-1 identity."""

    name: str
    generator: Callable[..., Document]
    recursive: bool
    origin: str                 # what the paper used
    queries: tuple[QuerySpec, ...]

    def generate(self, scale: float = 1.0) -> Document:
        return self.generator(scale=scale)

    def query(self, qid: str) -> QuerySpec:
        for spec in self.queries:
            if spec.qid == qid:
                return spec
        raise KeyError(qid)


DATASETS: dict[str, DatasetSpec] = {
    "d1": DatasetSpec(
        "d1", generate_d1, recursive=True,
        origin="synthetic document from a recursive DTD",
        queries=(
            QuerySpec("Q1", "hc", "//a//b4"),
            QuerySpec("Q2", "hb", "//a[//b2][//b1]//b3"),
            QuerySpec("Q3", "mc", "//a//c2/b1/c2/b1/c2//b1"),
            QuerySpec("Q4", "mb", "//a//c2/b1/c2[//c1]/b1//c3"),
            QuerySpec("Q5", "lc", "//b1//c2//b1"),
            QuerySpec("Q6", "lb", "//b1//c2[//c3]//b1"),
        )),
    "d2": DatasetSpec(
        "d2", generate_d2, recursive=False,
        origin="XBench address.xml",
        queries=(
            QuerySpec("Q1", "hc", "//addresses//address//country_id"),
            QuerySpec("Q2", "hb", "//address[//zip_code][//country_id]"),
            QuerySpec("Q3", "mc", "//addresses//address//name_of_state"),
            QuerySpec("Q4", "mb",
                      "//address[//name_of_state][//zip_code]//street_address"),
            QuerySpec("Q5", "lc", "//address[//street_address]"),
            QuerySpec("Q6", "lb",
                      "//address[//street_address][//zip_code][//name_of_city]"),
        )),
    "d3": DatasetSpec(
        "d3", generate_d3, recursive=False,
        origin="XBench catalog.xml",
        queries=(
            QuerySpec("Q1", "hc", "//item/attributes//length"),
            QuerySpec("Q2", "hb", "//item[attributes//length][//subtitle]//isbn"),
            QuerySpec("Q3", "mc", "//item//street_address"),
            QuerySpec("Q4", "mb",
                      "//item[//street_information][//mailing_address]//street_address"),
            QuerySpec("Q5", "lc", "//author//name/*"),
            QuerySpec("Q6", "lb", "//author[//first_name][//last_name]/name/*"),
        )),
    "d4": DatasetSpec(
        "d4", generate_d4, recursive=True,
        origin="UW repository Treebank (Penn Treebank parse trees)",
        queries=(
            QuerySpec("Q1", "hc", "//VP/VP/NP//NN"),
            QuerySpec("Q2", "hb", "//VP[VP]//VP[PP]/NP/NN"),
            QuerySpec("Q3", "mc", "//VP//PP/NP//NN"),
            QuerySpec("Q4", "mb", "//VP[//SBAR]//NP//NN"),
            QuerySpec("Q5", "lc", "//S//VP//NP"),
            QuerySpec("Q6", "lb", "//S[//PP]//VP//NP"),
        )),
    "d5": DatasetSpec(
        "d5", generate_d5, recursive=False,
        origin="UW repository dblp snapshot",
        # The paper's Appendix assigns no h/m/l categories to d5.
        queries=(
            QuerySpec("Q1", "", "//phdthesis//author"),
            QuerySpec("Q2", "", "//phdthesis[//author][//school]"),
            QuerySpec("Q3", "", "//www[//url]"),
            QuerySpec("Q4", "", "//www[//editor][//title][//year]"),
            QuerySpec("Q5", "", "//proceedings[//editor]"),
            QuerySpec("Q6", "", "//proceedings[//editor][//year][//url]"),
        )),
}


def measure_selectivity(doc: Document, query: str,
                        n_elements: int | None = None) -> float:
    """Fraction of the document's elements a path query returns."""
    if n_elements is None:
        n_elements = compute_stats(doc, with_size=False).n_elements
    if n_elements == 0:
        return 0.0
    return len(evaluate_xpath(doc, query)) / n_elements
