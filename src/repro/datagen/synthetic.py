"""d1: synthetic recursive dataset (Table 1's recursive-DTD document).

Structural signature to reproduce: recursive (tags nest within
themselves), 8 distinct tags, average depth ≈ 7-8, maximum depth 10 (slightly deeper than the paper's 8, to reproduce the recursion-degree regime that separates the join algorithms at our smaller scale).

The recursion core is the mutual nesting ``b1 → c2 → b1 → ...`` —
that is what makes ``//b1//c2//b1`` a low-selectivity query and what
breaks the pipelined join's order-preservation on this dataset.  Tag
``b4`` is rare (the high-selectivity target of Q1); ``b3`` is uncommon
(Q2); the ``c2/b1/c2/b1`` child chain occurs at moderate frequency
(Q3/Q4).
"""

from __future__ import annotations


from repro.xmlkit.tree import Document
from repro.datagen.core import GenContext, WeightedTags

__all__ = ["generate_d1"]

#: children menus per tag; the b1/c2 pair is mutually recursive.
_MENU = {
    "a": WeightedTags([("b1", 0.40), ("c2", 0.22), ("b2", 0.10), ("c1", 0.12),
                       ("c3", 0.12), ("b3", 0.03), ("b4", 0.01)]),
    "b1": WeightedTags([("c2", 0.62), ("c3", 0.28), ("b2", 0.10)]),
    "c2": WeightedTags([("b1", 0.62), ("c3", 0.26), ("c1", 0.12)]),
    "b2": WeightedTags([("c3", 0.70), ("c1", 0.30)]),
    "b3": WeightedTags([("c3", 1.0)]),
    "c1": WeightedTags([("c3", 1.0)]),
}

_MAX_DEPTH = 10


def generate_d1(scale: float = 1.0, seed: int = 101) -> Document:
    """Generate the d1 analogue with about ``12000 * scale`` elements."""
    target = max(50, int(12000 * scale))
    ctx = GenContext(seed, target)
    ctx.start("a")
    # Keep extending the root's children until the element budget is
    # spent; each top-level subtree grows to the depth limit so the
    # depth profile stays deep regardless of scale.
    while not ctx.exhausted():
        _grow(ctx, "a", depth=2)
    ctx.end()
    return ctx.finish()


def _grow(ctx: GenContext, parent_tag: str, depth: int) -> None:
    rng = ctx.rng
    menu = _MENU.get(parent_tag)
    if menu is None or depth > _MAX_DEPTH or ctx.exhausted():
        return
    tag = menu.choose(rng)
    ctx.start(tag)
    if depth < _MAX_DEPTH:
        # Deep documents: interior nodes branch 1-3 ways, biased to
        # continue downward so average depth stays near the maximum.
        n_children = rng.choices((1, 2, 3), weights=(0.45, 0.35, 0.20))[0]
        for _ in range(n_children):
            if not ctx.exhausted():
                _grow(ctx, tag, depth + 1)
    ctx.end()
