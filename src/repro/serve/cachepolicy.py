"""Result-cache policy/storage split: a byte-accounted TTL cache.

PR 4's result cache was a bare ``OrderedDict`` capped by *entry count*
— no time-to-live, no size accounting (a scalar aggregate and a whole
serialized subtree cost the same slot), and no proof that a retired
snapshot's entries actually left.  This module replaces it with the
policy/storage split scrapy uses for its HTTP cache: a dumb, auditable
:class:`ResultCacheStorage` holding the bytes, driven by a pluggable
:class:`CachePolicy` making the decisions.

**Storage** (:class:`ResultCacheStorage`)
    * every entry is charged its *serialized byte size* (plus a fixed
      per-entry overhead, so a million empty results still account) —
      the tree-pattern survey's observation that XML query results
      range from scalars to whole subtrees is exactly why entries, not
      bytes, was the wrong unit;
    * eviction is LRU **by bytes**: inserts evict least-recently-used
      entries until the byte budget fits (expired entries go first);
    * a per-snapshot index maps ``(document, snapshot id)`` to the
      entry keys under it, so :meth:`invalidate_snapshot` is
      proportional to the snapshot's entries, not the cache — and every
      invalidation *audits*: after the indexed drop it scans for
      survivors and counts them (the count must be zero; the serving
      tests pin it);
    * hit/miss counters come in two horizons — process-lifetime and a
      *window* that resets on :meth:`resize`/:meth:`clear`, so a
      resized cache reports a ratio about its current configuration,
      not about a configuration that no longer exists.

**Policy** (:class:`CachePolicy` / :class:`AdaptiveCachePolicy`)
    decides ``should_cache`` (admission — oversized results are never
    admitted), ``ttl_for`` (expiry) and, for the adaptive variant, how
    the byte budget itself moves: fed by the storage's windowed hit
    ratio and the entry-size histogram the serving layer records into
    the document's :class:`~repro.obs.statstore.StatsStore`, it grows
    the budget while hits are being lost to byte-pressure evictions and
    shrinks it when the window says the cache is not earning its keep.

Metric families (process-wide, ``repro_result_cache_*``):

==============================================  ==============================
``repro_result_cache_bytes``                    gauge: bytes currently held
``repro_result_cache_evictions_total``          entries evicted by byte/entry
                                                pressure
``repro_result_cache_expirations_total``        entries dropped past their TTL
``repro_result_cache_invalidated_total``        entries dropped by snapshot
                                                retirement
==============================================  ==============================

The facade spells all of this as the ``result_cache=`` spec (see
:func:`resolve_result_cache`): ``None`` for defaults, ``0``/``"off"``
to disable, an int/``"64kb"``/``"16mb"`` byte budget, a mapping of
knobs, a :class:`CachePolicy`, or a prebuilt storage.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import UsageError
from repro.obs.metrics import REGISTRY, bucket_quantile
from repro.obs.statstore import RESULT_SIZE_BUCKETS

__all__ = [
    "DEFAULT_RESULT_CACHE_BYTES",
    "ENTRY_OVERHEAD_BYTES",
    "ENTRY_SIZE_BUCKETS",
    "AdaptiveCachePolicy",
    "CacheEntry",
    "CachePolicy",
    "ResultCacheStorage",
    "default_result_sizer",
    "resolve_result_cache",
]

_CACHE_BYTES = REGISTRY.gauge(
    "repro_result_cache_bytes",
    "Bytes currently held by snapshot-keyed result caches")
_EVICTIONS = REGISTRY.counter(
    "repro_result_cache_evictions_total",
    "Result-cache entries evicted by byte/entry pressure")
_EXPIRATIONS = REGISTRY.counter(
    "repro_result_cache_expirations_total",
    "Result-cache entries dropped past their TTL")
_INVALIDATED = REGISTRY.counter(
    "repro_result_cache_invalidated_total",
    "Result-cache entries dropped by snapshot retirement")

#: Default byte budget when the ``result_cache=`` spec names none.
DEFAULT_RESULT_CACHE_BYTES = 16 * 1024 * 1024

#: Fixed per-entry charge on top of the serialized payload (key tuple,
#: dict slot, index membership) so zero-byte results still account.
ENTRY_OVERHEAD_BYTES = 256

#: Entry-size histogram buckets (bytes) — the serving layer records
#: entry sizes into each document's StatsStore under these buckets and
#: the adaptive policy reads the distribution back.
ENTRY_SIZE_BUCKETS = RESULT_SIZE_BUCKETS

_UNITS = {"b": 1, "kb": 1024, "mb": 1024 ** 2, "gb": 1024 ** 3}


def default_result_sizer(result: Any) -> int:
    """Serialized byte size of one result — the unit entries are
    charged in.  Computed once at admission (on a worker thread, where
    the result was just produced), never on the hit path."""
    return len(result.serialize().encode("utf-8"))


class CacheEntry:
    """One stored result: payload, byte charge, snapshot, expiry."""

    __slots__ = ("key", "result", "nbytes", "snapshot_key", "expires_at")

    def __init__(self, key: tuple, result: Any, nbytes: int,
                 snapshot_key: tuple, expires_at: float | None) -> None:
        self.key = key
        self.result = result
        self.nbytes = nbytes
        self.snapshot_key = snapshot_key
        self.expires_at = expires_at

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class CachePolicy:
    """The decision half of the split: admission, TTL, sizing.

    Parameters
    ----------
    ttl_s:
        Time-to-live in seconds for every admitted entry (``None``
        disables expiry — snapshot immutability already guarantees
        correctness; TTL is a freshness/footprint knob, not a
        correctness one).
    max_entry_bytes:
        Admission bound: results serializing larger than this are never
        cached (they would evict many small, reusable entries for one
        giant, rarely-repeated one).  ``None`` admits any size that
        fits the budget.
    """

    def __init__(self, *, ttl_s: float | None = None,
                 max_entry_bytes: int | None = None) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise UsageError(f"ttl_s must be > 0, got {ttl_s}")
        if max_entry_bytes is not None and max_entry_bytes <= 0:
            raise UsageError(
                f"max_entry_bytes must be > 0, got {max_entry_bytes}")
        self.ttl_s = ttl_s
        self.max_entry_bytes = max_entry_bytes

    def should_cache(self, key: tuple, result: Any, nbytes: int) -> bool:
        """Admission decision for one freshly computed result."""
        return self.max_entry_bytes is None or nbytes <= self.max_entry_bytes

    def ttl_for(self, key: tuple, result: Any, nbytes: int) -> float | None:
        """Per-entry TTL (seconds); ``None`` means no expiry."""
        return self.ttl_s

    def adapt(self, storage: ResultCacheStorage,
              stats_stores: Callable[[], list] | None = None) -> int | None:
        """Sizing hook: return a new byte budget, or ``None`` to keep.

        The base policy never moves the budget; see
        :class:`AdaptiveCachePolicy`.
        """
        return None

    def describe(self) -> dict:
        """JSON-able policy summary for the ``stats()`` payload."""
        return {
            "policy": type(self).__name__,
            "ttl_s": self.ttl_s,
            "max_entry_bytes": self.max_entry_bytes,
        }


class AdaptiveCachePolicy(CachePolicy):
    """Hit-ratio-driven byte-budget sizing over the base policy.

    Every ``interval`` window lookups the policy re-decides the budget
    from two observed signals:

    * the storage's **windowed hit ratio** (the window resets on every
      resize, so each decision is measured against the budget it set);
    * the **entry-size histogram** recorded into the documents'
      :class:`~repro.obs.statstore.StatsStore` by the serving layer
      (observed p95 entry bytes — how big this workload's results
      actually are).

    Budget moves: while the ratio is at least ``grow_ratio`` *and* the
    window lost entries to byte-pressure evictions, the budget doubles
    (hits are being evicted away); while the ratio is at most
    ``shrink_ratio``, it halves (the cache is not earning its bytes).
    Both directions are clamped to ``[min_bytes, max_bytes]``, and the
    admission bound ``max_entry_bytes`` follows the observed sizes
    (``entry_headroom`` × p95) so one outlier subtree cannot flush the
    working set.
    """

    def __init__(self, *, ttl_s: float | None = None,
                 max_entry_bytes: int | None = None,
                 min_bytes: int = 1024 * 1024,
                 max_bytes: int = 256 * 1024 * 1024,
                 grow_ratio: float = 0.6, shrink_ratio: float = 0.1,
                 interval: int = 128, entry_headroom: float = 8.0) -> None:
        super().__init__(ttl_s=ttl_s, max_entry_bytes=max_entry_bytes)
        if min_bytes <= 0 or max_bytes < min_bytes:
            raise UsageError(
                f"need 0 < min_bytes <= max_bytes, got {min_bytes}"
                f"/{max_bytes}")
        if not 0.0 <= shrink_ratio < grow_ratio <= 1.0:
            raise UsageError(
                "need 0 <= shrink_ratio < grow_ratio <= 1, got "
                f"{shrink_ratio}/{grow_ratio}")
        if interval < 1:
            raise UsageError(f"interval must be >= 1, got {interval}")
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.grow_ratio = grow_ratio
        self.shrink_ratio = shrink_ratio
        self.interval = interval
        self.entry_headroom = entry_headroom
        #: (grew, shrank, entry-bound updates) — auditable in stats().
        self.decisions = {"grown": 0, "shrunk": 0, "entry_bound": 0}

    def adapt(self, storage: ResultCacheStorage,
              stats_stores: Callable[[], list] | None = None) -> int | None:
        window = storage.window_snapshot()
        if window["lookups"] < self.interval:
            return None
        # Follow the observed entry sizes before judging the ratio: the
        # admission bound shapes what the next window can even hold.
        if stats_stores is not None:
            p95 = _observed_entry_p95(stats_stores())
            if p95 is not None:
                bound = max(ENTRY_OVERHEAD_BYTES * 4,
                            int(p95 * self.entry_headroom))
                if bound != self.max_entry_bytes:
                    self.max_entry_bytes = bound
                    self.decisions["entry_bound"] += 1
        ratio = window["hit_ratio"]
        budget = storage.max_bytes
        if ratio is None:
            return None
        if ratio >= self.grow_ratio and window["evictions"] > 0 \
                and budget < self.max_bytes:
            self.decisions["grown"] += 1
            return min(budget * 2, self.max_bytes)
        if ratio <= self.shrink_ratio and budget > self.min_bytes:
            self.decisions["shrunk"] += 1
            return max(budget // 2, self.min_bytes)
        # Verdict reached, budget stands: restart the measurement window
        # so the next decision is not diluted by this one's samples.
        storage.reset_window()
        return None

    def describe(self) -> dict:
        payload = super().describe()
        payload.update({
            "min_bytes": self.min_bytes, "max_bytes": self.max_bytes,
            "grow_ratio": self.grow_ratio, "shrink_ratio": self.shrink_ratio,
            "interval": self.interval, "decisions": dict(self.decisions),
        })
        return payload


def _observed_entry_p95(stores: list) -> float | None:
    """Pooled p95 of the result-size histograms across stats stores."""
    pooled = [0] * len(ENTRY_SIZE_BUCKETS)
    n = 0
    for store in stores:
        histogram = getattr(store, "result_bytes", None)
        if histogram is None:
            continue
        for counts, _total, cell_n in histogram.cells().values():
            for index, count in enumerate(counts):
                pooled[index] += count
            n += cell_n
    if n == 0:
        return None
    return bucket_quantile(ENTRY_SIZE_BUCKETS, pooled, n, 0.95)


class ResultCacheStorage:
    """The mechanics half: byte-accounted entries, snapshot index, LRU.

    Thread-safe; one instance is owned by each
    :class:`~repro.serve.service.QueryService`.  ``clock`` is
    injectable for deterministic TTL tests.
    """

    def __init__(self, max_bytes: int = DEFAULT_RESULT_CACHE_BYTES, *,
                 max_entries: int | None = None,
                 policy: CachePolicy | None = None,
                 sizer: Callable[[Any], int] = default_result_sizer,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_bytes < 0:
            raise UsageError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise UsageError(
                f"max_entries must be >= 0, got {max_entries}")
        self.policy = policy if policy is not None else CachePolicy()
        self.sizer = sizer
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        #: (document name, snapshot id) -> keys cached under it.
        self._by_snapshot: dict[tuple, set[tuple]] = {}
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.current_bytes = 0
        # Lifetime counters (never reset while the storage lives).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidated = 0
        self.rejected = 0
        # Window counters: reset on resize()/clear() — satellite fix
        # for the stale post-resize hit ratio.
        self._window_hits = 0
        self._window_misses = 0
        self._window_evictions = 0
        self._window_started = self.clock()
        # The snapshot-invalidation audit ledger.
        self.snapshots_invalidated = 0
        self.audit_survivors = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether entries can be admitted at all."""
        return self.max_bytes > 0 and self.max_entries != 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def window_snapshot(self) -> dict:
        with self._lock:
            lookups = self._window_hits + self._window_misses
            return {
                "hits": self._window_hits,
                "misses": self._window_misses,
                "lookups": lookups,
                "evictions": self._window_evictions,
                "hit_ratio": (self._window_hits / lookups
                              if lookups else None),
                "age_s": round(self.clock() - self._window_started, 3),
            }

    def reset_window(self) -> None:
        with self._lock:
            self._reset_window_locked()

    def _reset_window_locked(self) -> None:
        self._window_hits = 0
        self._window_misses = 0
        self._window_evictions = 0
        self._window_started = self.clock()

    def stats(self) -> dict:
        """The ``result_cache`` section of ``service.stats()``."""
        window = self.window_snapshot()
        with self._lock:
            lookups = self.hits + self.misses
            payload = {
                "size": len(self._entries),
                "bytes": self.current_bytes,
                "capacity_bytes": self.max_bytes,
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": (round(self.hits / lookups, 4)
                              if lookups else None),
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidated": self.invalidated,
                "rejected": self.rejected,
                "audit": {
                    "snapshots_invalidated": self.snapshots_invalidated,
                    "survivors": self.audit_survivors,
                },
            }
        if window["hit_ratio"] is not None:
            window["hit_ratio"] = round(window["hit_ratio"], 4)
        payload["window"] = window
        payload.update(self.policy.describe())
        return payload

    # ------------------------------------------------------------------
    # The data path.
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> Any | None:
        """Look one key up; expired entries count as misses and drop."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.expired(now):
                self._drop_locked(entry)
                self.expirations += 1
                _EXPIRATIONS.inc()
                entry = None
            if entry is None:
                self.misses += 1
                self._window_misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._window_hits += 1
            return entry.result

    def put(self, key: tuple, result: Any,
            nbytes: int | None = None) -> bool:
        """Admit one result under the policy; returns whether it cached.

        ``key[0]`` / ``key[1]`` are the document name and snapshot id
        (the serving layer's key layout) — they index the entry for
        per-snapshot invalidation.  ``nbytes`` lets the caller pass a
        pre-computed byte charge (the serving layer sizes once, records
        the size into the stats store, then admits).
        """
        if not self.enabled:
            return False
        if nbytes is None:
            nbytes = self.sizer(result) + ENTRY_OVERHEAD_BYTES
        if nbytes > self.max_bytes \
                or not self.policy.should_cache(key, result, nbytes):
            with self._lock:
                self.rejected += 1
            return False
        ttl = self.policy.ttl_for(key, result, nbytes)
        now = self.clock()
        entry = CacheEntry(key, result, nbytes, (key[0], key[1]),
                           now + ttl if ttl is not None else None)
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._drop_locked(old)
            self._evict_for_locked(nbytes, now)
            self._entries[key] = entry
            self._by_snapshot.setdefault(entry.snapshot_key,
                                         set()).add(key)
            self.current_bytes += nbytes
            _CACHE_BYTES.set(self.current_bytes)
        return True

    def entry_bytes(self, key: tuple) -> int | None:
        """Byte charge of one live entry (tests/introspection)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.nbytes if entry is not None else None

    # ------------------------------------------------------------------
    # Lifecycle: invalidation, resize, clear.
    # ------------------------------------------------------------------

    def invalidate_snapshot(self, name: str, snapshot_id: int) -> int:
        """Synchronously drop every entry of one retired snapshot.

        Runs inside the catalog's retire notification, so by the time
        ``unpin``/``commit`` returns there is no window in which a
        retired snapshot's results can still be served.  The drop is
        indexed (proportional to the snapshot's entries); the **audit**
        then scans the full cache for survivors — the count is kept and
        must stay zero (the regression test asserts it).
        """
        snapshot_key = (name, snapshot_id)
        with self._lock:
            keys = self._by_snapshot.pop(snapshot_key, set())
            dropped = 0
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self.current_bytes -= entry.nbytes
                    dropped += 1
            # Audit: prove the index covered everything.  A survivor
            # here means the index and the entry map disagreed — a
            # lifecycle bug the counter makes visible instead of letting
            # LRU pressure quietly paper over it.
            survivors = [key for key, entry in self._entries.items()
                         if entry.snapshot_key == snapshot_key]
            for key in survivors:
                entry = self._entries.pop(key)
                self.current_bytes -= entry.nbytes
                dropped += 1
            self.snapshots_invalidated += 1
            self.audit_survivors += len(survivors)
            self.invalidated += dropped
            _CACHE_BYTES.set(self.current_bytes)
        if dropped:
            _INVALIDATED.inc(dropped)
        return dropped

    def resize(self, max_bytes: int | None = None,
               max_entries: int | None = None) -> None:
        """Move the budget; evicts down to it and resets the window."""
        with self._lock:
            if max_bytes is not None:
                if max_bytes < 0:
                    raise UsageError(
                        f"max_bytes must be >= 0, got {max_bytes}")
                self.max_bytes = max_bytes
            if max_entries is not None:
                self.max_entries = max_entries
            self._evict_for_locked(0, self.clock())
            self._reset_window_locked()
            _CACHE_BYTES.set(self.current_bytes)

    def clear(self) -> int:
        """Drop everything; resets the window; returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_snapshot.clear()
            self.current_bytes = 0
            self._reset_window_locked()
            _CACHE_BYTES.set(0)
            return dropped

    # ------------------------------------------------------------------
    # Internals (lock held).
    # ------------------------------------------------------------------

    def _drop_locked(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.key, None)
        keys = self._by_snapshot.get(entry.snapshot_key)
        if keys is not None:
            keys.discard(entry.key)
            if not keys:
                del self._by_snapshot[entry.snapshot_key]
        self.current_bytes -= entry.nbytes
        _CACHE_BYTES.set(self.current_bytes)

    def _evict_for_locked(self, incoming: int, now: float) -> None:
        """Make room for ``incoming`` bytes: expired first, then LRU."""
        if self.current_bytes + incoming > self.max_bytes:
            expired = [e for e in self._entries.values() if e.expired(now)]
            for entry in expired:
                self._drop_locked(entry)
                self.expirations += 1
                _EXPIRATIONS.inc()
        while self._entries and (
                self.current_bytes + incoming > self.max_bytes
                or (self.max_entries is not None
                    and len(self._entries) >= self.max_entries)):
            _key, entry = self._entries.popitem(last=False)
            keys = self._by_snapshot.get(entry.snapshot_key)
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._by_snapshot[entry.snapshot_key]
            self.current_bytes -= entry.nbytes
            self.evictions += 1
            self._window_evictions += 1
            _EVICTIONS.inc()
        _CACHE_BYTES.set(self.current_bytes)


def _parse_bytes(text: str) -> int:
    """``"64kb"`` / ``"16mb"`` / ``"1048576"`` → bytes."""
    cleaned = text.strip().lower().replace("_", "")
    for suffix in ("gb", "mb", "kb", "b"):
        if cleaned.endswith(suffix):
            number = cleaned[:-len(suffix)].strip()
            try:
                return int(float(number) * _UNITS[suffix])
            except ValueError:
                break
    try:
        return int(cleaned)
    except ValueError:
        raise UsageError(
            f"cannot parse result-cache byte size {text!r} "
            "(expected e.g. 65536, \"64kb\", \"16mb\")") from None


def resolve_result_cache(spec: Any) -> ResultCacheStorage | None:
    """Resolve the facade's ``result_cache=`` spec into a storage.

    ============================  =====================================
    spec                          meaning
    ============================  =====================================
    ``None``                      default 16 MiB byte-LRU, no TTL
    ``0`` / ``False`` / ``"off"`` caching disabled (returns ``None``)
    ``int``                       byte budget
    ``"64kb"`` / ``"16mb"``       byte budget, unit-suffixed
    mapping                       knobs: ``max_bytes``, ``max_entries``,
                                  ``ttl_s``, ``max_entry_bytes``,
                                  ``adaptive`` (bool or knob mapping)
    :class:`CachePolicy`          default budget under that policy
    :class:`ResultCacheStorage`   used as-is
    ============================  =====================================
    """
    if spec is None:
        return ResultCacheStorage()
    if isinstance(spec, ResultCacheStorage):
        return spec
    if isinstance(spec, CachePolicy):
        return ResultCacheStorage(policy=spec)
    if spec is False or (isinstance(spec, int) and spec == 0):
        return None
    if isinstance(spec, str):
        if spec.strip().lower() in ("off", "none", "disabled", "0"):
            return None
        return ResultCacheStorage(max_bytes=_parse_bytes(spec))
    if isinstance(spec, int):
        if spec < 0:
            raise UsageError(f"result_cache byte budget must be >= 0, "
                             f"got {spec}")
        return ResultCacheStorage(max_bytes=spec)
    if isinstance(spec, Mapping):
        knobs = dict(spec)
        max_bytes = knobs.pop("max_bytes", DEFAULT_RESULT_CACHE_BYTES)
        if isinstance(max_bytes, str):
            max_bytes = _parse_bytes(max_bytes)
        max_entries = knobs.pop("max_entries", None)
        if max_entries == 0 or max_bytes == 0:
            return None
        adaptive = knobs.pop("adaptive", False)
        ttl_s = knobs.pop("ttl_s", None)
        max_entry_bytes = knobs.pop("max_entry_bytes", None)
        if knobs:
            raise UsageError(
                "unknown result_cache knobs: "
                + ", ".join(sorted(map(str, knobs))))
        if adaptive:
            extra = dict(adaptive) if isinstance(adaptive, Mapping) else {}
            policy: CachePolicy = AdaptiveCachePolicy(
                ttl_s=ttl_s, max_entry_bytes=max_entry_bytes, **extra)
        else:
            policy = CachePolicy(ttl_s=ttl_s,
                                 max_entry_bytes=max_entry_bytes)
        return ResultCacheStorage(max_bytes=max_bytes,
                                  max_entries=max_entries, policy=policy)
    raise UsageError(
        f"cannot interpret result_cache spec {spec!r} (expected None, "
        "0/\"off\", a byte budget, a knob mapping, a CachePolicy or a "
        "ResultCacheStorage)")
