"""The document catalog: named documents, versioned by snapshot.

A :class:`Catalog` maps names to their *current* :class:`Snapshot` and
hands out per-snapshot engines whose plan caches are keyed by snapshot
id — the serving layer's unit of isolation:

* **readers** ``pin()`` the current snapshot (a refcount, not a lock),
  query it through ``engine_for()``, and ``unpin()`` when done; a
  pinned snapshot survives any number of publishes;
* **writers** run copy-on-write batches via ``updater()``; commit
  publishes the fork as the next snapshot atomically under the catalog
  lock — the only synchronization point, never held during query
  execution;
* a snapshot with no pins that is no longer current is **retired**: its
  id joins the dropped set (the SV001 rule's ground truth), its engine
  is released, its plans are purged from the shared per-document
  :class:`~repro.engine.plancache.PlanCache`, and retire listeners fire
  (the query service uses this to purge its result cache).

All engines of one document share one plan cache; entries are keyed by
the snapshot fingerprint (id + statistics), so plans compiled against
different versions never alias — the PR-2 fingerprint mechanism carried
over to multi-version serving.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator

from repro.engine.plancache import PlanCache
from repro.engine.prepared import CachedPlan
from repro.engine.session import Engine
from repro.errors import UsageError
from repro.obs.metrics import REGISTRY
from repro.obs.statstore import StatsStore
from repro.serve.snapshot import Snapshot, SnapshotUpdater
from repro.xmlkit.index import TagIndex
from repro.xmlkit.parser import parse
from repro.xmlkit.summary import StructuralSummary
from repro.xmlkit.stats import compute_stats
from repro.xmlkit.tree import Document
from repro.xmlkit.update import UpdateReport

__all__ = ["Catalog"]

_PUBLISHES = REGISTRY.counter(
    "repro_snapshot_publishes_total",
    "Snapshots published by update-batch commits")
_RETIRES = REGISTRY.counter(
    "repro_snapshot_retires_total",
    "Snapshots retired (unpinned and superseded)")
_LIVE = REGISTRY.gauge(
    "repro_snapshots_live",
    "Currently live (current or pinned) snapshots across the catalog")


class _Entry:
    """Per-document state; all fields guarded by the catalog lock."""

    __slots__ = ("name", "current", "pins", "dropped", "plan_cache",
                 "engines", "tag_indexes", "stats_store", "summaries")

    def __init__(self, name: str, snapshot: Snapshot,
                 plan_cache_capacity: int) -> None:
        self.name = name
        self.current = snapshot
        #: snapshot_id -> reader refcount.
        self.pins: dict[int, int] = {}
        #: ids of retired snapshots (never reused, never resurrected).
        self.dropped: set[int] = set()
        #: one plan cache shared by every version's engine.
        self.plan_cache = PlanCache(plan_cache_capacity)
        #: one runtime statistics store shared the same way: recorded
        #: actuals (and feedback decisions) survive snapshot churn —
        #: entries are keyed by fingerprint, so versions never mix.
        self.stats_store = StatsStore()
        #: snapshot_id -> Engine bound to that version.
        self.engines: dict[int, Engine] = {}
        #: snapshot_id -> the version's one TagIndex.  Snapshots are
        #: immutable, so the index never needs invalidation — it is
        #: built at most once per version and dropped with it.  Cached
        #: here (not only on the engine) so cost-model and twigstack
        #: paths share the materialized lists however the engine is
        #: (re)created.
        self.tag_indexes: dict[int, TagIndex] = {}
        #: snapshot_id -> the version's structural summary (query-lint
        #: oracle).  Cached like the tag index: snapshots are immutable,
        #: so it is built at most once per version and dropped with it.
        self.summaries: dict[int, StructuralSummary] = {}


class Catalog:
    """A registry of named documents with snapshot-isolated versions."""

    def __init__(self, plan_cache_capacity: int = 128,
                 feedback: bool = False,
                 analyze_queries: bool = True) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._next_id = 1
        self._plan_cache_capacity = plan_cache_capacity
        #: Feedback-driven strategy selection for every snapshot engine
        #: this catalog creates (see :class:`repro.engine.session.Engine`).
        self.feedback = feedback
        #: Query lint + pruning rewrites for every snapshot engine this
        #: catalog creates; ``False`` is the differential escape hatch.
        self.analyze_queries = analyze_queries
        self._retire_listeners: list[Callable[[Snapshot], None]] = []

    # ------------------------------------------------------------------
    # Registration and lookup.
    # ------------------------------------------------------------------

    def register(self, name: str, source: Document | str) -> Snapshot:
        """Register a document (a parsed tree or XML text) under ``name``.

        The document becomes snapshot 1 of the name *without* a fork:
        the catalog takes ownership, so the caller must not mutate it
        afterwards (use :meth:`updater`).
        """
        doc = parse(source) if isinstance(source, str) else source
        with self._lock:
            if name in self._entries:
                raise UsageError(f"document {name!r} is already registered")
            snapshot = self._make_snapshot(name, doc)
            self._entries[name] = _Entry(name, snapshot,
                                         self._plan_cache_capacity)
            _LIVE.set(self._live_count())
        return snapshot

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def current(self, name: str) -> Snapshot:
        """The current snapshot of ``name`` (not pinned — may retire
        underneath the caller; use :meth:`pin` around query work)."""
        with self._lock:
            return self._entry(name).current

    # ------------------------------------------------------------------
    # Reader protocol: pin / query / unpin.
    # ------------------------------------------------------------------

    def pin(self, name: str) -> Snapshot:
        """Pin the current snapshot for reading; pairs with :meth:`unpin`."""
        with self._lock:
            entry = self._entry(name)
            snapshot = entry.current
            entry.pins[snapshot.snapshot_id] = \
                entry.pins.get(snapshot.snapshot_id, 0) + 1
            return snapshot

    def unpin(self, snapshot: Snapshot) -> None:
        """Release a pin; the last unpin of a superseded snapshot retires it."""
        retired: Snapshot | None = None
        with self._lock:
            entry = self._entry(snapshot.name)
            sid = snapshot.snapshot_id
            count = entry.pins.get(sid, 0)
            if count <= 0:
                raise UsageError(
                    f"snapshot {sid} of {snapshot.name!r} is not pinned")
            if count == 1:
                del entry.pins[sid]
                if entry.current.snapshot_id != sid:
                    retired = self._retire(entry, snapshot)
            else:
                entry.pins[sid] = count - 1
        if retired is not None:
            self._notify_retired(retired)

    def engine_for(self, snapshot: Snapshot) -> Engine:
        """The engine bound to one snapshot (created once per version).

        The engine shares the document's plan cache, carries the
        snapshot id (stamped into every plan it compiles), and reuses
        the snapshot's precomputed statistics.
        """
        with self._lock:
            entry = self._entry(snapshot.name)
            sid = snapshot.snapshot_id
            if sid in entry.dropped:
                raise UsageError(
                    f"snapshot {sid} of {snapshot.name!r} has been dropped")
            engine = entry.engines.get(sid)
            if engine is None:
                engine = Engine(snapshot.doc, plan_cache=entry.plan_cache,
                                snapshot_id=sid,
                                stats_store=entry.stats_store,
                                feedback=self.feedback,
                                analyze_queries=self.analyze_queries)
                engine._stats = snapshot.stats
                engine.plan_gate = self._make_gate(entry)
                index = entry.tag_indexes.get(sid)
                if index is None:
                    index = entry.tag_indexes[sid] = engine.index
                else:
                    engine.index = index
                summary = entry.summaries.get(sid)
                if self.analyze_queries:
                    # Share one summary per immutable snapshot however
                    # the engine is (re)created, like the tag index.
                    if summary is None:
                        summary = entry.summaries[sid] = engine.summary
                    else:
                        engine._summary = summary
                entry.engines[sid] = engine
            return engine

    def cached_engine(self, snapshot: Snapshot) -> Engine | None:
        """Pure peek: the snapshot's engine if one was already built.

        Never constructs anything — the serve fast path uses this on
        the submitting thread, where creating an engine (statistics,
        tag index, summary) would stall the caller.
        """
        with self._lock:
            entry = self._entries.get(snapshot.name)
            if entry is None:
                return None
            return entry.engines.get(snapshot.snapshot_id)

    # ------------------------------------------------------------------
    # Writer protocol: copy-on-write batches.
    # ------------------------------------------------------------------

    def updater(self, name: str) -> SnapshotUpdater:
        """Start a copy-on-write update batch against ``name``.

        The batch forks the current snapshot's document; ``commit()``
        (or a clean ``with`` exit) publishes the fork as the next
        snapshot.  Concurrent batches are last-committer-wins: each
        forks the snapshot current at *its* start.
        """
        return SnapshotUpdater(self, self.current(name))

    def _publish(self, name: str, doc: Document,
                 reports: list[UpdateReport]) -> Snapshot:
        """Atomically swap in a new version (SnapshotUpdater.commit)."""
        retired: Snapshot | None = None
        with self._lock:
            entry = self._entry(name)
            snapshot = self._make_snapshot(name, doc)
            previous = entry.current
            entry.current = snapshot
            if entry.pins.get(previous.snapshot_id, 0) == 0:
                retired = self._retire(entry, previous)
            _PUBLISHES.inc()
            _LIVE.set(self._live_count())
        if retired is not None:
            self._notify_retired(retired)
        return snapshot

    # ------------------------------------------------------------------
    # Liveness bookkeeping (the SV001 ground truth).
    # ------------------------------------------------------------------

    def live_ids(self, name: str) -> frozenset[int]:
        """Snapshot ids of ``name`` that are current or pinned."""
        with self._lock:
            entry = self._entry(name)
            ids = set(entry.pins)
            ids.add(entry.current.snapshot_id)
            return frozenset(ids)

    def dropped_ids(self, name: str) -> frozenset[int]:
        """Snapshot ids of ``name`` that have been retired."""
        with self._lock:
            return frozenset(self._entry(name).dropped)

    def is_live(self, name: str, snapshot_id: int) -> bool:
        return snapshot_id in self.live_ids(name)

    def on_retire(self, callback: Callable[[Snapshot], None]) -> None:
        """Register a callback fired (outside the lock) per retirement.

        Listeners run *synchronously* inside the retiring call
        (``unpin``/``commit``), so cleanup they perform — the query
        service invalidates the retired snapshot's result-cache entries
        here, with an audit counter proving zero survivors — is
        complete before the retire returns.  Keep listeners fast and
        never have them re-enter the catalog lock.
        """
        self._retire_listeners.append(callback)

    def plan_cache(self, name: str) -> PlanCache:
        """The shared plan cache of one document (introspection/tests)."""
        with self._lock:
            return self._entry(name).plan_cache

    def stats_store(self, name: str) -> StatsStore:
        """The shared runtime statistics store of one document."""
        with self._lock:
            return self._entry(name).stats_store

    def purge_snapshot_plans(self, name: str, snapshot_id: int) -> int:
        """Eagerly drop plans compiled against one snapshot.

        Retirement does this automatically per retired snapshot.
        """
        with self._lock:
            cache = self._entry(name).plan_cache
        return cache.invalidate_where(
            lambda key, plan: getattr(plan, "snapshot_id", None)
            == snapshot_id,
            reason="snapshot-drop")

    def purge_stale_plans(self, name: str) -> int:
        """Drop every plan stamped with a dropped snapshot of ``name``.

        The query service calls this when the SV001 gate trips on a
        cache entry that raced a publish, so its retry compiles fresh
        instead of re-hitting the poisoned entry.
        """
        with self._lock:
            entry = self._entry(name)
            cache, dropped = entry.plan_cache, frozenset(entry.dropped)
        return cache.invalidate_where(
            lambda key, plan: getattr(plan, "snapshot_id", None) in dropped,
            reason="snapshot-drop")

    # ------------------------------------------------------------------
    # Internals (callers hold the lock unless noted).
    # ------------------------------------------------------------------

    def _entry(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise UsageError(f"unknown document {name!r} "
                             f"(registered: {sorted(self._entries) or '-'})")
        return entry

    def _make_snapshot(self, name: str, doc: Document) -> Snapshot:
        snapshot = Snapshot(name, self._next_id, doc,
                            compute_stats(doc, with_size=False))
        self._next_id += 1
        return snapshot

    def _retire(self, entry: _Entry, snapshot: Snapshot) -> Snapshot:
        sid = snapshot.snapshot_id
        entry.dropped.add(sid)
        entry.engines.pop(sid, None)
        entry.tag_indexes.pop(sid, None)
        entry.summaries.pop(sid, None)
        _RETIRES.inc()
        _LIVE.set(self._live_count())
        return snapshot

    def _notify_retired(self, snapshot: Snapshot) -> None:
        """Purge plans and fire listeners — outside the catalog lock."""
        self.purge_snapshot_plans(snapshot.name, snapshot.snapshot_id)
        # A retired snapshot's arena file (the mmap-shared scan image
        # used by the process execution backend) is dead weight once no
        # query can pin the snapshot again — unlink it eagerly.
        from repro.xmlkit.arena import release_arena

        release_arena(snapshot.doc)
        for listener in self._retire_listeners:
            listener(snapshot)

    def _live_count(self) -> int:
        total = 0
        for entry in self._entries.values():
            ids = set(entry.pins)
            ids.add(entry.current.snapshot_id)
            total += len(ids)
        return total

    def _make_gate(self, entry: _Entry) -> Callable[[CachedPlan], None]:
        """The plan gate installed on every snapshot engine: refuse
        cached plans whose snapshot has been dropped (rule SV001)."""
        def gate(plan: CachedPlan) -> None:
            sid = getattr(plan, "snapshot_id", None)
            if sid is None:
                return
            with self._lock:
                dropped = sid in entry.dropped
            if dropped:
                from repro.analysis import verify_snapshot

                live = self.live_ids(entry.name)
                verify_snapshot(plan, live)  # raises PlanInvariantError
        return gate

    def snapshots(self) -> Iterator[Snapshot]:
        """Current snapshot of every registered document."""
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            yield entry.current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Catalog {self.names()}>"
