"""Immutable document snapshots: the serving layer's isolation unit.

The serving story (ROADMAP: "heavy traffic from millions of users")
needs readers and writers to coexist without locks on the query hot
path.  The region-label encoding makes in-place structural updates
global events — ``DocumentUpdater`` relabels the arena from the splice
point onward — so a reader racing a writer could observe a half-applied
tree.  Instead of locking, the serving layer never mutates a published
document at all:

* a :class:`Snapshot` is an immutable-by-convention ``(document,
  statistics)`` pair with a catalog-unique id;
* an update batch forks the current snapshot's document once
  (:func:`fork_document`, copy-on-first-write), applies every operation
  to the private fork, and publishes the fork as a *new* snapshot on
  commit — in-flight queries keep reading their pinned snapshot.

The fork is asymptotically free: the in-place updater already pays a
full O(n) arena rebuild per operation to recompute region labels, so
copying the arena once per *batch* costs the same order of work while
buying lock-free readers.  Tag names, text and attribute values are
immutable Python strings shared by reference between versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit.stats import DocumentStats
from repro.xmlkit.tree import Document, Node
from repro.xmlkit.update import DocumentUpdater, UpdateReport

__all__ = ["Snapshot", "SnapshotUpdater", "fork_document"]


def fork_document(doc: Document) -> Document:
    """Deep-copy a document, preserving every label verbatim.

    Unlike :class:`~repro.xmlkit.update.DocumentUpdater`'s rebuild this
    never recomputes labels — nids, regions and levels are copied, so
    the fork is indistinguishable from the original (the snapshot tests
    assert byte-identical serialization) at one O(n) pass.
    """
    fork = Document()
    src_nodes = doc.nodes
    clones: list[Node] = [fork.document_node]
    doc_node = clones[0]
    doc_node.start = src_nodes[0].start
    doc_node.end = src_nodes[0].end
    doc_node.level = src_nodes[0].level
    # Pre-order arena: every parent precedes its children, so the
    # parent's clone always exists by the time a child is copied.
    for src in src_nodes[1:]:
        clone = Node(fork, src.nid, src.kind, src.tag, src.text)
        if src.attrs:
            clone.attrs = dict(src.attrs)
        clone.start = src.start
        clone.end = src.end
        clone.level = src.level
        assert src.parent is not None
        parent = clones[src.parent.nid]
        clone.parent = parent
        parent.children.append(clone)
        clones.append(clone)
        fork.nodes.append(clone)
    if doc.root is not None:
        fork.root = clones[doc.root.nid]
    return fork


@dataclass(frozen=True, eq=False)
class Snapshot:
    """One published, immutable version of a named document.

    ``snapshot_id`` is unique within its catalog (monotonic across all
    documents), so plan-cache keys and SV001 checks can reference a
    version without carrying the document around.  The document behind
    a snapshot must never be mutated — all updates go through
    :class:`SnapshotUpdater`, which works on a private fork.
    """

    name: str
    snapshot_id: int
    doc: Document
    stats: DocumentStats

    def fingerprint(self) -> tuple:
        """Plan-cache key component: identity plus summary statistics."""
        return ("snapshot", self.snapshot_id) + self.stats.fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Snapshot {self.name!r} id={self.snapshot_id} "
                f"{self.stats.n_nodes} nodes>")


@dataclass
class SnapshotUpdater:
    """One copy-on-write update batch against a named document.

    Obtained from :meth:`~repro.serve.catalog.Catalog.updater`; applies
    the same operations as :class:`~repro.xmlkit.update.DocumentUpdater`
    but to a private fork of the base snapshot's document, so concurrent
    readers never observe intermediate states.  :meth:`commit` publishes
    the fork as the document's next snapshot atomically; :meth:`abort`
    discards it.  Usable as a context manager (commit on clean exit,
    abort on exception)::

        with catalog.updater("library") as up:
            shelf = up.doc.root
            up.insert_subtree(shelf, new_book)
        # <- the new snapshot is published here
    """

    catalog: object
    base: Snapshot
    doc: Document = field(init=False)
    reports: list[UpdateReport] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.doc = fork_document(self.base.doc)
        self._updater = DocumentUpdater(self.doc)
        self._done = False

    @property
    def name(self) -> str:
        return self.base.name

    def resolve(self, node: Node) -> Node:
        """Map a node of the base snapshot to its clone in the fork.

        Valid for nodes addressed *before* the batch's first operation
        (later operations renumber the fork's arena); address nodes
        found mid-batch through :attr:`doc` directly.
        """
        return self.doc.nodes[node.nid]

    def insert_subtree(self, parent: Node, subtree_root: Node,
                       position: int | None = None) -> UpdateReport:
        """Insert a subtree (see ``DocumentUpdater.insert_subtree``).

        ``parent`` may belong to the base snapshot (it is resolved into
        the fork when the batch has not restructured the tree yet) or to
        :attr:`doc` itself.
        """
        report = self._updater.insert_subtree(self._local(parent),
                                              subtree_root, position)
        self.reports.append(report)
        return report

    def delete_subtree(self, node: Node) -> UpdateReport:
        """Delete a subtree (see ``DocumentUpdater.delete_subtree``)."""
        report = self._updater.delete_subtree(self._local(node))
        self.reports.append(report)
        return report

    def _local(self, node: Node) -> Node:
        if node.doc is self.doc:
            return node
        if node.doc is self.base.doc and not self.reports:
            return self.resolve(node)
        return node  # let DocumentUpdater raise its precise UpdateError

    def commit(self) -> Snapshot:
        """Publish the fork as the document's next snapshot."""
        if self._done:
            raise RuntimeError("update batch already committed or aborted")
        self._done = True
        publish = getattr(self.catalog, "_publish")
        snapshot: Snapshot = publish(self.base.name, self.doc, self.reports)
        return snapshot

    def abort(self) -> None:
        """Discard the fork; the catalog never sees this batch."""
        self._done = True

    def __enter__(self) -> SnapshotUpdater:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()
