"""The network client: the remote mirror of the in-process serving API.

:func:`connect` opens a TCP connection to a :class:`~repro.serve.server.Server`
and returns a :class:`Client` whose surface deliberately mirrors
:class:`~repro.serve.service.QueryService` — the same keyword-only
``strategy`` / ``params`` / ``timeout_ms`` / ``executor`` spelling
as every other query surface (the contract test pins this), so moving
a workload from in-process to remote serving is a one-line change::

    import repro.serve.client

    client = repro.serve.client.connect("127.0.0.1", 8399)
    result = client.query("//book[author]/title", timeout_ms=100)
    print(result.serialize())
    plan = client.prepare("//book[price > $p]/title")
    plan.execute(params={"p": 30})
    client.close()

Results come back as :class:`ClientResult`: the streamed item
sequence reassembled, with a ``serialize()`` that reproduces the
in-process :meth:`QueryResult.serialize
<repro.engine.result.QueryResult.serialize>` output *bit-identically*
(the differential suite asserts this) plus the serving metadata the
footer frame carries.  Server-side failures re-raise here as the same
:mod:`repro.errors` class the service would have raised in-process,
reconstructed from the frame's wire code.

The client is synchronous and connection-oriented; one ``Client`` is
one socket and should be used from one thread at a time (open one per
worker thread for concurrent load — connections are cheap).
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.engine.backend import ExecutionBackend, resolve_backend
from repro.engine.result import atom_text
from repro.errors import ProtocolError, error_for_code
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_item,
    encode_frame,
    read_frame,
)

__all__ = ["Client", "ClientResult", "RemotePrepared", "connect"]


def connect(host: str = "127.0.0.1", port: int = 8399, *,
            timeout_s: float | None = 30.0) -> Client:
    """Open a client connection — the remote mirror of
    :func:`repro.connect` + :meth:`Database.serve`.

    ``timeout_s`` bounds the TCP connect and every subsequent
    response wait (``None`` disables the socket timeout).
    """
    return Client(host, port, timeout_s=timeout_s)


class ClientResult:
    """One remote query result: items plus serving metadata.

    ``items`` holds decoded wire items as ``(kind, value)`` pairs —
    ``("node", xml)``, ``("attr", text)`` or ``("atom", value)`` —
    exactly the stream the server sent.  ``serialize()`` /
    ``string_values()`` reproduce the in-process result formatting.
    """

    def __init__(self, items: list[tuple[str, Any]], *,
                 snapshot_id: int, cached: bool, attempts: int,
                 wait_ms: float, run_ms: float, total_ms: float) -> None:
        self.items = items
        self.snapshot_id = snapshot_id
        self.cached = cached
        self.attempts = attempts
        self.wait_ms = wait_ms
        self.run_ms = run_ms
        #: End-to-end server-side time (receipt to footer).
        self.total_ms = total_ms

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def serialize(self) -> str:
        """Compact serialization, bit-identical to the in-process
        :meth:`QueryResult.serialize` of the same result."""
        parts: list[str] = []
        previous_was_atom = False
        for kind, value in self.items:
            if kind == "atom":
                if previous_was_atom:
                    parts.append(" ")
                parts.append(atom_text(value))
                previous_was_atom = True
            else:
                parts.append(value)
                previous_was_atom = False
        return "".join(parts)

    def string_values(self) -> list[str]:
        """String value per item (nodes are re-parsed locally)."""
        from repro.xmlkit.parser import parse

        values = []
        for kind, value in self.items:
            if kind == "node":
                root = parse(value).root
                values.append(root.string_value() if root is not None else "")
            elif kind == "attr":
                values.append(value)
            else:
                values.append(atom_text(value))
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientResult {len(self.items)} items "
                f"snapshot={self.snapshot_id}>")


class RemotePrepared:
    """A server-side prepared statement, scoped to its connection."""

    def __init__(self, client: Client, handle: int, source: str,
                 parameters: list[str]) -> None:
        self._client = client
        self._handle = handle
        self.source = source
        #: External ``$parameter`` names ``execute`` must bind.
        self.parameters = frozenset(parameters)

    def execute(self, *, params: dict | None = None,
                timeout_ms: float | None = None,
                executor: ExecutionBackend | str | None = None
                ) -> ClientResult:
        """Run the prepared statement (kwargs mirror every other
        query surface)."""
        frame: dict[str, Any] = {"type": "execute",
                                 "prepared": self._handle}
        if params is not None:
            frame["params"] = params
        if timeout_ms is not None:
            frame["timeout_ms"] = timeout_ms
        if executor is not None:
            frame["executor"] = resolve_backend(executor).key
        return self._client._roundtrip_result(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"${p}" for p in sorted(self.parameters))
        return (f"RemotePrepared({self.source!r}"
                + (f", parameters=[{params}]" if params else "") + ")")


class Client:
    """One connection to a network server (see :func:`connect`)."""

    def __init__(self, host: str, port: int, *,
                 timeout_s: float | None = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._max_frame_bytes = max_frame_bytes
        self._closed = False
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._stream = self._sock.makefile("rwb")
        hello = read_frame(self._stream, max_frame_bytes)
        if hello.get("type") != "hello":
            raise ProtocolError(
                f"expected a hello frame, got {hello.get('type')!r}")
        if hello.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {hello.get('protocol')!r}, "
                f"this client v{PROTOCOL_VERSION}")
        #: Server-assigned connection id (tags the server's slow log).
        self.connection_id = hello.get("connection")

    # ------------------------------------------------------------------
    # The query surface (mirrors QueryService).
    # ------------------------------------------------------------------

    def query(self, text: str, *, doc: str | None = None,
              strategy: str = "auto", params: dict | None = None,
              timeout_ms: float | None = None,
              executor: ExecutionBackend | str | None = None
              ) -> ClientResult:
        """Evaluate a query on the server — the remote twin of
        :meth:`QueryService.query <repro.serve.service.QueryService.query>`
        (identical keyword-only kwargs)."""
        frame: dict[str, Any] = {"type": "query", "text": text}
        if doc is not None:
            frame["doc"] = doc
        if strategy != "auto":
            frame["strategy"] = strategy
        if params is not None:
            frame["params"] = params
        if timeout_ms is not None:
            frame["timeout_ms"] = timeout_ms
        if executor is not None:
            frame["executor"] = resolve_backend(executor, strategy).key
        return self._roundtrip_result(frame)

    def prepare(self, text: str, *, strategy: str = "auto",
                executor: ExecutionBackend | str | None = None
                ) -> RemotePrepared:
        """Prepare a statement server-side; returns its handle object."""
        frame: dict[str, Any] = {"type": "prepare", "text": text}
        if strategy != "auto":
            frame["strategy"] = strategy
        if executor is not None:
            frame["executor"] = resolve_backend(executor, strategy).key
        reply = self._roundtrip(frame, expect="prepared")
        return RemotePrepared(self, reply["prepared"], text,
                              list(reply.get("parameters", [])))

    def stats(self, top: int = 10) -> dict:
        """The server's versioned ``service.stats()`` payload
        (including the ``server`` admission section)."""
        reply = self._roundtrip({"type": "stats", "top": top},
                                expect="stats")
        return reply["stats"]

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        self._roundtrip({"type": "ping"}, expect="pong")
        return True

    def close(self) -> None:
        """Close the connection.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._stream.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
            self._sock.close()

    def __enter__(self) -> Client:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing.
    # ------------------------------------------------------------------

    def _send(self, frame: dict[str, Any]) -> int:
        request_id = self._next_id
        self._next_id += 1
        frame = {"id": request_id, **frame}
        self._stream.write(encode_frame(frame))
        self._stream.flush()
        return request_id

    def _read_for(self, request_id: int) -> dict[str, Any]:
        """Next frame addressed to ``request_id`` (raises on error)."""
        while True:
            frame = read_frame(self._stream, self._max_frame_bytes)
            if frame.get("type") == "error":
                if frame.get("id") in (request_id, None):
                    raise error_for_code(frame.get("code", "INTERNAL"),
                                         frame.get("message", "server error"))
                continue        # an error for an abandoned request
            if frame.get("id") == request_id:
                return frame

    def _roundtrip(self, frame: dict[str, Any], *,
                   expect: str) -> dict[str, Any]:
        with self._lock:
            if self._closed:
                raise ProtocolError("client is closed")
            request_id = self._send(frame)
            reply = self._read_for(request_id)
            if reply.get("type") != expect:
                raise ProtocolError(
                    f"expected a {expect} frame, got {reply.get('type')!r}")
            return reply

    def _roundtrip_result(self, frame: dict[str, Any]) -> ClientResult:
        with self._lock:
            if self._closed:
                raise ProtocolError("client is closed")
            request_id = self._send(frame)
            header = self._read_for(request_id)
            if header.get("type") != "result_header":
                raise ProtocolError(
                    "expected a result_header frame, "
                    f"got {header.get('type')!r}")
            items: list[tuple[str, Any]] = []
            while True:
                frame = self._read_for(request_id)
                frame_type = frame.get("type")
                if frame_type == "result_chunk":
                    items.extend(decode_item(item)
                                 for item in frame.get("items", []))
                    continue
                if frame_type == "result_footer":
                    if frame.get("n_items") != len(items):
                        raise ProtocolError(
                            f"result stream truncated: footer says "
                            f"{frame.get('n_items')} items, "
                            f"received {len(items)}")
                    return ClientResult(
                        items,
                        snapshot_id=header.get("snapshot_id"),
                        cached=bool(header.get("cached")),
                        attempts=int(header.get("attempts", 1)),
                        wait_ms=float(frame.get("wait_ms", 0.0)),
                        run_ms=float(frame.get("run_ms", 0.0)),
                        total_ms=float(frame.get("total_ms", 0.0)))
                raise ProtocolError(
                    f"unexpected {frame_type!r} frame inside a result "
                    "stream")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self._sock.getpeername() if not self._closed else "closed"
        return f"<Client {peer}>"
