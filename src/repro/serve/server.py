"""The network serving front end: an asyncio TCP server over a service.

This is the socket layer the ROADMAP's "millions of users" north star
needs: remote clients speak the length-prefixed JSON frame protocol of
:mod:`repro.serve.protocol` to a :class:`Server`, which fronts an
in-process :class:`~repro.serve.service.QueryService` with

* **adaptive admission** — a latency-targeting window
  (:class:`~repro.serve.throttle.AdmissionController`) decides, per
  request, whether to admit or shed; rejected requests get a fast
  ``OVERLOADED`` error frame instead of a growing queue;
* **per-request deadlines** — a frame's ``timeout_ms`` starts at frame
  receipt and rides into the service (and from there into the
  cooperative :class:`~repro.xmlkit.storage.CancellationToken`
  checkpoints inside every physical operator); the deadline is also
  enforced *between result chunks*, so a slow client cannot hold a
  worker past its budget;
* **streaming results** — item sequences leave in bounded
  ``result_chunk`` frames rather than one giant message;
* **graceful drain** — :meth:`Server.close` stops accepting, lets
  in-flight requests finish (bounded by ``drain_timeout_s``), then
  closes connections.

The event loop runs on a dedicated thread, so the server composes with
ordinary synchronous code::

    with repro.connect(xml) as db:
        server = db.listen()                  # 127.0.0.1, ephemeral port
        client = repro.serve.client.connect(*server.address)
        client.query("//book[author]/title", timeout_ms=100)

Admission decisions surface as ``repro_server_*`` metrics and as the
``server`` section of ``service.stats()``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ProtocolError,
    QueryTimeoutError,
    ReproError,
    ServiceOverloadedError,
    UsageError,
    wire_code,
)
from repro.obs.metrics import REGISTRY
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    encode_item,
)
from repro.serve.service import QueryService, ServeResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database

__all__ = ["Server", "listen"]

_CONNECTIONS = REGISTRY.counter(
    "repro_server_connections_total", "Client connections accepted")
_ACTIVE = REGISTRY.gauge(
    "repro_server_active_connections", "Currently open client connections")
_FRAMES_IN = REGISTRY.counter(
    "repro_server_frames_in_total", "Request frames received")
_FRAMES_OUT = REGISTRY.counter(
    "repro_server_frames_out_total", "Response frames sent")
_BYTES_IN = REGISTRY.counter(
    "repro_server_bytes_in_total", "Payload bytes received")
_BYTES_OUT = REGISTRY.counter(
    "repro_server_bytes_out_total", "Payload bytes sent")
_PROTOCOL_ERRORS = REGISTRY.counter(
    "repro_server_protocol_errors_total",
    "Frames rejected as malformed, oversized or wrong-version")
_REQUESTS = REGISTRY.counter(
    "repro_server_requests_total", "Requests served (all frame types)")

#: Request frame types the dispatcher accepts.
_REQUEST_TYPES = frozenset(
    {"query", "prepare", "execute", "stats", "ping"})


def _frame_executor(frame: dict[str, Any]) -> str | None:
    """Resolve a frame's execution-backend spec.

    v1 frames carry ``executor`` as the canonical backend key string
    (``"serial"`` / ``"threads:4"`` / ``"processes:4"``).  The legacy
    ``parallelism`` integer field served its one-release deprecation
    window and is no longer mapped — pre-redesign clients must send
    ``executor`` keys.
    """
    return frame.get("executor")


class _Connection:
    """Per-connection state: id, writer, pipelined request tasks."""

    __slots__ = ("cid", "writer", "send_lock", "tasks", "prepared",
                 "next_prepared")

    def __init__(self, cid: str, writer: asyncio.StreamWriter) -> None:
        self.cid = cid
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()
        #: prepared-statement handles live for the connection's lifetime.
        self.prepared: dict[int, dict[str, Any]] = {}
        self.next_prepared = 1


class Server:
    """A TCP front end over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The query service to front.  ``owns_service=True`` makes
        :meth:`close` close it too (what :func:`listen` sets when it
        builds the service itself).
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back
        from :attr:`address`).
    target_ms / start_window / max_window:
        Admission-controller knobs (see
        :class:`~repro.serve.throttle.AdmissionController`).
    default_timeout_ms:
        Deadline applied to frames that carry none.
    max_frame_bytes:
        Inbound frame-size bound; oversized frames are refused and the
        connection closed.
    chunk_items:
        Result items per ``result_chunk`` frame.
    drain_timeout_s:
        Bound on how long :meth:`close` waits for in-flight requests.
    chunk_delay_s:
        Artificial pause between result chunks — a test hook for
        exercising mid-stream deadline expiry; leave at 0 in production.
    """

    def __init__(self, service: QueryService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 target_ms: float = 50.0, start_window: int = 2,
                 max_window: int = 64,
                 default_timeout_ms: float | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 chunk_items: int = 256,
                 drain_timeout_s: float = 10.0,
                 chunk_delay_s: float = 0.0,
                 owns_service: bool = False) -> None:
        from repro.serve.throttle import AdmissionController

        if chunk_items < 1:
            raise UsageError(f"chunk_items must be >= 1, got {chunk_items}")
        self.service = service
        self.admission = AdmissionController(
            target_ms=target_ms, start_window=start_window,
            max_window=max_window)
        self.default_timeout_ms = default_timeout_ms
        self.max_frame_bytes = max_frame_bytes
        self.chunk_items = chunk_items
        self.drain_timeout_s = drain_timeout_s
        self.chunk_delay_s = chunk_delay_s
        self._owns_service = owns_service

        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._next_cid = 1
        self._closed = False
        self._lock = threading.Lock()
        self._started = time.time()

        ready: threading.Event = threading.Event()
        startup: dict[str, Any] = {}
        self._thread = threading.Thread(
            target=self._run_loop, args=(host, port, ready, startup),
            name="repro-server", daemon=True)
        self._thread.start()
        ready.wait()
        if "error" in startup:
            raise startup["error"]
        self.address: tuple[str, int] = startup["address"]
        self.service.add_stats_section("server", self._stats_section)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, shut down.

        Idempotent.  In-flight requests get up to ``drain_timeout_s``
        to finish; connections then close and the loop thread exits.
        A server built by :func:`listen` over its own service closes
        that service too.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
            future.result(timeout=self.drain_timeout_s + 10.0)
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10.0)
        self.service.remove_stats_section("server")
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> Server:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """``service.stats()`` — which includes this server's section."""
        return self.service.stats()

    def _stats_section(self) -> dict:
        with self._lock:
            active = len(self._connections)
        return {
            "address": list(self.address),
            "uptime_s": round(time.time() - self._started, 3),
            "active_connections": active,
            "admission": self.admission.stats(),
        }

    # ------------------------------------------------------------------
    # Event loop plumbing.
    # ------------------------------------------------------------------

    def _run_loop(self, host: str, port: int, ready: threading.Event,
                  startup: dict[str, Any]) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, host, port))
        except OSError as exc:
            startup["error"] = UsageError(
                f"cannot listen on {host}:{port}: {exc}")
            ready.set()
            loop.close()
            return
        self._server = server
        startup["address"] = server.sockets[0].getsockname()[:2]
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _shutdown(self) -> None:
        """Runs on the loop: stop accepting, drain, close connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._lock:
            connections = list(self._connections)
        pending = [task for conn in connections for task in conn.tasks]
        if pending:
            await asyncio.wait(pending, timeout=self.drain_timeout_s)
        for conn in connections:
            conn.writer.close()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        with self._lock:
            cid = f"c{self._next_cid}"
            self._next_cid += 1
            conn = _Connection(cid, writer)
            self._connections.add(conn)
        _CONNECTIONS.inc()
        _ACTIVE.set(len(self._connections))
        try:
            await self._send(conn, {
                "type": "hello", "server": "repro",
                "protocol": 1, "connection": cid})
            await self._read_loop(conn, reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass        # client went away mid-frame; nothing to answer
        finally:
            # Drain this connection's in-flight requests before closing
            # (their writes fail soft if the peer is already gone).
            if conn.tasks:
                await asyncio.wait(list(conn.tasks),
                                   timeout=self.drain_timeout_s)
            with self._lock:
                self._connections.discard(conn)
            _ACTIVE.set(len(self._connections))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_loop(self, conn: _Connection,
                         reader: asyncio.StreamReader) -> None:
        while not self._closed:
            header = await reader.readexactly(4)
            length = int.from_bytes(header, "big")
            if length > self.max_frame_bytes:
                _PROTOCOL_ERRORS.inc()
                await self._send_error(conn, None, ProtocolError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"))
                return      # cannot resync a stream we refuse to read
            body = await reader.readexactly(length)
            _FRAMES_IN.inc()
            _BYTES_IN.inc(length)
            try:
                frame = decode_frame(body)
            except ProtocolError as exc:
                _PROTOCOL_ERRORS.inc()
                await self._send_error(conn, None, exc)
                return      # malformed bytes: the framing is untrusted
            frame_type = frame.get("type")
            if frame_type not in _REQUEST_TYPES:
                _PROTOCOL_ERRORS.inc()
                await self._send_error(conn, frame.get("id"), ProtocolError(
                    f"unknown frame type {frame_type!r}"))
                continue    # framing is intact; keep the connection
            task = asyncio.ensure_future(self._dispatch(conn, frame))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)

    # ------------------------------------------------------------------
    # Request dispatch.
    # ------------------------------------------------------------------

    async def _dispatch(self, conn: _Connection,
                        frame: dict[str, Any]) -> None:
        request_id = frame.get("id")
        started = time.perf_counter()
        _REQUESTS.inc()
        try:
            frame_type = frame["type"]
            if frame_type == "ping":
                await self._send(conn, {"type": "pong", "id": request_id})
                return
            if frame_type == "stats":
                top = frame.get("top", 10)
                if not isinstance(top, int) or top < 0:
                    raise ProtocolError(f"bad stats top {top!r}")
                await self._send(conn, {"type": "stats", "id": request_id,
                                        "stats": self.service.stats(top=top)})
                return
            if frame_type == "prepare":
                await self._prepare(conn, request_id, frame)
                return
            # query / execute: the admission window gates real work.
            # _serve_query owns the matching release (it knows whether
            # the outcome was success, overload or a deadline miss).
            if not self.admission.try_acquire():
                await self._send_error(conn, request_id,
                                       ServiceOverloadedError(
                                           "admission window is full"))
                return
            await self._serve_query(conn, request_id, frame, started)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            await self._send_error(conn, request_id, exc)

    async def _prepare(self, conn: _Connection, request_id: Any,
                       frame: dict[str, Any]) -> None:
        text = frame.get("text")
        if not isinstance(text, str):
            raise ProtocolError("prepare frame carries no query text")
        strategy = frame.get("strategy", "auto")
        executor = _frame_executor(frame)
        doc = frame.get("doc") or self.service.default_document
        # Validate the query and learn its external parameters by
        # compiling once against the current snapshot; executions go
        # through the service (and hit the shared plan cache).
        snapshot = self.service.catalog.pin(doc)
        try:
            engine = self.service.catalog.engine_for(snapshot)
            prepared = engine.prepare(text, strategy=strategy,
                                      executor=executor)
            parameters = sorted(prepared.parameters)
        finally:
            self.service.catalog.unpin(snapshot)
        handle = conn.next_prepared
        conn.next_prepared += 1
        conn.prepared[handle] = {
            "text": text, "strategy": strategy,
            "executor": executor, "doc": frame.get("doc")}
        await self._send(conn, {
            "type": "prepared", "id": request_id, "prepared": handle,
            "parameters": parameters})

    async def _serve_query(self, conn: _Connection, request_id: Any,
                           frame: dict[str, Any], started: float) -> None:
        """Run one admitted query/execute frame end to end."""
        outcome_overloaded = False
        outcome_timed_out = False
        latency_ms: float | None = None
        try:
            if frame["type"] == "execute":
                handle = frame.get("prepared")
                spec = conn.prepared.get(handle)
                if spec is None:
                    raise UsageError(
                        f"unknown prepared handle {handle!r} (prepared "
                        "statements are scoped to their connection)")
                text = spec["text"]
                strategy = frame.get("strategy", spec["strategy"])
                executor = _frame_executor(frame)
                if executor is None:
                    executor = spec["executor"]
                doc = frame.get("doc", spec["doc"])
            else:
                text = frame.get("text")
                strategy = frame.get("strategy", "auto")
                executor = _frame_executor(frame)
                doc = frame.get("doc")
            if not isinstance(text, str):
                raise ProtocolError("query frame carries no query text")
            timeout_ms = frame.get("timeout_ms", self.default_timeout_ms)
            deadline = (started + timeout_ms / 1000.0
                        if timeout_ms is not None else None)
            params = frame.get("params")
            if params is not None and not isinstance(params, dict):
                raise ProtocolError("params must be a JSON object")
            future = self.service.submit(
                text, doc=doc, strategy=strategy, params=params,
                timeout_ms=timeout_ms, executor=executor,
                client=f"{conn.cid}#{request_id}")
            served: ServeResult = await asyncio.wrap_future(future)
            await self._stream_result(conn, request_id, served, deadline,
                                      started)
            latency_ms = (time.perf_counter() - started) * 1e3
        except ServiceOverloadedError:
            outcome_overloaded = True
            raise
        except QueryTimeoutError:
            outcome_timed_out = True
            raise
        finally:
            self.admission.release(latency_ms,
                                   overloaded=outcome_overloaded,
                                   timed_out=outcome_timed_out)

    async def _stream_result(self, conn: _Connection, request_id: Any,
                             served: ServeResult, deadline: float | None,
                             started: float) -> None:
        """Send header / chunks / footer, honoring the deadline."""
        await self._send(conn, {
            "type": "result_header", "id": request_id,
            "snapshot_id": served.snapshot_id,
            "cached": served.cached, "attempts": served.attempts})
        items = served.result.items
        for offset in range(0, len(items), self.chunk_items):
            if deadline is not None and time.perf_counter() >= deadline:
                raise QueryTimeoutError(
                    "deadline expired while streaming the result",
                    timeout_ms=round((deadline - started) * 1e3, 3))
            if self.chunk_delay_s:
                await asyncio.sleep(self.chunk_delay_s)
            chunk = items[offset:offset + self.chunk_items]
            await self._send(conn, {
                "type": "result_chunk", "id": request_id,
                "items": [encode_item(item) for item in chunk]})
        await self._send(conn, {
            "type": "result_footer", "id": request_id,
            "n_items": len(items),
            "wait_ms": round(served.wait_ms, 3),
            "run_ms": round(served.run_ms, 3),
            "total_ms": round((time.perf_counter() - started) * 1e3, 3)})

    # ------------------------------------------------------------------
    # Frame output.
    # ------------------------------------------------------------------

    async def _send(self, conn: _Connection, payload: dict[str, Any]) -> None:
        data = encode_frame(payload)
        async with conn.send_lock:
            conn.writer.write(data)
            await conn.writer.drain()
        _FRAMES_OUT.inc()
        _BYTES_OUT.inc(len(data))

    async def _send_error(self, conn: _Connection, request_id: Any,
                          error: BaseException) -> None:
        payload: dict[str, Any] = {
            "type": "error", "id": request_id,
            "code": wire_code(error),
            "error": type(error).__name__
            if isinstance(error, ReproError) else "ReproError",
            "message": str(error) or type(error).__name__,
        }
        queue_depth = getattr(error, "queue_depth", None)
        if queue_depth is not None:
            payload["queue_depth"] = queue_depth
        timeout_ms = getattr(error, "timeout_ms", None)
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        try:
            await self._send(conn, payload)
        except (ConnectionError, OSError):
            pass        # peer vanished; the error has nowhere to go

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "listening"
        return f"<Server {state} on {self.host}:{self.port}>"


def listen(target, *, host: str = "127.0.0.1", port: int = 0,
           workers: int = 4, **options) -> Server:
    """Start a network server over ``target`` — the module-level twin of
    :meth:`Database.listen <repro.engine.database.Database.listen>`.

    ``target`` may be a running :class:`QueryService` (served as-is), a
    :class:`~repro.engine.database.Database` (its :meth:`serve
    <repro.engine.database.Database.serve>` service is used), or
    anything :class:`QueryService` accepts as a source (a
    :class:`~repro.serve.catalog.Catalog`, a parsed document, XML
    text) — in which case the server builds, owns and eventually
    closes the service.  Remaining ``options`` go to :class:`Server`.
    """
    owns = False
    if isinstance(target, QueryService):
        service = target
    elif hasattr(target, "serve") and hasattr(target, "engine"):
        service = target.serve(workers=workers)
    else:
        service = QueryService(target, workers=workers)
        owns = True
    return Server(service, host=host, port=port, owns_service=owns,
                  **options)
