"""Adaptive admission control for the network serving front end.

The server does not run a fixed worker count: it runs an **admission
window** — the number of requests allowed in flight at once — steered
by observed latency, in the shape of scrapy's AUTOTHROTTLE extension:

* start conservative (a small initial window, not the maximum);
* once enough samples accumulate, compare the observed **p50 latency**
  against ``target_ms`` and move the window toward
  ``window * target_ms / p50`` — averaged with the current window so
  one noisy interval cannot slam the throttle (scrapy's
  ``(delay + target_delay) / 2`` rule, transposed from per-request
  delay to concurrent admissions);
* **back off multiplicatively** the moment the service signals
  overload (:class:`~repro.errors.ServiceOverloadedError`) or a
  request misses its deadline, remembering the pre-backoff window as
  the slow-start threshold;
* **recover in slow-start**: below the threshold the window may double
  per adjustment interval; above it, growth is capped at +1 — climb
  back fast to the last known-good level, then probe gently.

Requests that do not fit the window are rejected immediately (load is
*shed*, not queued), which is what keeps p99 bounded under overload:
the queue never grows beyond what the window admits, and clients get a
fast ``OVERLOADED`` error they can back off on.

Every decision is exported through the ``repro_server_*`` metric
families and mirrored in :meth:`AdmissionController.stats`, which the
server publishes into ``service.stats()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import UsageError
from repro.obs.metrics import REGISTRY

__all__ = ["AdmissionController"]

_WINDOW = REGISTRY.gauge(
    "repro_server_admission_window",
    "Current adaptive admission window (max concurrent requests)")
_INFLIGHT = REGISTRY.gauge(
    "repro_server_inflight",
    "Requests currently admitted by the network server")
_ADMITTED = REGISTRY.counter(
    "repro_server_admitted_total",
    "Requests admitted by the adaptive controller")
_REJECTED = REGISTRY.counter(
    "repro_server_rejected_total",
    "Requests shed because the admission window was full")
_BACKOFFS = REGISTRY.counter(
    "repro_server_backoffs_total",
    "Multiplicative window back-offs (overload or deadline miss)")
_ADJUSTMENTS = REGISTRY.counter(
    "repro_server_window_adjustments_total",
    "Latency-driven window adjustments")
_LATENCY = REGISTRY.histogram(
    "repro_server_request_ms",
    "End-to-end server-side request latency, milliseconds")


class AdmissionController:
    """Latency-targeting admission window (AUTOTHROTTLE shape).

    Parameters
    ----------
    target_ms:
        The p50 latency the controller steers toward.  Below it the
        window grows; above it the window shrinks.
    start_window:
        Initial admissions — deliberately small ("start conservative").
    min_window / max_window:
        Hard clamps on the window.
    adjust_every:
        Completed requests per adjustment interval.
    backoff_factor:
        Multiplier applied on overload/timeout (0 < f < 1).
    backoff_interval_s:
        Refractory period between back-offs, so one burst of failures
        counts as a single congestion event (the cut itself drains the
        stragglers admitted under the old window).
    """

    def __init__(self, *, target_ms: float = 50.0, start_window: int = 2,
                 min_window: int = 1, max_window: int = 64,
                 adjust_every: int = 8, backoff_factor: float = 0.5,
                 backoff_interval_s: float = 0.25) -> None:
        if target_ms <= 0:
            raise UsageError(f"target_ms must be > 0, got {target_ms}")
        if not (1 <= min_window <= start_window <= max_window):
            raise UsageError(
                "admission windows must satisfy 1 <= min_window <= "
                f"start_window <= max_window, got {min_window}/"
                f"{start_window}/{max_window}")
        if not 0.0 < backoff_factor < 1.0:
            raise UsageError(
                f"backoff_factor must be in (0, 1), got {backoff_factor}")
        self.target_ms = target_ms
        self.min_window = min_window
        self.max_window = max_window
        self.adjust_every = max(1, adjust_every)
        self.backoff_factor = backoff_factor
        self.backoff_interval_s = backoff_interval_s

        self._lock = threading.Lock()
        self._window = float(start_window)
        self._ssthresh = float(max_window)
        self._inflight = 0
        self._samples: deque[float] = deque(maxlen=4 * self.adjust_every)
        self._since_adjust = 0
        self._failed_since_adjust = False
        self._last_backoff = 0.0
        self._admitted = 0
        self._rejected = 0
        self._backoffs = 0
        self._adjustments = 0
        _WINDOW.set(self._window)

    # ------------------------------------------------------------------
    # The admission decision.
    # ------------------------------------------------------------------

    @property
    def window(self) -> int:
        """The integer window currently enforced."""
        with self._lock:
            return self._int_window()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _int_window(self) -> int:
        return max(self.min_window, int(self._window))

    def try_acquire(self) -> bool:
        """Admit one request iff the window has room."""
        with self._lock:
            if self._inflight >= self._int_window():
                self._rejected += 1
                _REJECTED.inc()
                return False
            self._inflight += 1
            self._admitted += 1
        _ADMITTED.inc()
        _INFLIGHT.set(self._inflight)
        return True

    def release(self, latency_ms: float | None = None, *,
                overloaded: bool = False, timed_out: bool = False) -> None:
        """Complete one admitted request and steer the window.

        ``latency_ms`` is the end-to-end server-side latency of a
        successful request; ``overloaded``/``timed_out`` flag the two
        congestion signals that trigger a multiplicative back-off.
        """
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
            if overloaded or timed_out:
                self._failed_since_adjust = True
                self._backoff_locked()
            elif latency_ms is not None:
                self._samples.append(latency_ms)
                self._since_adjust += 1
                if self._since_adjust >= self.adjust_every:
                    self._adjust_locked()
        _INFLIGHT.set(self._inflight)
        if latency_ms is not None:
            _LATENCY.observe(latency_ms)

    # ------------------------------------------------------------------
    # Window dynamics (callers hold the lock).
    # ------------------------------------------------------------------

    def _backoff_locked(self) -> None:
        now = time.monotonic()
        if now - self._last_backoff < self.backoff_interval_s:
            return
        self._last_backoff = now
        self._ssthresh = max(float(self.min_window), self._window / 2.0)
        self._window = max(float(self.min_window),
                           self._window * self.backoff_factor)
        self._backoffs += 1
        self._since_adjust = 0
        self._samples.clear()
        _BACKOFFS.inc()
        _WINDOW.set(self._window)

    def _adjust_locked(self) -> None:
        self._since_adjust = 0
        if not self._samples:
            return
        ordered = sorted(self._samples)
        p50 = ordered[len(ordered) // 2]
        proposed = (self._window
                    + self._window * (self.target_ms / max(p50, 1e-6))) / 2.0
        if proposed > self._window:
            if self._failed_since_adjust:
                # Scrapy's rule: never speed up an interval that saw
                # errors — hold the window and let the samples refill.
                self._failed_since_adjust = False
                return
            if self._window < self._ssthresh:
                # Slow-start recovery: at most double per interval
                # until the pre-backoff level is back.
                proposed = min(proposed, self._window * 2.0, self._ssthresh)
            else:
                # Congestion avoidance: probe past the plateau gently.
                proposed = min(proposed, self._window + 1.0)
        self._failed_since_adjust = False
        self._window = min(max(proposed, float(self.min_window)),
                           float(self.max_window))
        self._adjustments += 1
        _ADJUSTMENTS.inc()
        _WINDOW.set(self._window)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The controller's decisions, for ``service.stats()``."""
        with self._lock:
            ordered = sorted(self._samples)
            p50 = ordered[len(ordered) // 2] if ordered else None
            return {
                "window": self._int_window(),
                "window_raw": round(self._window, 3),
                "ssthresh": round(self._ssthresh, 3),
                "inflight": self._inflight,
                "target_ms": self.target_ms,
                "observed_p50_ms": (round(p50, 3)
                                    if p50 is not None else None),
                "admitted": self._admitted,
                "rejected": self._rejected,
                "backoffs": self._backoffs,
                "adjustments": self._adjustments,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AdmissionController window={self.window} "
                f"inflight={self.inflight} target_ms={self.target_ms}>")
