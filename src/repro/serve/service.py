"""The concurrent query service: a bounded worker pool over a catalog.

:class:`QueryService` is the serving front end the ROADMAP's north star
asks for: many queries in flight against many documents, each executing
against the snapshot that was current at dequeue time, with

* **admission control** — a bounded queue; submissions past
  ``max_queue`` fail fast with
  :class:`~repro.errors.ServiceOverloadedError` instead of piling up;
* **deadlines** — ``timeout_ms`` (per call or service default) is
  measured from submission; expiry is detected both in the queue (the
  request never runs) and cooperatively during execution via the
  cancellation checkpoints in the physical operators' scan loops;
* **snapshot-sound result caching** — snapshots are immutable, so a
  result keyed by ``(document, snapshot id, query, strategy)`` can be
  replayed verbatim until that snapshot retires (retirement purges the
  entries).  Combined with in-flight **coalescing** (identical
  concurrent requests share one execution) this is where the service's
  aggregate throughput on read-heavy workloads comes from — Python
  threads do not parallelize CPU-bound query evaluation, they
  *deduplicate* it;
* **retry-once on invalidated plans** — if a cached plan trips the
  SV001 gate (compiled against a snapshot that got dropped while the
  entry raced a publish), the service purges the stale plans and
  retries the query once against a freshly pinned snapshot.

Every submission returns a :class:`concurrent.futures.Future` resolving
to a :class:`ServeResult` — the query result plus the snapshot it ran
against and the wait/run split.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import Future
from dataclasses import dataclass

from repro.engine._compat import absorb_result_cache
from repro.engine.backend import ExecutionBackend, resolve_backend
from repro.engine.plancache import normalize_query_text
from repro.engine.result import QueryResult
from repro.errors import (
    PlanInvariantError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceOverloadedError,
    UsageError,
)
from repro.obs.metrics import REGISTRY
from repro.obs.slowlog import SlowQueryLog
from repro.serve.cachepolicy import (
    ENTRY_OVERHEAD_BYTES,
    ResultCacheStorage,
    resolve_result_cache,
)
from repro.serve.catalog import Catalog
from repro.serve.snapshot import Snapshot, SnapshotUpdater
from repro.xmlkit.tree import Document

__all__ = ["QueryService", "ServeResult"]

_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_service_queue_depth", "Requests waiting in the service queue")
_INFLIGHT = REGISTRY.gauge(
    "repro_service_inflight", "Requests currently executing on workers")
_REJECTIONS = REGISTRY.counter(
    "repro_service_rejections_total",
    "Submissions rejected by admission control (queue full)")
_TIMEOUTS = REGISTRY.counter(
    "repro_query_timeout_total", "Queries aborted by deadline expiry")
_RETRIES = REGISTRY.counter(
    "repro_plan_retries_total",
    "Queries retried after a stale-snapshot plan tripped the SV001 gate")
_COALESCED = REGISTRY.counter(
    "repro_service_coalesced_total",
    "Submissions attached to an identical in-flight request")
_RESULT_HITS = REGISTRY.counter(
    "repro_result_cache_hits_total",
    "Queries served from the snapshot-keyed result cache")
_RESULT_MISSES = REGISTRY.counter(
    "repro_result_cache_misses_total",
    "Cacheable queries that executed (and filled the result cache)")
_WAIT_MS = REGISTRY.histogram(
    "repro_service_wait_ms", "Queue wait before execution, milliseconds")
_RUN_MS = REGISTRY.histogram(
    "repro_service_run_ms", "Execution time on a worker, milliseconds")
_UTILIZATION = REGISTRY.gauge(
    "repro_service_worker_utilization",
    "Fraction of worker-seconds spent executing since service start")
_SERVICE_TIMEOUTS = REGISTRY.counter(
    "repro_service_timeouts_total",
    "Served queries that missed their deadline (in queue or executing)")
_QUERYLINT_FASTPATH = REGISTRY.counter(
    "repro_querylint_fastpath_total",
    "Statically-empty queries answered inline without a worker slot")

#: Per-service telemetry counter names (the local mirror of the
#: process-wide families above, so two services never mix numbers).
_SERVICE_COUNTERS = ("submitted", "completed", "failed", "timeouts",
                     "rejections", "coalesced", "result_cache_hits",
                     "result_cache_misses", "slow_queries",
                     "static_empty_fastpath")


@dataclass
class ServeResult:
    """One served query: the result plus its serving metadata.

    ``snapshot`` is the exact version the query ran against — callers
    can replay the query serially on ``snapshot.doc`` and must get a
    bit-identical result (the isolation contract the stress test pins).
    """

    result: QueryResult
    snapshot: Snapshot
    wait_ms: float
    run_ms: float
    attempts: int = 1
    cached: bool = False

    @property
    def items(self) -> list:
        return self.result.items

    @property
    def snapshot_id(self) -> int:
        return self.snapshot.snapshot_id

    def serialize(self) -> str:
        return self.result.serialize()

    def __len__(self) -> int:
        return len(self.result)

    def __iter__(self):
        return iter(self.result.items)


class _Request:
    """One queued execution (one future; possibly many submitters)."""

    __slots__ = ("text", "norm_text", "doc", "strategy", "params", "trace",
                 "timeout_ms", "deadline", "submitted", "future", "key",
                 "executor", "client")

    def __init__(self, text: str, doc: str, strategy: str,
                 params: Mapping | None, trace: bool,
                 timeout_ms: float | None,
                 executor: ExecutionBackend | None = None,
                 client: str | None = None) -> None:
        self.text = text
        self.norm_text = normalize_query_text(text)
        self.doc = doc
        self.strategy = strategy
        self.params = dict(params) if params else None
        self.trace = trace
        self.timeout_ms = timeout_ms
        self.executor = executor if executor is not None \
            else ExecutionBackend()
        #: Caller identity (network connection + request id); tags the
        #: slow-query log so remote offenders are attributable.
        self.client = client
        self.submitted = time.perf_counter()
        self.deadline = (self.submitted + timeout_ms / 1000.0
                         if timeout_ms is not None else None)
        self.future: Future = Future()
        #: Coalescing identity; ``None`` disables coalescing and result
        #: caching (parameterized or traced requests are never shared).
        #: The executor backend key is part of the identity: a serial
        #: and a parallel run of one query return identical items but
        #: differ in trace/counters, so they never share an execution.
        self.key = ((doc, self.norm_text, strategy, self.executor.key)
                    if params is None and not trace else None)


class QueryService:
    """A bounded worker pool serving queries over catalog snapshots.

    Parameters
    ----------
    source:
        A :class:`~repro.serve.catalog.Catalog` (served as-is), or a
        :class:`~repro.xmlkit.tree.Document` / XML text registered as
        the default document name.
    workers:
        Worker thread count (concurrent executions).
    max_queue:
        Admission bound on *waiting* requests; ``submit`` past it raises
        :class:`~repro.errors.ServiceOverloadedError`.
    default_timeout_ms:
        Deadline applied when a call does not pass ``timeout_ms``.
    result_cache:
        Spec for the snapshot-keyed result cache (see
        :func:`repro.serve.cachepolicy.resolve_result_cache`):
        ``None`` for the default byte-budgeted LRU, ``0``/``"off"`` to
        disable, a byte budget (``int`` or ``"16mb"``), a knob mapping
        (``max_bytes`` / ``max_entries`` / ``ttl_s`` /
        ``max_entry_bytes`` / ``adaptive``), a
        :class:`~repro.serve.cachepolicy.CachePolicy` or a prebuilt
        :class:`~repro.serve.cachepolicy.ResultCacheStorage`.  The
        deprecated ``result_cache_size=N`` (entry count) still maps for
        one release.
    default_document:
        Name used when calls omit ``doc`` (and for registering a
        non-catalog ``source``).
    slow_query_ms / slow_log:
        Route served queries through a slow-query log: either a
        threshold for a service-owned log, or an existing
        :class:`~repro.obs.slowlog.SlowQueryLog` to share (what
        :meth:`Database.serve <repro.engine.database.Database.serve>`
        passes).  Served records are tagged with the snapshot id, the
        executed strategy and the deadline state (``none``/``ok``/
        ``expired``).
    """

    def __init__(self, source: Catalog | Document | str, *,
                 workers: int = 4, max_queue: int = 64,
                 default_timeout_ms: float | None = None,
                 result_cache=None,
                 result_cache_size: int | None = None,
                 default_document: str = "main",
                 slow_query_ms: float | None = None,
                 slow_log: SlowQueryLog | None = None,
                 analyze_queries: bool = True) -> None:
        if workers < 1:
            raise UsageError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise UsageError(f"max_queue must be >= 1, got {max_queue}")
        if isinstance(source, Catalog):
            self.catalog = source
        else:
            self.catalog = Catalog(analyze_queries=analyze_queries)
            self.catalog.register(default_document, source)
        self.default_document = default_document
        self.default_timeout_ms = default_timeout_ms
        self.max_queue = max_queue

        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._inflight_count = 0
        self._inflight: dict[tuple, Future] = {}
        self._closed = False
        #: Lazily created pool for intra-query partition scans.  It is
        #: distinct from the serve workers on purpose: scheduling
        #: partition tasks onto the bounded request pool could deadlock
        #: (every worker blocked waiting for partitions no worker is
        #: free to run).
        from repro.physical.process_scan import ScanPools

        self._scan_pools = ScanPools(
            thread_workers=max(2, workers),
            thread_name_prefix="repro-scan")

        #: Policy/storage result cache (``None`` when disabled).  The
        #: catalog's retire hook invalidates synchronously, so a retired
        #: snapshot's entries are gone before ``commit`` returns.
        self.result_cache: ResultCacheStorage | None = resolve_result_cache(
            absorb_result_cache("QueryService", result_cache,
                                result_cache_size))
        self.catalog.on_retire(self._purge_results)

        self.slow_log = (slow_log if slow_log is not None
                         else SlowQueryLog(slow_query_ms)
                         if slow_query_ms is not None else None)
        #: Extra ``stats()`` sections registered by collaborators (the
        #: network server publishes its admission controller here).
        self._stats_sections: dict[str, Callable[[], dict]] = {}
        #: Per-service telemetry (the process metrics aggregate across
        #: services; these stay local so ``stats()`` is *this* service).
        self._count_lock = threading.Lock()
        self._counts = dict.fromkeys(_SERVICE_COUNTERS, 0)
        self._started = time.perf_counter()
        self._busy_ns = 0

        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-serve-{i}",
                             daemon=True)
            for i in range(workers)]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def submit(self, text: str, *, doc: str | None = None,
               strategy: str = "auto", params: Mapping | None = None,
               timeout_ms: float | None = None,
               trace: bool = False,
               executor: ExecutionBackend | str | None = None,
               client: str | None = None) -> Future:
        """Enqueue one query; returns a future of :class:`ServeResult`.

        An identical un-parameterized, un-traced request already queued
        or executing is *coalesced*: the same future is returned and the
        query runs once.  ``executor`` selects the intra-query execution
        backend (see :meth:`Engine.query`); partition scans run on scan
        pools the service owns, separate from the serve workers, so
        parallel queries never deadlock against admission control.
        ``client`` is an opaque caller identity (the network server
        passes connection#request ids) that tags slow-query records.
        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        queue is full and :class:`~repro.errors.UsageError` after
        :meth:`close`.

        A query the lint already proved statically empty (a cached
        ``static-empty`` plan for the current snapshot) is answered
        *inline* on the submitting thread — no queue slot, no worker:
        provably-empty traffic can never crowd out real work.
        """
        request = self._request(text, doc, strategy, params,
                                timeout_ms, trace,
                                resolve_backend(executor, strategy),
                                client)
        fast = self._try_static_empty(request)
        if fast is not None:
            return fast
        return self._enqueue([request])[0]

    def query(self, text: str, *, doc: str | None = None,
              strategy: str = "auto", params: Mapping | None = None,
              timeout_ms: float | None = None,
              trace: bool = False,
              executor: ExecutionBackend | str | None = None,
              client: str | None = None) -> ServeResult:
        """Synchronous :meth:`submit` — blocks for the result."""
        return self.submit(text, doc=doc, strategy=strategy, params=params,
                           timeout_ms=timeout_ms, trace=trace,
                           executor=executor, client=client).result()

    def query_batch(self, queries: Iterable[str | Mapping], *,
                    doc: str | None = None, strategy: str = "auto",
                    timeout_ms: float | None = None,
                    executor: ExecutionBackend | str | None = None
                    ) -> list[ServeResult]:
        """Submit a batch atomically and wait for every result.

        ``queries`` items are query strings or mappings with ``text``
        plus optional ``doc`` / ``strategy`` / ``params`` /
        ``timeout_ms`` overrides.  Admission is all-or-nothing: either
        the whole batch fits in the queue (duplicates coalesce into one
        slot) or nothing is enqueued and
        :class:`~repro.errors.ServiceOverloadedError` is raised.
        Results come back in submission order; a failed query re-raises
        its error here.
        """
        requests = []
        for spec in queries:
            if isinstance(spec, str):
                spec = {"text": spec}
            requests.append(self._request(
                spec["text"], spec.get("doc", doc),
                spec.get("strategy", strategy), spec.get("params"),
                spec.get("timeout_ms", timeout_ms), False,
                resolve_backend(spec.get("executor", executor),
                                spec.get("strategy", strategy))))
        futures = self._enqueue(requests)
        return [future.result() for future in futures]

    def updater(self, doc: str | None = None) -> SnapshotUpdater:
        """A copy-on-write update batch (see :meth:`Catalog.updater`)."""
        return self.catalog.updater(doc or self.default_document)

    def configure_slow_log(self, threshold_ms: float = 100.0,
                           path=None, max_entries: int = 1000) -> SlowQueryLog:
        """Enable (or reconfigure) the service's slow-query log."""
        self.slow_log = SlowQueryLog(threshold_ms, path, max_entries)
        return self.slow_log

    def _count(self, name: str, amount: int = 1) -> None:
        with self._count_lock:
            self._counts[name] += amount

    def close(self, drain: bool = True) -> None:
        """Stop the service. Idempotent.

        ``drain=True`` (default) serves every queued request first;
        ``drain=False`` fails queued requests with
        :class:`~repro.errors.QueryCancelledError`.  Either way, no new
        submissions are admitted and the workers exit.
        """
        with self._cond:
            if self._closed:
                pending: list[_Request] = []
            else:
                self._closed = True
                if drain:
                    while self._queue or self._inflight_count:
                        self._cond.wait()
                    pending = []
                else:
                    pending = list(self._queue)
                    self._queue.clear()
                    _QUEUE_DEPTH.set(0)
            self._cond.notify_all()
        for request in pending:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    QueryCancelledError("service closed before execution"))
        for thread in self._workers:
            thread.join()
        # Deterministic cleanup: drain and stop the service-owned scan
        # executors (thread and process pools).  Arena files of retired
        # snapshots were already released by the catalog's retire hook;
        # live snapshots release theirs when the catalog drops them.
        self._scan_pools.close(wait=True)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> QueryService:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def add_stats_section(self, name: str,
                          provider: Callable[[], dict]) -> None:
        """Register an extra :meth:`stats` section under ``name``.

        The network server uses this to publish its admission
        controller's decisions inside ``service.stats()``.  Reserved
        top-level keys cannot be shadowed.
        """
        if name in ("schema", "counters", "documents", "result_cache"):
            raise UsageError(f"stats section name {name!r} is reserved")
        self._stats_sections[name] = provider

    def remove_stats_section(self, name: str) -> None:
        """Drop a section registered with :meth:`add_stats_section`."""
        self._stats_sections.pop(name, None)

    def stats(self, top: int = 10) -> dict:
        """A structured JSON snapshot of the serving state.

        The payload is versioned: ``"schema": 1`` at the top level (the
        shape shared with :meth:`Database.stats
        <repro.engine.database.Database.stats>` and the ``stats`` wire
        frame; documented in DESIGN.md — ``python -m repro.obs report``
        refuses unknown versions).  The legacy flat occupancy keys
        (``queue_depth`` / ``inflight`` / ``result_cache_size`` /
        ``workers``) stay at the top level; on top of them: service
        uptime and worker utilization (busy worker-seconds over elapsed
        worker-seconds), the per-service telemetry counters,
        result-cache hit ratios, one section per registered document
        with its current snapshot id, shared plan-cache statistics and
        the runtime statistics store's snapshot (top ``top`` plans by
        accumulated time), plus any sections registered via
        :meth:`add_stats_section` (the network server's ``server``
        section, with the adaptive-admission state, appears here).
        """
        with self._cond:
            depth, inflight = len(self._queue), self._inflight_count
            busy_ns = self._busy_ns
        cached = len(self.result_cache) if self.result_cache is not None else 0
        with self._count_lock:
            counts = dict(self._counts)
        uptime_s = max(time.perf_counter() - self._started, 1e-9)
        utilization = min(
            busy_ns / 1e9 / (uptime_s * len(self._workers)), 1.0)
        _UTILIZATION.set(utilization)
        documents = {}
        for name in self.catalog.names():
            documents[name] = {
                "snapshot_id": self.catalog.current(name).snapshot_id,
                "plan_cache": self.catalog.plan_cache(name).stats(),
                "statstore": self.catalog.stats_store(name).snapshot(top=top),
            }
        payload = {
            "schema": 1,
            "queue_depth": depth, "inflight": inflight,
            "result_cache_size": cached,
            "workers": len(self._workers),
            "uptime_s": round(uptime_s, 3),
            "worker_utilization": round(utilization, 4),
            "counters": counts,
            "result_cache": (
                self.result_cache.stats()
                if self.result_cache is not None else {"enabled": False}),
            "documents": documents,
            "querylint": {
                "enabled": getattr(self.catalog, "analyze_queries", True),
                "static_empty_fastpath": counts["static_empty_fastpath"],
            },
            "slow_queries": (
                None if self.slow_log is None else {
                    "threshold_ms": self.slow_log.threshold_ms,
                    "entries": len(self.slow_log),
                }),
        }
        for name, provider in list(self._stats_sections.items()):
            payload[name] = provider()
        return payload

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------

    def _request(self, text: str, doc: str | None, strategy: str,
                 params: Mapping | None, timeout_ms: float | None,
                 trace: bool, executor: ExecutionBackend | None = None,
                 client: str | None = None) -> _Request:
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        return _Request(text, doc or self.default_document, strategy,
                        params, trace, timeout_ms, executor, client)

    def _try_static_empty(self, request: _Request) -> Future | None:
        """Answer a provably-empty query inline, if it is known to be.

        Only un-parameterized, un-traced requests qualify (the same
        population the result cache serves), and only when the shared
        plan cache already holds a ``static-empty`` plan for this exact
        (query, strategy, executor, snapshot shape) — a pure peek,
        so clean queries pay one dictionary lookup.  The execution
        itself is the engine's static-empty short-circuit: no scan, so
        running it on the submitting thread is cheaper than the
        queue/worker handoff it replaces.  Any surprise (a racing
        publish, a failed lookup) falls back to normal admission.
        """
        if request.params is not None or request.trace:
            return None
        with self._cond:
            if self._closed:
                raise UsageError("query service is closed")
        started = time.perf_counter()
        try:
            snapshot = self.catalog.pin(request.doc)
        except Exception:
            return None   # unknown doc: the queue path raises properly
        try:
            # Pure peek: an engine the workers already built.  A first
            # submission (no engine yet, so no cached plan either) just
            # takes the queue path; constructing one here would stall
            # the submitting thread on stats/index/summary builds.
            engine = self.catalog.cached_engine(snapshot)
            if engine is None or not engine.cached_static_empty(
                    request.text, request.strategy, request.executor):
                return None
            result = engine.query(request.text, strategy=request.strategy,
                                  executor=request.executor)
        except Exception:
            return None   # let the worker path surface the real error
        finally:
            self.catalog.unpin(snapshot)
        run_ms = (time.perf_counter() - started) * 1e3
        _QUERYLINT_FASTPATH.inc()
        self._count("submitted")
        self._count("completed")
        self._count("static_empty_fastpath")
        _RUN_MS.observe(run_ms)
        future: Future = Future()
        future.set_result(ServeResult(result, snapshot, 0.0, run_ms,
                                      attempts=1, cached=False))
        return future

    def _enqueue(self, requests: list[_Request]) -> list[Future]:
        with self._cond:
            if self._closed:
                raise UsageError("query service is closed")
            futures: list[Future] = []
            fresh: list[_Request] = []
            batch_keys: dict[tuple, Future] = {}
            for request in requests:
                shared = None
                if request.key is not None:
                    shared = (self._inflight.get(request.key)
                              or batch_keys.get(request.key))
                if shared is not None:
                    _COALESCED.inc()
                    self._count("submitted")
                    self._count("coalesced")
                    futures.append(shared)
                    continue
                fresh.append(request)
                futures.append(request.future)
                if request.key is not None:
                    batch_keys[request.key] = request.future
            if len(self._queue) + len(fresh) > self.max_queue:
                _REJECTIONS.inc(len(fresh))
                self._count("rejections", len(fresh))
                raise ServiceOverloadedError(queue_depth=len(self._queue))
            for request in fresh:
                self._count("submitted")
                self._queue.append(request)
                if request.key is not None:
                    self._inflight[request.key] = request.future
            _QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify_all()
            return futures

    # ------------------------------------------------------------------
    # Worker loop.
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return      # closed and drained
                request = self._queue.popleft()
                _QUEUE_DEPTH.set(len(self._queue))
                self._inflight_count += 1
                _INFLIGHT.set(self._inflight_count)
            busy_started = time.perf_counter_ns()
            try:
                self._serve(request)
            finally:
                busy = time.perf_counter_ns() - busy_started
                with self._cond:
                    self._busy_ns += busy
                    self._inflight_count -= 1
                    _INFLIGHT.set(self._inflight_count)
                    if request.key is not None and \
                            self._inflight.get(request.key) is request.future:
                        del self._inflight[request.key]
                    self._cond.notify_all()

    def _serve(self, request: _Request) -> None:
        future = request.future
        if not future.set_running_or_notify_cancel():
            return
        now = time.perf_counter()
        wait_ms = (now - request.submitted) * 1e3
        _WAIT_MS.observe(wait_ms)
        if request.deadline is not None and now >= request.deadline:
            _TIMEOUTS.inc()
            _SERVICE_TIMEOUTS.inc()
            self._count("timeouts")
            if self.slow_log is not None:
                self.slow_log.observe(
                    request.text, request.strategy, "(expired in queue)",
                    wait_ms, deadline_state="expired",
                    client=request.client)
            future.set_exception(QueryTimeoutError(
                "query expired in the service queue",
                timeout_ms=request.timeout_ms))
            return
        try:
            served = self._execute(request, wait_ms)
        except BaseException as exc:  # the future is the error channel
            if isinstance(exc, QueryTimeoutError):
                _SERVICE_TIMEOUTS.inc()
                self._count("timeouts")
            self._count("failed")
            future.set_exception(exc)
        else:
            self._count("completed")
            _RUN_MS.observe(served.run_ms)
            future.set_result(served)

    def _execute(self, request: _Request, wait_ms: float) -> ServeResult:
        attempts = 0
        while True:
            attempts += 1
            snapshot = self.catalog.pin(request.doc)
            started = time.perf_counter()
            try:
                cache_key = None
                if request.key is not None and self.result_cache is not None:
                    cache_key = (request.doc, snapshot.snapshot_id,
                                 request.norm_text, request.strategy,
                                 request.executor.key)
                    cached = self._result_get(cache_key)
                    if cached is not None:
                        run_ms = (time.perf_counter() - started) * 1e3
                        return ServeResult(cached, snapshot, wait_ms, run_ms,
                                           attempts, cached=True)
                engine = self.catalog.engine_for(snapshot)
                if request.executor.parallelism > 1:
                    engine.scan_executor = self._scan_pools.thread_pool()
                    engine.process_executor = \
                        self._scan_pools.process_backend()
                try:
                    result = engine.query(
                        request.text, strategy=request.strategy,
                        trace=request.trace, params=request.params,
                        timeout_ms=self._remaining_ms(request),
                        executor=request.executor)
                except PlanInvariantError as exc:
                    if attempts == 1 and "SV001" in exc.rule_ids:
                        # A cached plan raced a snapshot flip: purge the
                        # stale entries and retry against a fresh pin.
                        _RETRIES.inc()
                        self.catalog.purge_stale_plans(request.doc)
                        continue
                    raise
                except QueryTimeoutError:
                    self._observe_slow(request, engine, snapshot,
                                       (time.perf_counter() - started) * 1e3,
                                       None, deadline_state="expired")
                    raise
                if cache_key is not None:
                    self._result_put(cache_key, result)
                run_ms = (time.perf_counter() - started) * 1e3
                self._observe_slow(
                    request, engine, snapshot, run_ms,
                    result.counters.snapshot() if result.counters else None,
                    deadline_state=("none" if request.deadline is None
                                    else "ok"))
                return ServeResult(result, snapshot, wait_ms, run_ms,
                                   attempts, cached=False)
            finally:
                self.catalog.unpin(snapshot)

    def _remaining_ms(self, request: _Request) -> float | None:
        """Deadline budget left for execution (measured from submit)."""
        if request.deadline is None:
            return None
        return max((request.deadline - time.perf_counter()) * 1e3, 0.0)

    def _observe_slow(self, request: _Request, engine, snapshot: Snapshot,
                      elapsed_ms: float, counters: dict | None, *,
                      deadline_state: str) -> None:
        """Route one served execution through the slow-query log."""
        if self.slow_log is None:
            return
        record = self.slow_log.observe(
            request.text, request.strategy, engine.last_plan or "?",
            elapsed_ms, counters,
            snapshot_id=snapshot.snapshot_id,
            deadline_state=deadline_state,
            client=request.client)
        if record is not None:
            self._count("slow_queries")

    # ------------------------------------------------------------------
    # Snapshot-keyed result cache.
    # ------------------------------------------------------------------

    def _result_get(self, key: tuple) -> QueryResult | None:
        result = self.result_cache.get(key)
        if result is None:
            _RESULT_MISSES.inc()
            self._count("result_cache_misses")
            return None
        _RESULT_HITS.inc()
        self._count("result_cache_hits")
        return result

    def _result_put(self, key: tuple, result: QueryResult) -> None:
        storage = self.result_cache
        nbytes = storage.sizer(result) + ENTRY_OVERHEAD_BYTES
        # Feed the entry-size distribution the adaptive policy reads
        # back; the document's stats store outlives snapshot churn.
        try:
            self.catalog.stats_store(key[0]).record_result_bytes(nbytes)
        except UsageError:
            pass    # document dropped while the request was in flight
        storage.put(key, result, nbytes=nbytes)
        new_budget = storage.policy.adapt(storage, self._stats_stores)
        if new_budget is not None and new_budget != storage.max_bytes:
            storage.resize(max_bytes=new_budget)

    def _stats_stores(self) -> list:
        return [self.catalog.stats_store(name)
                for name in self.catalog.names()]

    def _purge_results(self, snapshot: Snapshot) -> None:
        """Catalog retire hook: eagerly drop the snapshot's results.

        Runs synchronously inside the retire notification — the audit
        counters in the storage prove no entry of the retired snapshot
        survives past this call.
        """
        if self.result_cache is not None:
            self.result_cache.invalidate_snapshot(
                snapshot.name, snapshot.snapshot_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.stats()
        return (f"<QueryService workers={state['workers']} "
                f"queue={state['queue_depth']} inflight={state['inflight']}>")
