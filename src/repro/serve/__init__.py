"""``repro.serve`` — snapshot-isolated concurrent query serving.

The serving layer on top of the engine: a :class:`Catalog` of named,
versioned documents (immutable :class:`Snapshot` per published update
batch, copy-on-write via :class:`SnapshotUpdater`), a
:class:`QueryService` worker pool with admission control, per-query
deadlines, snapshot-keyed plan/result caching and retry-once on
invalidated plans — and the network front end over it: a
:class:`Server` speaking the length-prefixed JSON frame protocol of
:mod:`repro.serve.protocol` with adaptive, latency-targeting admission
(:mod:`repro.serve.throttle`), mirrored by the blocking
:class:`Client` in :mod:`repro.serve.client`.

Most callers reach this through the top-level facade::

    import repro
    import repro.serve.client

    with repro.connect("library.xml") as db:
        server = db.listen()                    # network front end
        client = repro.serve.client.connect(*server.address)
        print(client.query("//book[author]/title",
                           timeout_ms=100).serialize())
"""

from repro.serve.cachepolicy import (
    AdaptiveCachePolicy,
    CachePolicy,
    ResultCacheStorage,
    resolve_result_cache,
)
from repro.serve.catalog import Catalog
from repro.serve.client import Client, ClientResult, RemotePrepared
from repro.serve.server import Server, listen
from repro.serve.service import QueryService, ServeResult
from repro.serve.snapshot import Snapshot, SnapshotUpdater, fork_document
from repro.serve.throttle import AdmissionController

__all__ = [
    "AdaptiveCachePolicy",
    "AdmissionController",
    "CachePolicy",
    "Catalog",
    "Client",
    "ClientResult",
    "QueryService",
    "RemotePrepared",
    "ResultCacheStorage",
    "ServeResult",
    "Server",
    "Snapshot",
    "SnapshotUpdater",
    "fork_document",
    "listen",
    "resolve_result_cache",
]
