"""``repro.serve`` — snapshot-isolated concurrent query serving.

The serving layer on top of the engine: a :class:`Catalog` of named,
versioned documents (immutable :class:`Snapshot` per published update
batch, copy-on-write via :class:`SnapshotUpdater`) and a
:class:`QueryService` worker pool with admission control, per-query
deadlines, snapshot-keyed plan/result caching and retry-once on
invalidated plans.

Most callers reach this through the top-level facade::

    import repro

    with repro.connect("library.xml") as db:
        service = db.serve(workers=8)
        future = service.submit("//book[author]/title", timeout_ms=100)
        print(future.result().serialize())
"""

from repro.serve.catalog import Catalog
from repro.serve.service import QueryService, ServeResult
from repro.serve.snapshot import Snapshot, SnapshotUpdater, fork_document

__all__ = [
    "Catalog",
    "QueryService",
    "ServeResult",
    "Snapshot",
    "SnapshotUpdater",
    "fork_document",
]
