"""The v1 wire protocol shared by the network server and client.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Every frame carries
``"v": 1`` (the protocol version) and a ``"type"``; request frames add
an ``"id"`` the responses echo, so a connection can interleave the
responses of pipelined requests without ambiguity.

Request types (client → server)
    ``query``
        One-shot evaluation: ``text`` plus the unified optional kwargs
        (``doc`` / ``strategy`` / ``params`` / ``timeout_ms`` /
        ``executor``) — the exact spelling of
        :meth:`QueryService.submit <repro.serve.service.QueryService.submit>`.
        ``executor`` travels as the canonical backend key string
        (``"serial"`` / ``"threads:4"`` / ``"processes:4"``, see
        :class:`~repro.engine.backend.ExecutionBackend`).  The
        pre-redesign ``parallelism`` integer field had its one-release
        acceptance window and is now ignored.
    ``prepare`` / ``execute``
        Compile-once / execute-many over the wire: ``prepare`` answers
        with a server-side handle and the external ``$parameter``
        names; ``execute`` runs it with ``params``.
    ``stats``
        The versioned :meth:`QueryService.stats
        <repro.serve.service.QueryService.stats>` payload (which
        includes the server's admission-controller section).
    ``ping``
        Liveness / round-trip probe.

Response types (server → client)
    ``hello`` (sent once on connect), ``pong``, ``prepared``,
    ``stats``, then for results a *stream*: one ``result_header``,
    zero or more ``result_chunk`` frames each carrying a slice of the
    item sequence, and a closing ``result_footer`` with the serving
    metadata.  Failures — including a deadline expiring *mid-stream* —
    arrive as an ``error`` frame whose ``code`` is the
    :data:`~repro.errors.WIRE_CODES` code of the raised class; a
    started result stream is abandoned where it stood.

Items travel in a self-describing form (:func:`encode_item` /
:func:`decode_item`) chosen so the client can reproduce
:meth:`QueryResult.serialize <repro.engine.result.QueryResult.serialize>`
*bit-identically*: nodes as their compact XML serialization, attribute
items as their value text, atoms as tagged JSON scalars.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

from repro.engine.result import atom_text
from repro.errors import ProtocolError
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import Node

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "encode_item",
    "decode_item",
    "FrameReader",
]

#: Version stamped into (and required of) every frame.
PROTOCOL_VERSION = 1

#: Default inbound frame-size bound.  Frames above it are refused
#: before the payload is read, so a hostile length prefix cannot make
#: the peer allocate unbounded memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one frame: length prefix + compact JSON body.

    ``v`` is stamped in when absent so callers build plain dicts.
    """
    if "v" not in payload:
        payload = {"v": PROTOCOL_VERSION, **payload}
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Decode one frame body; validates shape and version."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"malformed frame: expected a JSON object, "
            f"got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this peer speaks v{PROTOCOL_VERSION})")
    if not isinstance(payload.get("type"), str):
        raise ProtocolError("malformed frame: missing 'type'")
    return payload


class FrameReader:
    """Incremental frame decoder over a byte stream (client side).

    ``feed()`` raw bytes in, ``frames()`` complete frames out; partial
    frames stay buffered.  Raises :class:`~repro.errors.ProtocolError`
    on an oversized length prefix or an undecodable body.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return frames
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self._max:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the "
                    f"{self._max}-byte limit")
            if len(self._buffer) < _LENGTH.size + length:
                return frames
            body = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
            del self._buffer[:_LENGTH.size + length]
            frames.append(decode_frame(body))


def read_frame(stream: BinaryIO,
               max_frame_bytes: int = MAX_FRAME_BYTES) -> dict[str, Any]:
    """Blocking read of exactly one frame from a file-like socket.

    Raises :class:`~repro.errors.ProtocolError` on a mid-frame EOF or
    an oversized frame, and :class:`EOFError` on a clean EOF at a frame
    boundary (the peer closed the connection).
    """
    header = stream.read(_LENGTH.size)
    if not header:
        raise EOFError("connection closed")
    if len(header) < _LENGTH.size:
        raise ProtocolError("connection closed mid-frame (truncated length)")
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte "
            "limit")
    body = b""
    while len(body) < length:
        piece = stream.read(length - len(body))
        if not piece:
            raise ProtocolError("connection closed mid-frame (truncated body)")
        body += piece
    return decode_frame(body)


# ----------------------------------------------------------------------
# Result items on the wire.
# ----------------------------------------------------------------------


def encode_item(item: Any) -> dict[str, Any]:
    """One result item in wire form.

    Nodes serialize to their compact XML (the exact text
    ``QueryResult.serialize`` would emit for them); attribute items to
    their value string; atoms stay tagged JSON scalars so the client
    can re-apply the atom formatting rules instead of trusting
    floating-point round-trips through text.
    """
    if isinstance(item, Node):
        return {"kind": "node", "xml": serialize(item)}
    if isinstance(item, (bool, int, float, str)):
        return {"kind": "atom", "value": item}
    # AttrNode (imported lazily to keep this module's imports light).
    value = getattr(item, "value", None)
    if isinstance(value, str):
        return {"kind": "attr", "value": value}
    raise ProtocolError(
        f"cannot encode result item of type {type(item).__name__}")


def decode_item(payload: dict[str, Any]) -> tuple[str, Any]:
    """Decode one wire item to ``(kind, value)``.

    ``("node", xml_text)`` / ``("attr", value)`` / ``("atom", value)``
    with numeric atoms widened to float — the same widening the engine
    applies, so the client-side serializer (see
    :class:`repro.serve.client.ClientResult`) reproduces
    :func:`~repro.engine.result.atom_text` output exactly.
    """
    kind = payload.get("kind")
    if kind == "node":
        xml = payload.get("xml")
        if not isinstance(xml, str):
            raise ProtocolError("malformed node item")
        return "node", xml
    if kind == "attr":
        value = payload.get("value")
        if not isinstance(value, str):
            raise ProtocolError("malformed attr item")
        return "attr", value
    if kind == "atom":
        value = payload.get("value")
        if isinstance(value, bool) or isinstance(value, str):
            return "atom", value
        if isinstance(value, (int, float)):
            return "atom", float(value)
        raise ProtocolError("malformed atom item")
    raise ProtocolError(f"unknown item kind {kind!r}")


def atom_wire_text(value: Any) -> str:
    """Render a decoded atom exactly like the in-process engine."""
    return atom_text(value)
