"""LRU plan cache: compiled-query reuse across repeated ``query()`` calls.

The serving-path observation behind prepared queries applies equally to
ad-hoc traffic: the same query text arriving twice should not be
re-parsed, re-built and re-optimized.  :class:`PlanCache` memoizes the
full compile pipeline keyed on

``(normalized query text, strategy, document-statistics fingerprint)``

where *normalized* collapses whitespace (so reformatted copies of one
query share an entry) and the fingerprint ties a plan to the document
version whose statistics the optimizer consulted — a structural update
changes the fingerprint, so stale plans are never even looked up, and
:meth:`PlanCache.invalidate` additionally drops them eagerly.

Counters (all exported through ``repro.obs``):

=========================================  ==============================
``repro_plan_cache_hits_total``            lookups served from cache
``repro_plan_cache_misses_total``          lookups that compiled fresh
``repro_plan_cache_evictions_total``       LRU evictions at capacity
``repro_plan_cache_invalidations_total``   entries dropped by
                                           invalidation (label:
                                           ``reason``)
=========================================  ==============================
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from repro.errors import UsageError
from repro.obs.metrics import REGISTRY

__all__ = ["PlanCache", "normalize_query_text",
           "CACHE_HITS", "CACHE_MISSES", "CACHE_EVICTIONS",
           "CACHE_INVALIDATIONS"]

CACHE_HITS = REGISTRY.counter(
    "repro_plan_cache_hits_total", "Plan-cache lookups served from cache")
CACHE_MISSES = REGISTRY.counter(
    "repro_plan_cache_misses_total", "Plan-cache lookups that compiled fresh")
CACHE_EVICTIONS = REGISTRY.counter(
    "repro_plan_cache_evictions_total", "Plans evicted by LRU at capacity")
CACHE_INVALIDATIONS = REGISTRY.counter(
    "repro_plan_cache_invalidations_total",
    "Plans dropped by explicit invalidation")

DEFAULT_CAPACITY = 128


def normalize_query_text(text: str) -> str:
    """Collapse whitespace so trivially reformatted queries share plans."""
    return " ".join(text.split())


class PlanCache:
    """A thread-safe LRU mapping cache keys to compiled plans.

    The cache stores whatever value object the engine hands it (the
    session layer uses :class:`~repro.engine.prepared.CachedPlan`); it
    owns only the replacement policy and the counters.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise UsageError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        # Local counters mirror the process-wide metrics so one engine's
        # cache behaviour is inspectable even with other engines running.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached plan for ``key``, refreshing its recency; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            CACHE_HITS.inc()
            return entry

    def peek(self, key: Hashable) -> Any | None:
        """The cached plan for ``key`` without touching recency or
        counters — for introspection (the serving fast path asks "is
        this a known statically-empty plan?" before deciding whether to
        occupy a worker slot, which must not skew the hit ratio)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, plan: Any) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry at capacity.

        Plans that declare a ``verified`` flag (the engine's
        :class:`~repro.engine.prepared.CachedPlan`) must have passed the
        invariant analyzer before they may enter the cache — a cached
        malformed plan would corrupt every subsequent replay.
        """
        if getattr(plan, "verified", None) is False:
            raise UsageError(
                "refusing to cache a plan that has not passed invariant "
                "verification (run repro.analysis.verify_plan first)")
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = plan
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                CACHE_EVICTIONS.inc()
            self._entries[key] = plan

    def invalidate(self, reason: str = "update") -> int:
        """Drop every entry; returns how many were dropped.

        ``reason`` labels the invalidation counter (``update`` for
        document mutations, ``reopen`` for Database open/save
        round-trips, ``manual`` for explicit clears).
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        if dropped:
            self.invalidations += dropped
            CACHE_INVALIDATIONS.inc(dropped, reason=reason)
        return dropped

    def invalidate_where(self, predicate: Any, reason: str = "manual") -> int:
        """Drop the entries ``predicate(key, plan)`` selects.

        The serving catalog uses this to purge a retired snapshot's
        plans (``reason="snapshot-drop"``) without disturbing entries
        belonging to live versions that share the cache.  Returns how
        many entries were dropped.
        """
        with self._lock:
            doomed = [key for key, plan in self._entries.items()
                      if predicate(key, plan)]
            for key in doomed:
                del self._entries[key]
        dropped = len(doomed)
        if dropped:
            self.invalidations += dropped
            CACHE_INVALIDATIONS.inc(dropped, reason=reason)
        return dropped

    def stats(self) -> dict[str, int | float | None]:
        """This cache's counters, for ``explain``-style introspection."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_ratio": round(self.hits / lookups, 4) if lookups else None,
        }
