"""Shared query-expression evaluation: construction, ordering, where checks.

Both the naive oracle interpreter and the BlossomTree executor funnel
their per-tuple work — return-clause construction, order-by keys,
where-clause (re-)verification — through :class:`DirectEvaluator`, so
the two engines cannot drift apart in anything except how they find the
binding tuples.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import DNFError
from repro.xmlkit.tree import Document, Node
from repro.xpath.ast import Expr
from repro.xpath.evaluator import EvalContext, XPathEvaluator, boolean_value
from repro.xquery.ast import (
    ElementConstructor,
    Enclosed,
    FLWOR,
    ForClause,
    LetClause,
    OrderSpec,
    QueryExpr,
    Sequence,
    TextItem,
)
from repro.engine.result import Item, ResultBuilder

__all__ = ["DirectEvaluator", "order_key"]


class DirectEvaluator:
    """Evaluates any query expression under a given binding environment.

    FLWOR expressions are expanded by direct iteration (the Section 1
    semantics); the BlossomTree executor uses this class only for the
    *inner* pieces (where/order-by/return of an already-enumerated
    tuple), while the oracle uses it for everything.

    Parameters mirror :class:`repro.baseline.naive_flwor.NaiveInterpreter`.
    """

    def __init__(self, doc: Document,
                 resolve_doc: Callable[[str], Document] | None = None,
                 work_budget: int | None = None) -> None:
        self.doc = doc
        self.resolve_doc = resolve_doc if resolve_doc is not None else (lambda uri: doc)
        self.work_budget = work_budget
        self.tuples_examined = 0
        self.xpath = XPathEvaluator()

    # ------------------------------------------------------------------
    # Expression dispatch.
    # ------------------------------------------------------------------

    def eval_query_expr(self, expr: QueryExpr, bindings: dict) -> list[Item]:
        if isinstance(expr, FLWOR):
            return self.eval_flwor(expr, bindings)
        if isinstance(expr, ElementConstructor):
            return [self.construct(expr, bindings)]
        if isinstance(expr, Sequence):
            items: list[Item] = []
            for sub in expr.exprs:
                items.extend(self.eval_query_expr(sub, bindings))
            return items
        value = self.xpath.evaluate(expr, self.context(bindings))
        if isinstance(value, list):
            return list(value)
        return [value]

    def context(self, bindings: dict) -> EvalContext:
        return EvalContext(self.doc.document_node, variables=bindings,
                           resolve_doc=self.resolve_doc)

    def check_where(self, where: Expr | None, bindings: dict) -> bool:
        """Effective boolean value of a where clause under bindings."""
        if where is None:
            return True
        return boolean_value(self.xpath.evaluate(where, self.context(bindings)))

    # ------------------------------------------------------------------
    # FLWOR by direct iteration.
    # ------------------------------------------------------------------

    def eval_flwor(self, flwor: FLWOR, outer: dict) -> list[Item]:
        tuples: list[dict] = []
        self._expand_clauses(flwor.clauses, 0, dict(outer), tuples, flwor.where)
        tuples = self.order_tuples(flwor.order_by, tuples)
        items: list[Item] = []
        for bindings in tuples:
            items.extend(self.eval_query_expr(flwor.return_expr, bindings))
        return items

    def _expand_clauses(self, clauses, index: int, bindings: dict,
                        out: list[dict], where: Expr | None) -> None:
        if index == len(clauses):
            self.tuples_examined += 1
            if self.work_budget is not None and self.tuples_examined > self.work_budget:
                raise DNFError("direct FLWOR evaluation exceeded its work budget",
                               budget=self.work_budget)
            if self.check_where(where, bindings):
                out.append(dict(bindings))
            return
        clause = clauses[index]
        sequence = self.xpath.evaluate_path(clause.source, self.context(bindings))
        if isinstance(clause, ForClause):
            for item in sequence:
                bindings[clause.var] = [item]
                self._expand_clauses(clauses, index + 1, bindings, out, where)
            bindings.pop(clause.var, None)
        else:
            assert isinstance(clause, LetClause)
            bindings[clause.var] = sequence
            self._expand_clauses(clauses, index + 1, bindings, out, where)
            bindings.pop(clause.var, None)

    # ------------------------------------------------------------------
    # Ordering.
    # ------------------------------------------------------------------

    def order_tuples(self, specs: tuple[OrderSpec, ...],
                     tuples: list[dict]) -> list[dict]:
        """Stable order-by over binding tuples (no-op without specs)."""
        if not specs:
            return tuples
        decorated = []
        for index, bindings in enumerate(tuples):
            keys = [order_key(self.xpath.evaluate(s.key, self.context(bindings)),
                              s.descending)
                    for s in specs]
            decorated.append((keys, index, bindings))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return [entry[2] for entry in decorated]

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def construct(self, ctor: ElementConstructor, bindings: dict) -> Node:
        builder = ResultBuilder()
        self._construct_into(builder, ctor, bindings)
        return builder.finish()

    def _construct_into(self, builder: ResultBuilder, ctor: ElementConstructor,
                        bindings: dict) -> None:
        builder.start_element(ctor.tag, dict(ctor.attrs) if ctor.attrs else None)
        for item in ctor.content:
            if isinstance(item, TextItem):
                builder.text(item.text)
            elif isinstance(item, ElementConstructor):
                self._construct_into(builder, item, bindings)
            else:
                assert isinstance(item, Enclosed)
                # One enclosed expression is one content sequence: its
                # comma-separated parts flatten together so adjacent
                # atoms get the XQuery space separator.
                sequence: list[Item] = []
                for sub in item.exprs:
                    sequence.extend(self.eval_query_expr(sub, bindings))
                builder.add_items(sequence)
        builder.end_element()


def order_key(value, descending: bool):
    """Sortable key for one order-by value.

    Numbers sort numerically, other strings lexicographically; a leading
    type tag keeps mixed keys comparable.  Descending numeric keys
    negate; descending strings invert per-character codes.
    """
    if isinstance(value, list):
        text = value[0].string_value() if value else ""
    elif isinstance(value, bool):
        text = "1" if value else "0"
    else:
        text = str(value)
    text = text.strip()
    try:
        number = float(text)
    except ValueError:
        if descending:
            return (1, 0.0, tuple(-ord(c) for c in text))
        return (1, 0.0, text)
    return (0, -number if descending else number, "")
