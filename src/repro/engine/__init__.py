"""Query engine: compiler, optimizer, executor, session facade, results."""

from repro.engine.compiler import CompiledQuery, compile_query
from repro.engine.construct import DirectEvaluator
from repro.engine.cost import CostEstimate, CostModel
from repro.engine.database import Database
from repro.engine.executor import FLWORExecutor
from repro.engine.optimizer import PlanChoice, choose_strategy
from repro.engine.result import QueryResult, ResultBuilder
from repro.engine.session import Engine

__all__ = [
    "CompiledQuery",
    "CostEstimate",
    "CostModel",
    "Database",
    "DirectEvaluator",
    "Engine",
    "FLWORExecutor",
    "PlanChoice",
    "QueryResult",
    "ResultBuilder",
    "choose_strategy",
    "compile_query",
]
