"""Query engine: compiler, optimizer, executor, session facade, results,
prepared queries and the plan cache."""

from repro.engine.compiler import CompiledQuery, compile_query
from repro.engine.construct import DirectEvaluator
from repro.engine.cost import CostEstimate, CostModel
from repro.engine.database import Database
from repro.engine.executor import FLWORExecutor
from repro.engine.optimizer import PlanChoice, choose_strategy
from repro.engine.plancache import PlanCache, normalize_query_text
from repro.engine.prepared import CachedPlan, PreparedQuery, normalize_bindings
from repro.engine.result import QueryResult, ResultBuilder
from repro.engine.session import Engine

__all__ = [
    "CachedPlan",
    "CompiledQuery",
    "CostEstimate",
    "CostModel",
    "Database",
    "DirectEvaluator",
    "Engine",
    "FLWORExecutor",
    "PlanCache",
    "PlanChoice",
    "PreparedQuery",
    "QueryResult",
    "ResultBuilder",
    "choose_strategy",
    "compile_query",
    "normalize_bindings",
    "normalize_query_text",
]
