"""Prepared queries: the compile-once / execute-many serving path.

``engine.prepare(text)`` runs the full compile pipeline once — parse →
BlossomTree → NoK decomposition (Algorithm 1) → Dewey assignment →
strategy choice — and hands back a :class:`PreparedQuery` whose
``execute(params=None)`` replays the compiled plan any number of
times.  External ``$parameters`` (variables the query references but
never binds) get their values from ``params`` at execution time; the
compiled plan carries slots for them (residual where-conjuncts), so no
recompilation happens between executions.

A prepared query pins the document-statistics fingerprint it was
planned against.  If the document mutates underneath it, the next
``execute()`` transparently re-plans (through the engine's plan cache)
instead of running a choice the optimizer would no longer make —
execution results were never at risk (plans are document-independent),
but the *strategy* could have gone stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import BindingError
from repro.engine.backend import ExecutionBackend, resolve_backend
from repro.engine.compiler import CompiledQuery
from repro.engine.optimizer import PlanChoice
from repro.pattern.artifact import PatternArtifacts
from repro.xmlkit.tree import Node
from repro.xpath.evaluator import AttrNode

__all__ = ["CachedPlan", "PreparedQuery", "normalize_bindings"]


@dataclass
class CachedPlan:
    """Everything one execution needs, compiled once.

    This is the plan cache's value type: the compiled query (AST +
    BlossomTree + parameters), the optimizer's choice, and the reusable
    pattern artifacts (``None`` when the plan runs outside the
    BlossomTree pipeline — naive, xhive, or a static query).
    """

    compiled: CompiledQuery
    choice: PlanChoice
    artifacts: PatternArtifacts | None
    #: The strategy the caller asked for (``auto`` enables the late
    #: naive fallback; explicit strategies surface CompileError).
    requested: str
    #: Set by the engine once the invariant analyzer accepted the plan;
    #: the plan cache refuses to store plans that never passed it.
    verified: bool = False
    #: The serving snapshot this plan was compiled against (``None``
    #: outside the serving layer).  The catalog's SV001 gate compares
    #: it against the dropped-snapshot set before reusing the plan.
    snapshot_id: int | None = None
    #: Query lint proved the pattern matches nothing on this document
    #: shape: execution short-circuits to the empty sequence without
    #: scanning (the artifacts slot is ``None``).
    static_empty: bool = False
    #: Human-readable notes of the pruning rewrites applied while
    #: building this plan (empty when the plan runs the tree as
    #: compiled); surfaced by ``explain``/``explain_analyze``.
    rewrites: tuple[str, ...] = ()
    #: QL rule IDs the lint pass reported for this query (findings,
    #: whether or not they led to a rewrite).
    lint_rules: tuple[str, ...] = ()


def normalize_bindings(parameters: frozenset[str],
                       bindings: dict | None) -> dict[str, Any]:
    """Validate and normalize execution-time parameter bindings.

    Every declared parameter must be bound, every binding must name a
    declared parameter, and every value must live in the XPath value
    model: a string, a number (int is widened to float), a boolean, a
    node, or a sequence (list/tuple) of nodes.  Raises
    :class:`~repro.errors.BindingError` otherwise.
    """
    supplied = dict(bindings or {})
    missing = sorted(parameters - supplied.keys())
    if missing:
        names = ", ".join(f"${name}" for name in missing)
        raise BindingError(f"missing binding for external parameter {names}")
    unknown = sorted(supplied.keys() - parameters)
    if unknown:
        names = ", ".join(f"${name}" for name in unknown)
        raise BindingError(f"binding for unknown parameter {names} "
                           "(the query never references it)")
    normalized: dict[str, Any] = {}
    for name, value in supplied.items():
        normalized[name] = _normalize_value(name, value)
    return normalized


def _normalize_value(name: str, value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (Node, AttrNode)):
        return [value]
    if isinstance(value, (list, tuple)):
        items = list(value)
        for item in items:
            if not isinstance(item, (Node, AttrNode)):
                raise BindingError(
                    f"binding ${name}: sequences may only contain nodes, "
                    f"got {type(item).__name__}")
        return items
    raise BindingError(
        f"binding ${name}: {type(value).__name__} is outside the XPath "
        "value model (expected str, number, bool, node or node sequence)")


class PreparedQuery:
    """A query compiled once, executable many times.

    Obtained from :meth:`Engine.prepare` / :meth:`Database.prepare`;
    not constructed directly.
    """

    def __init__(self, engine, source: str, strategy: str,
                 plan: CachedPlan, fingerprint: tuple,
                 executor: ExecutionBackend | None = None) -> None:
        self._engine = engine
        self.source = source
        self.strategy = strategy
        self._plan = plan
        self._fingerprint = fingerprint
        #: Execution backend pinned at prepare() time; ``execute()`` may
        #: override it per call (which re-plans through the plan cache).
        self.executor = executor if executor is not None \
            else ExecutionBackend()

    @property
    def parallelism(self) -> int:
        """Partition budget of the pinned backend (legacy read alias)."""
        return self.executor.parallelism

    @property
    def parameters(self) -> frozenset[str]:
        """The external ``$parameters`` execute() must bind."""
        return self._plan.compiled.parameters

    @property
    def plan_description(self) -> str:
        """The optimizer's current choice, for introspection."""
        return str(self._plan.choice)

    def execute(self, *, params: dict | None = None,
                counters=None, work_budget: int | None = None,
                trace: bool = False, tracer=None,
                timeout_ms: float | None = None,
                executor: ExecutionBackend | str | None = None):
        """Run the prepared plan; see :meth:`Engine.query` for the
        tracing/budget/deadline knobs.  ``params`` maps parameter names
        (without ``$``) to values — strictly keyword-only, the unified
        spelling shared by every query surface (positional options and
        the pre-serving ``bindings=`` alias raise :class:`TypeError`).
        ``executor`` overrides the backend pinned at prepare() time for
        this call (which re-plans through the plan cache).
        """
        backend = None
        if executor is not None:
            backend = resolve_backend(executor, self.strategy)
        return self._engine._execute_prepared(
            self, bindings=params, counters=counters,
            work_budget=work_budget, trace=trace, tracer=tracer,
            timeout_ms=timeout_ms, backend=backend)

    def explain(self) -> str:
        """Describe the plan this prepared query runs."""
        return self._engine.explain(self.source, strategy=self.strategy)

    def __repr__(self) -> str:
        params = ", ".join(f"${p}" for p in sorted(self.parameters))
        return (f"PreparedQuery({self.source!r}, strategy={self.strategy!r}"
                + (f", parameters=[{params}]" if params else "") + ")")
