"""A cost model for physical-strategy selection (the paper's future work).

Section 6: "To choose an optimal plan automatically, the optimizer
needs a cost model or similar mechanism.  These will be topics of
future work."  This module supplies that mechanism in the paper's own
currency — *expected nodes touched*, the same unit the runtime
counters report — so the model's predictions are directly testable
against measurements.

Estimation rules (all per query, using document statistics and
tag-index cardinalities):

* **pipelined / stack merge** — one merged sequential scan of the
  document (``N`` nodes) plus a merge pass over each inter edge's two
  projected streams (bounded by tag cardinalities).  The strict
  pipelined variant is inapplicable (infinite cost) on recursive
  documents.
* **TwigStack** — the sum of the query vertices' tag-stream
  cardinalities (index I/O), infinite when the query is not a twig or
  a stream tag has no index.
* **BNLJ** — the scan plus, per inter edge, (outer cardinality) ×
  (average subtree size of the outer tag), the bounded rescan volume.
* **naive NL** — the scan plus (outer cardinality) × N per edge.
* **navigational (xhive)** — ``N`` per location step from the root,
  a coarse model of per-step re-traversal.

The model is deliberately simple — a handful of sufficient statistics,
no per-query sampling — and the benchmark
``benchmarks/test_cost_model.py`` measures its *regret*: how much
slower the model's pick is than the best strategy found by exhaustive
measurement.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.pattern.blossom import BlossomTree
from repro.pattern.decompose import Decomposition, decompose
from repro.physical.twigstack import twig_supported
from repro.xmlkit.index import TagIndex
from repro.xmlkit.stats import DocumentStats
from repro.xmlkit.tree import Document

__all__ = ["CostEstimate", "CostModel"]

INFINITE = float("inf")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted work for one strategy, with the model's reasoning."""

    strategy: str
    cost: float          # expected nodes touched; inf = inapplicable
    detail: str

    def __str__(self) -> str:
        cost = "inapplicable" if self.cost == INFINITE else f"{self.cost:,.0f}"
        return f"{self.strategy}: {cost} ({self.detail})"


class CostModel:
    """Ranks the physical strategies for one compiled query.

    ``observed`` is the feedback loop's entry point: a mapping of tag →
    measured match cardinality (what the runtime statistics store
    aggregates from executed NoK scans).  When present it overrides the
    tag-index cardinalities, so re-costing a cached plan ranks the
    strategies against observed selectivities instead of the static
    estimates — the paper's Table-3 observation that algorithm choice
    is selectivity-dependent, closed into a loop.
    """

    def __init__(self, doc: Document, stats: DocumentStats,
                 index: TagIndex | None = None,
                 observed: Mapping[str, float] | None = None) -> None:
        self.doc = doc
        self.stats = stats
        self.index = index if index is not None else TagIndex(doc)
        self.n_nodes = len(doc.nodes)
        self.observed = dict(observed) if observed else {}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def rank(self, tree: BlossomTree) -> list[CostEstimate]:
        """All applicable strategies, cheapest first."""
        dec = decompose(tree)
        estimates = [
            self._merge_joins(tree, dec),
            self._twigstack(tree),
            self._bnlj(dec),
            self._naive_nl(dec),
            self._navigational(tree),
        ]
        return sorted(estimates, key=lambda e: e.cost)

    def choose(self, tree: BlossomTree) -> CostEstimate:
        """The model's pick (always applicable: navigational is finite)."""
        return self.rank(tree)[0]

    # ------------------------------------------------------------------
    # Per-operator estimators (EXPLAIN ANALYZE's "estimated" column).
    # ------------------------------------------------------------------

    def cardinality(self, tag: str) -> int:
        """Expected matches of a tag test (public for explain-analyze)."""
        return self._cardinality(tag)

    def scan_estimate(self) -> float:
        """Expected nodes touched by one (merged) sequential scan."""
        return float(self.n_nodes)

    def nok_estimate(self, root_tag: str) -> tuple[float, float]:
        """(expected nodes touched, expected output rows) of one NoK scan.

        The scan touches every node (the access method is a full
        sequential pass); the output cardinality estimate is the root
        tag's index cardinality — predicates and mandatory children can
        only filter below that.
        """
        return self.scan_estimate(), float(self._cardinality(root_tag))

    def edge_estimate(self, parent_tag: str, child_tag: str,
                      algorithm: str) -> tuple[float, float]:
        """(expected nodes touched, expected output pairs) of one join.

        Per-edge version of the whole-plan estimators above, in the same
        currency, so EXPLAIN ANALYZE can put the model's prediction next
        to each join's measured work.  Output pairs are estimated as the
        child cardinality: on tree-shaped data most descendants have one
        matching ancestor.
        """
        out_rows = float(self._cardinality(child_tag))
        if parent_tag == "#root":
            return 0.0, out_rows
        if algorithm in ("pipelined", "caching", "stack"):
            cost = float(self._cardinality(parent_tag)
                         + self._cardinality(child_tag))
        elif algorithm == "bnlj":
            cost = self._cardinality(parent_tag) * self._avg_subtree(parent_tag)
        elif algorithm == "nl":
            cost = float(self._cardinality(parent_tag) * self.n_nodes)
        else:  # vacuous / empty-input joins do no per-node work
            cost = 0.0
        return cost, out_rows

    # ------------------------------------------------------------------
    # Per-strategy estimators.
    # ------------------------------------------------------------------

    def _cardinality(self, tag: str) -> int:
        observed = self.observed.get(tag)
        if observed is not None:
            return max(1, round(observed))
        if tag == "*" or tag == "#root":
            return max(1, self.stats.n_elements)
        return self.index.cardinality(tag)

    def _avg_subtree(self, tag: str) -> float:
        """Average subtree size of a tag's elements.

        Uses the exact per-tag statistic when the document statistics
        carry it (one extra dict in the single stats pass); otherwise
        falls back to a cardinality heuristic.  On recursive data the
        exact statistic already includes the nested rescan volume
        (nested same-tag subtrees are counted once per enclosing
        occurrence).
        """
        exact = self.stats.tag_subtree_avg.get(tag) if tag not in ("*", "#root") \
            else None
        if exact is not None:
            return exact
        card = max(1, self._cardinality(tag))
        base = min(self.n_nodes, 2.0 * self.n_nodes / card)
        if self.stats.recursive:
            base *= self.stats.recursion_degree
        return base

    def _merge_joins(self, tree: BlossomTree, dec: Decomposition) -> CostEstimate:
        scan = self.n_nodes
        merge = 0
        for edge in dec.inter_edges:
            if edge.parent.name == "#root":
                continue  # vacuous join
            merge += self._cardinality(edge.parent.name)
            merge += self._cardinality(edge.child.name)
        if self.stats.recursive:
            return CostEstimate(
                "stack", scan + merge,
                f"scan {scan} + stack merges {merge} "
                f"(recursive: strict pipelining unsound)")
        return CostEstimate(
            "pipelined", scan + merge,
            f"one merged scan {scan} + merge passes {merge}")

    def _twigstack(self, tree: BlossomTree) -> CostEstimate:
        if not twig_supported(tree):
            return CostEstimate("twigstack", INFINITE,
                                "query is not a single //-twig")
        streams = 0
        for vertex in tree.vertices:
            if vertex.name == "#root":
                continue
            streams += self._cardinality(vertex.name)
        return CostEstimate("twigstack", float(streams),
                            f"sum of tag-stream cardinalities {streams}")

    def _bnlj(self, dec: Decomposition) -> CostEstimate:
        cost = float(self.n_nodes)
        for edge in dec.inter_edges:
            if edge.parent.name == "#root":
                continue
            outer = self._cardinality(edge.parent.name)
            cost += outer * self._avg_subtree(edge.parent.name)
        return CostEstimate("bnlj", cost,
                            "scan + bounded per-outer subtree rescans")

    def _naive_nl(self, dec: Decomposition) -> CostEstimate:
        cost = float(self.n_nodes)
        for edge in dec.inter_edges:
            if edge.parent.name == "#root":
                continue
            cost += self._cardinality(edge.parent.name) * self.n_nodes
        return CostEstimate("nl", cost, "scan + full rescan per outer match")

    def _navigational(self, tree: BlossomTree) -> CostEstimate:
        # One traversal per tree edge from the root, a coarse stand-in
        # for per-step materialize-and-filter evaluation.
        steps = max(1, len(tree.tree_edges))
        cost = float(steps * self.n_nodes)
        return CostEstimate("xhive", cost, f"{steps} steps x {self.n_nodes} nodes")
