"""The execution-backend spec shared by every query surface.

PR 9 replaces the ad-hoc ``parallelism: int`` kwarg with one
``executor=`` argument accepted (keyword-only) by ``Engine.query``,
``Database.query``, ``PreparedQuery.execute``, ``QueryService.submit``
and ``Client.query``.  The spec names *how* the scan phase executes —
``"serial"``, ``"threads"`` or ``"processes"`` — and with how many
workers, instead of leaking a thread count through every layer and
leaving the backend choice implicit.

:class:`ExecutionBackend` is a frozen dataclass so it can sit directly
in plan-cache, result-cache and stats-store keys; :attr:`ExecutionBackend.key`
is its canonical string form (``"serial"``, ``"threads:4"``,
``"processes:4"``) and is what the v1 wire protocol carries.

This module deliberately imports nothing from the rest of the engine so
the serving layer can use it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["ExecutionBackend", "BACKEND_KINDS", "DEFAULT_PARALLEL_WORKERS",
           "resolve_backend"]

BACKEND_KINDS = ("serial", "threads", "processes")

#: Worker count used when a parallel backend is named without one.
DEFAULT_PARALLEL_WORKERS = 4


@dataclass(frozen=True)
class ExecutionBackend:
    """How the scan phase of a query executes.

    ``kind`` is one of :data:`BACKEND_KINDS`; ``workers`` is the
    partition fan-out for the parallel kinds (ignored for ``serial``).
    """

    kind: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ReproError(
                f"unknown execution backend {self.kind!r}; expected one "
                f"of {', '.join(BACKEND_KINDS)}")
        if self.workers < 1:
            raise ReproError(
                f"execution backend needs at least one worker, "
                f"got {self.workers}")

    @property
    def parallelism(self) -> int:
        """Partition fan-out: 1 for serial, ``workers`` otherwise."""
        return 1 if self.kind == "serial" else self.workers

    @property
    def key(self) -> str:
        """Canonical cache/wire form: ``serial`` | ``<kind>:<workers>``."""
        if self.kind == "serial":
            return "serial"
        return f"{self.kind}:{self.workers}"

    @classmethod
    def from_key(cls, key: str) -> "ExecutionBackend":
        """Parse the canonical string form back into a spec."""
        kind, sep, count = key.partition(":")
        if kind == "serial" and not sep:
            return cls()
        if not sep:
            return cls(kind=kind, workers=DEFAULT_PARALLEL_WORKERS)
        try:
            workers = int(count)
        except ValueError:
            raise ReproError(
                f"malformed execution backend key {key!r}") from None
        return cls(kind=kind, workers=workers)


def resolve_backend(executor: "ExecutionBackend | str | None",
                    strategy: str = "auto") -> ExecutionBackend:
    """Normalize an ``executor=`` argument into an :class:`ExecutionBackend`.

    Accepts the dataclass itself, a kind name (``"threads"``), a full
    key (``"processes:8"``), or ``None`` — which defaults to a
    four-worker thread backend when the caller explicitly asked for the
    ``parallel`` strategy (preserving the pre-redesign default) and to
    serial otherwise.
    """
    if executor is None:
        if strategy == "parallel":
            return ExecutionBackend("threads", DEFAULT_PARALLEL_WORKERS)
        return ExecutionBackend()
    if isinstance(executor, ExecutionBackend):
        return executor
    if isinstance(executor, str):
        return ExecutionBackend.from_key(executor)
    raise ReproError(
        f"executor= expects an ExecutionBackend or backend name, "
        f"got {type(executor).__name__}")
