"""Public API facade: the :class:`Engine`.

Typical use::

    from repro import Engine, parse

    engine = Engine(parse(xml_text))
    result = engine.query('//book[author]/title')
    print(result.pretty())

Repeated traffic is served without recompilation two ways:

* transparently — every ``query(text)`` goes through an LRU plan cache
  keyed on (normalized text, strategy, document-statistics
  fingerprint), so the second arrival of the same query skips parse,
  BlossomTree construction, NoK decomposition and the optimizer;
* explicitly — ``prepare(text)`` returns a
  :class:`~repro.engine.prepared.PreparedQuery` that pins the compiled
  plan and executes it many times, with external ``$parameter``
  bindings substituted per call.

Document mutations (via :meth:`Database.updater`, or any caller of
:meth:`Engine.notify_update`) invalidate the cache; a changed
statistics fingerprint also keys stale plans out even without explicit
invalidation.

``Engine.query`` accepts bare path expressions, FLWOR expressions, and
constructor-wrapped FLWORs; ``strategy`` selects the physical plan:

========== ==========================================================
strategy    meaning
========== ==========================================================
``auto``    optimizer picks per the Section-5.2 rules (default)
``pipelined`` BlossomTree with pipelined merge ``//``-joins (PL)
``stack``   BlossomTree with stack-based merge joins
``bnlj``    BlossomTree with bounded nested-loop joins (the paper's NL)
``twigstack`` holistic twig join over the tag index (TS)
``parallel`` BlossomTree with partition-parallel merged NoK scans
``naive``   direct per-iteration FLWOR semantics (the Section-1 strawman)
``xhive``   simulated commercial navigational engine (XH stand-in)
``cost``    pick by the Section-6 cost model (expected nodes touched)
========== ==========================================================

Strategies that do not apply to a query (e.g. ``twigstack`` on a FLWOR
with crossing edges) raise :class:`~repro.errors.CompileError`;
``auto`` never raises — it falls back to ``naive``.
"""

from __future__ import annotations

import sys
import time
from collections import OrderedDict

from repro.analysis import verify_plan
from repro.analysis.analyzer import VERIFY_RUNS
from repro.analysis.query import QueryLintResult, analyze_query
from repro.errors import CompileError, DNFError, QueryTimeoutError, UsageError
from repro.obs.metrics import REGISTRY
from repro.obs.statstore import STATS_RECOSTS, StatsStore
from repro.obs.trace import NULL_TRACER, QueryTrace, Tracer
from repro.pattern.artifact import prepare_artifacts
from repro.xmlkit.index import TagIndex
from repro.xmlkit.stats import DocumentStats, compute_stats
from repro.xmlkit.storage import CancellationToken, ScanCounters
from repro.xmlkit.summary import StructuralSummary, build_summary
from repro.xmlkit.tree import Document
from repro.xquery.ast import FLWOR, QueryExpr
from repro.engine.backend import ExecutionBackend, resolve_backend
from repro.engine.compiler import CompiledQuery, compile_query
from repro.engine.construct import DirectEvaluator
from repro.engine.executor import FLWORExecutor
from repro.engine.optimizer import (
    PlanChoice,
    StrategyAdvisor,
    choose_strategy,
    prune_pattern,
)
from repro.engine.plancache import PlanCache, normalize_query_text
from repro.engine.prepared import (
    CachedPlan,
    PreparedQuery,
    normalize_bindings,
)
from repro.engine.result import Item, QueryResult

__all__ = ["Engine"]

_BLOSSOM_STRATEGIES = {"pipelined", "caching", "stack", "bnlj", "nl"}

#: Partition count used when ``strategy="parallel"`` is requested
#: explicitly without an ``executor=`` spec (kept as a public alias of
#: :data:`repro.engine.backend.DEFAULT_PARALLEL_WORKERS`).
DEFAULT_PARALLELISM = 4

#: The serial backend singleton (the default for every query surface).
_SERIAL = ExecutionBackend()

_QUERIES = REGISTRY.counter("repro_queries_total", "Queries executed")
#: Plan verifications skipped because the identical plan-cache key
#: already verified clean this process (outcome="memoized").
VERIFY_MEMO_HITS = VERIFY_RUNS.bound(outcome="memoized")
_LATENCY = REGISTRY.histogram("repro_query_latency_ms",
                              "Query wall time in milliseconds")
_DNF = REGISTRY.counter("repro_dnf_total",
                        "Queries aborted by the work budget (DNF)")
_TIMEOUTS = REGISTRY.counter("repro_query_timeout_total",
                             "Queries aborted by deadline expiry")
_NODES = REGISTRY.counter("repro_nodes_scanned_total",
                          "Nodes delivered by sequential scans")
_SCANS = REGISTRY.counter("repro_scans_total",
                          "Sequential scans opened")
_COMPARISONS = REGISTRY.counter("repro_comparisons_total",
                                "Structural/value predicate evaluations")
_INTERMEDIATE = REGISTRY.counter("repro_intermediate_results_total",
                                 "NestedLists buffered between operators")
_PEAK = REGISTRY.gauge("repro_peak_buffered",
                       "Peak NestedLists held in memory (max over queries)")
_QUERYLINT_EMPTY = REGISTRY.counter(
    "repro_querylint_static_empty_total",
    "Queries answered by the static-empty rewrite (no scan executed)")

#: Shared empty foreign-uri set (the common no-extra-documents case).
_NO_FOREIGN: frozenset[str] = frozenset()


class _SubstitutingEvaluator(DirectEvaluator):
    """DirectEvaluator that substitutes a precomputed value for one
    specific FLWOR node (the one the BlossomTree executor ran)."""

    def __init__(self, doc, resolve_doc, target: FLWOR, items: list[Item]) -> None:
        super().__init__(doc, resolve_doc)
        self._target = target
        self._items = items

    def eval_query_expr(self, expr, bindings):  # type: ignore[override]
        if expr is self._target:
            return list(self._items)
        return super().eval_query_expr(expr, bindings)


class Engine:
    """A query engine bound to one primary document.

    Parameters
    ----------
    doc:
        The primary document; ``doc("uri")`` references resolve to it
        unless ``documents`` maps the uri elsewhere.
    documents:
        Optional ``{uri: Document}`` mapping for multi-document queries.
    work_budget:
        Optional cap on scanned nodes per query (DNF emulation); can be
        overridden per call.
    plan_cache:
        An externally owned :class:`PlanCache` to share (the serving
        catalog hands one cache to every snapshot's engine); by default
        the engine owns a private cache of ``plan_cache_capacity``.
    snapshot_id:
        Set by the serving catalog when this engine is bound to one
        immutable :class:`~repro.serve.snapshot.Snapshot`: the id keys
        the shared plan cache (instead of the mutation counter) and is
        stamped into every plan this engine compiles.
    stats_store:
        An externally owned :class:`~repro.obs.statstore.StatsStore` to
        record into (the serving catalog shares one per document,
        exactly like the plan cache); by default the engine owns a
        private store.
    record_stats:
        Record per-plan actuals (latency, work counters, observed NoK
        selectivities) into the store on every execution.  On by
        default — the recording cost is a dictionary update per query.
    feedback:
        Let measured latencies override the static strategy rules for
        ``strategy="auto"`` queries (see
        :class:`~repro.engine.optimizer.StrategyAdvisor`).  Off by
        default: feedback deliberately *probes* a slower alternative a
        few times per query shape, which callers must opt into.
    """

    def __init__(self, doc: Document,
                 documents: dict[str, Document] | None = None,
                 work_budget: int | None = None,
                 plan_cache_capacity: int = 128,
                 plan_cache: PlanCache | None = None,
                 snapshot_id: int | None = None,
                 stats_store: StatsStore | None = None,
                 record_stats: bool = True,
                 feedback: bool = False,
                 analyze_queries: bool = True) -> None:
        self.doc = doc
        self.documents = dict(documents or {})
        #: Uris resolving to other documents, precomputed once (the
        #: document map is fixed for an engine's lifetime) — the query
        #: lint must not judge paths into these against the primary
        #: document's structural summary.
        self._foreign: frozenset[str] = (
            frozenset(uri for uri, d in self.documents.items()
                      if d is not doc)
            if self.documents else _NO_FOREIGN)
        self.work_budget = work_budget
        self.index = TagIndex(doc)
        #: Executor used for partition scan tasks of parallel plans
        #: (``None`` = the shared process-wide pool; the query service
        #: installs its own so partition tasks ride the serve workers).
        self.scan_executor = None
        #: Process backend for ``executor="processes"`` plans (``None``
        #: = the shared process-wide pool; Database / QueryService
        #: install their owned pools here).
        self.process_executor = None
        self._stats: DocumentStats | None = None
        #: Run the structural-summary query lint (QL rules) at compile
        #: time and apply its pruning rewrites.  ``False`` is the escape
        #: hatch (and the differential-testing oracle): every query runs
        #: its unrewritten plan.
        self.analyze_queries = analyze_queries
        self._summary: StructuralSummary | None = None
        #: Lint results memoized by (normalized text, summary digest,
        #: foreign-doc set).  The lint is a pure function of that key —
        #: compilation is deterministic, so vertex ids line up across
        #: rebuilds of the same text — which keeps recompiles (plan-
        #: cache evictions, per-strategy plan variants) at dict-lookup
        #: cost instead of a fresh pattern walk.
        self._lint_memo: OrderedDict[tuple, QueryLintResult] = OrderedDict()
        #: Memoized :meth:`stats_fingerprint` tuple; dropped with the
        #: stats/summary it derives from (:meth:`notify_update`).
        self._fingerprint_cache: tuple | None = None
        self.last_plan: str | None = None
        #: Trace of the most recent ``trace=True`` query (also populated
        #: when the query aborted on a budget trip, so DNFs stay
        #: diagnosable).
        self.last_trace: QueryTrace | None = None
        self._last_strategy: str = "?"
        #: LRU of compiled plans; keys include the statistics
        #: fingerprint, so a mutated document never matches old entries.
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(plan_cache_capacity))
        #: Snapshot binding (serving layer); ``None`` for a plain engine.
        self.snapshot_id = snapshot_id
        #: Runtime statistics: per-plan actuals recorded on every
        #: execution, keyed like the plan cache.
        self.stats_store = (stats_store if stats_store is not None
                            else StatsStore())
        self.record_stats = record_stats
        self.feedback = feedback
        self._advisor = StrategyAdvisor(self.stats_store)
        #: Observed NoK selectivities of the most recent execution
        #: (``(root tag, matches)`` pairs), fed to the stats store.
        self._last_match_summary: list[tuple[str, int]] = []
        #: Optional hook called with every plan served from the cache
        #: *before* execution; the serving catalog installs the SV001
        #: dropped-snapshot gate here.  Raise to refuse the plan.
        self.plan_gate = None
        #: Monotonic mutation counter; part of the fingerprint so two
        #: document versions never alias even if their summary
        #: statistics happen to coincide.
        self._doc_version = 0
        #: Plan-cache keys whose compiled artifacts already verified
        #: clean this process.  Compilation is deterministic, so
        #: rebuilding an identical (query, strategy, statistics) triple
        #: yields structurally identical artifacts; re-verifying them
        #: on every plan-cache miss would tax the serving path for no
        #: new information.  Keys include the stats fingerprint, so a
        #: mutated document never matches a stale verification.
        self._verified_keys: dict[object, None] = {}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def query(self, text: str | QueryExpr, *,
              strategy: str = "auto",
              counters: ScanCounters | None = None,
              work_budget: int | None = None,
              trace: bool = False,
              tracer: Tracer | None = None,
              params: dict | None = None,
              timeout_ms: float | None = None,
              executor: ExecutionBackend | str | None = None) -> QueryResult:
        """Evaluate a query and return its result sequence.

        All options are strictly keyword-only — the unified spelling
        shared by :meth:`Database.query`, :meth:`PreparedQuery.execute`,
        :meth:`QueryService.submit
        <repro.serve.service.QueryService.submit>` and the network
        :meth:`Client.query <repro.serve.client.Client.query>`
        (positional options and the pre-PR 9 ``parallelism=`` integer
        now raise :class:`TypeError`).

        ``params`` binds the query's external ``$parameters`` (free
        variables) for this call — the same mapping
        :meth:`PreparedQuery.execute` takes.

        ``executor`` names the execution backend for the match phase —
        ``"serial"``, ``"threads"``, ``"processes"``, a
        ``"<kind>:<workers>"`` key, or an
        :class:`~repro.engine.backend.ExecutionBackend`.  A parallel
        backend offers the optimizer a partition budget: under
        ``strategy="auto"`` large non-recursive documents upgrade to
        the ``parallel`` strategy (partition-parallel merged scans,
        bit-identical to the serial scan by Theorem 1);
        ``strategy="parallel"`` forces it.  The backend key joins the
        plan-cache key.

        ``timeout_ms`` sets a cooperative deadline: the physical
        operators checkpoint a
        :class:`~repro.xmlkit.storage.CancellationToken` in their scan
        loops and the call raises
        :class:`~repro.errors.QueryTimeoutError` once it expires.

        ``trace=True`` records a span tree over the whole pipeline
        (compile → optimize → match/join/bind/finish, one child span
        per NoK scan and per inter-NoK join) and attaches it to the
        result as ``result.trace`` (also kept as ``self.last_trace``).
        ``tracer`` supplies an external tracer instead.

        Plans are served from :attr:`plan_cache` when an identical
        (normalized) query was compiled before against the same
        document version; the ``query`` span's ``plan-cache`` attribute
        says whether this call ``hit``, ``miss``-ed, or ``bypass``-ed
        the cache (pre-parsed expressions are never cached).
        """
        backend = resolve_backend(executor, strategy)
        return self._shell(
            lambda tr: self._plan_for(text, strategy, tr, backend),
            text, strategy, counters, work_budget, trace, tracer,
            bindings=params, timeout_ms=timeout_ms, backend=backend)

    def prepare(self, text: str | QueryExpr, *,
                strategy: str = "auto",
                executor: ExecutionBackend | str | None = None
                ) -> PreparedQuery:
        """Compile ``text`` once for repeated execution.

        The full pipeline (parse → BlossomTree → NoK decomposition →
        Dewey assignment → strategy choice) runs now; the returned
        :class:`~repro.engine.prepared.PreparedQuery` replays the plan
        on every ``execute(params=...)``.  Free ``$variables`` in the
        query become external parameters that ``execute`` must bind.
        ``executor`` is pinned into the prepared plan (same semantics
        as :meth:`query`).
        """
        backend = resolve_backend(executor, strategy)
        plan, _status = self._plan_for(text, strategy, NULL_TRACER, backend)
        return PreparedQuery(self, text, strategy, plan,
                             self.stats_fingerprint(),
                             executor=backend)

    def notify_update(self, report: object = None) -> None:
        """Invalidate derived state after a document mutation.

        :meth:`Database.updater` wires this into the
        :class:`~repro.xmlkit.update.DocumentUpdater` listener hook;
        call it directly when mutating the document through other
        means.  Drops cached statistics and every cached plan, and
        bumps the document version so fingerprints of old plans can
        never match again.
        """
        self._doc_version += 1
        self._stats = None
        self._summary = None
        self._fingerprint_cache = None
        self._lint_memo.clear()
        self.index.invalidate()
        self.plan_cache.invalidate("update")

    def stats_fingerprint(self) -> tuple:
        """The plan-cache key component tied to the document state.

        A snapshot-bound engine keys by its (catalog-unique) snapshot id
        instead of the local mutation counter, so engines sharing one
        plan cache across document versions never alias entries — the
        atomic-invalidation contract of the serving layer.

        With query lint enabled the structural summary's digest joins
        the tuple: a QL-pruned plan is only valid for the exact document
        shape it was pruned against, so the shape must key the cache.
        """
        cached = self._fingerprint_cache
        if cached is not None:
            return cached
        if self.snapshot_id is not None:
            base = ("snapshot", self.snapshot_id) + self.stats.fingerprint()
        else:
            base = (self._doc_version,) + self.stats.fingerprint()
        if self.analyze_queries:
            base = base + (self.summary.fingerprint(),)
        self._fingerprint_cache = base
        return base

    def cached_static_empty(self, text: str, strategy: str = "auto",
                            executor: ExecutionBackend | str = "serial",
                            ) -> bool:
        """Whether the cache already holds a static-empty plan for
        ``text`` (exact key, current document shape).

        A pure peek — no compile, no cache-counter side effects.  The
        query service uses it to answer provably-empty queries inline
        instead of occupying a worker slot.
        """
        if not self.analyze_queries:
            return False
        backend = (executor if isinstance(executor, ExecutionBackend)
                   else ExecutionBackend.from_key(executor))
        key = (normalize_query_text(text), strategy, backend.key,
               self.stats_fingerprint())
        plan = self.plan_cache.peek(key)
        return plan is not None and bool(getattr(plan, "static_empty",
                                                 False))

    # ------------------------------------------------------------------
    # Serving shell (shared by query() and PreparedQuery.execute()).
    # ------------------------------------------------------------------

    def _shell(self, plan_source, source, strategy: str,
               counters: ScanCounters | None,
               work_budget: int | None, trace: bool,
               tracer: Tracer | None,
               bindings: dict | None = None,
               timeout_ms: float | None = None,
               backend: ExecutionBackend = _SERIAL) -> QueryResult:
        """Counters/budget/tracing/metrics shell around one execution.

        ``plan_source(tracer) -> (CachedPlan, cache_status)`` supplies
        the plan — from the cache, a fresh compile, or a prepared
        query's pinned plan.
        """
        counters = counters if counters is not None else ScanCounters()
        budget = work_budget if work_budget is not None else self.work_budget
        if budget is not None:
            counters.budget = budget
        previous_token = counters.cancellation
        if timeout_ms is not None:
            counters.cancellation = CancellationToken(timeout_ms)

        tracer = tracer if tracer is not None else (
            Tracer() if trace else NULL_TRACER)
        tracing = tracer is not NULL_TRACER
        self.last_trace = None
        self._last_strategy = strategy
        self._last_match_summary = []
        cache_status: str | None = None
        items: int | None = None
        before = counters.snapshot()
        started = time.perf_counter_ns()
        try:
            with tracer.span("query", strategy=strategy) as qspan:
                if isinstance(source, str):
                    qspan.set(source=" ".join(source.split())[:160])
                if counters.cancellation is not None:
                    # An exhausted deadline must fail deterministically
                    # even for queries too small to reach a checkpoint.
                    try:
                        counters.cancellation.check()
                    except QueryTimeoutError:
                        qspan.set(timed_out=True)
                        _TIMEOUTS.inc()
                        raise
                plan, cache_status = plan_source(tracer)
                qspan.set(**{"plan-cache": cache_status})
                try:
                    result = self._execute_plan(plan, counters, budget,
                                                tracer, bindings,
                                                backend=backend)
                    if counters.cancellation is not None:
                        counters.cancellation.check()
                except DNFError as exc:
                    qspan.set(budget_tripped=True, budget=exc.budget,
                              nodes_scanned=counters.nodes_scanned)
                    _DNF.inc(strategy=self._last_strategy)
                    raise
                except QueryTimeoutError:
                    qspan.set(timed_out=True,
                              nodes_scanned=counters.nodes_scanned)
                    _TIMEOUTS.inc()
                    raise
                items = len(result)
                qspan.set(plan=self.last_plan, items=items)
        finally:
            counters.cancellation = previous_token
            elapsed_ms = (time.perf_counter_ns() - started) / 1e6
            self._publish_metrics(counters, before, elapsed_ms)
            if self.record_stats:
                self._record_run(source, counters, before, elapsed_ms,
                                 backend, cache_status, items)
            if tracing:
                self.last_trace = tracer.finish()
        result.trace = self.last_trace
        result.counters = counters
        return result

    def _execute_prepared(self, prepared: PreparedQuery,
                          bindings: dict | None,
                          counters: ScanCounters | None,
                          work_budget: int | None, trace: bool,
                          tracer: Tracer | None,
                          timeout_ms: float | None = None,
                          backend: ExecutionBackend | None = None,
                          ) -> QueryResult:
        """Run a prepared query, re-planning only if the document moved."""
        effective = backend if backend is not None else prepared.executor

        def plan_source(tr):
            fingerprint = self.stats_fingerprint()
            if prepared._fingerprint == fingerprint \
                    and effective == prepared.executor:
                return prepared._plan, "prepared"
            # The document mutated since prepare() (or the caller asked
            # for a different execution backend): the pinned plan is
            # still *correct* (plans are document-independent) but its
            # strategy choice may be stale — re-plan through the cache.
            plan, status = self._plan_for(prepared.source,
                                          prepared.strategy, tr, effective)
            if effective == prepared.executor:
                prepared._plan = plan
                prepared._fingerprint = fingerprint
            return plan, f"prepared-{status}"

        return self._shell(plan_source, prepared.source, prepared.strategy,
                           counters, work_budget, trace, tracer,
                           bindings=bindings, timeout_ms=timeout_ms,
                           backend=effective)

    # ------------------------------------------------------------------
    # Planning.
    # ------------------------------------------------------------------

    def _plan_for(self, text: str | QueryExpr, strategy: str,
                  tracer, backend: ExecutionBackend = _SERIAL,
                  ) -> tuple[CachedPlan, str]:
        """Get a plan from the cache or compile one; returns
        ``(plan, "hit" | "miss" | "bypass")``."""
        if not isinstance(text, str):
            return self._build_plan(text, strategy, tracer,
                                    backend=backend), "bypass"
        key = (normalize_query_text(text), strategy, backend.key,
               self.stats_fingerprint())
        plan = self.plan_cache.get(key)
        if plan is not None:
            if self.plan_gate is not None:
                # Serving gate (SV001): refuse plans compiled against a
                # snapshot that raced retirement between key lookup and
                # execution.  Raises PlanInvariantError.
                self.plan_gate(plan)
            if self.feedback and strategy == "auto":
                advised = self._advised_choice(plan, key[0], backend)
                if advised is not None \
                        and advised.strategy != plan.choice.strategy:
                    # Re-cost on hit: the measured history now points at
                    # a different strategy than the cached plan runs, so
                    # rebuild (deterministically landing on the advised
                    # choice) and replace the entry in place.
                    STATS_RECOSTS.inc()
                    plan = self._build_plan(text, strategy, tracer,
                                            memo_key=key,
                                            backend=backend)
                    self.plan_cache.put(key, plan)
                    return plan, "recost"
            return plan, "hit"
        plan = self._build_plan(text, strategy, tracer, memo_key=key,
                                backend=backend)
        self.plan_cache.put(key, plan)
        return plan, "miss"

    def _build_plan(self, text: str | QueryExpr, strategy: str,
                    tracer, memo_key: object = None,
                    backend: ExecutionBackend = _SERIAL) -> CachedPlan:
        """The full compile pipeline: parse → analyze → BlossomTree →
        strategy choice → reusable pattern artifacts.

        ``memo_key`` is the plan-cache key; when it already verified
        clean this process, validate-on-compile is skipped (compilation
        is deterministic, so the rebuild produces structurally
        identical artifacts — see :attr:`_verified_keys`).
        """
        memoized = memo_key is not None and memo_key in self._verified_keys
        compiled = compile_query(text, tracer=tracer, verify=not memoized)
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            analyze(compiled.flwor,
                    external=compiled.parameters).raise_errors(compiled.source)
        choice = self._resolve_strategy(compiled, strategy, tracer,
                                        backend.parallelism)
        # Query lint (QL rules): check the pattern against the document's
        # structural summary and rewrite provably-empty work away.  The
        # naive/xhive baselines stay lint-free so they remain faithful
        # differential oracles for the rewrites.
        lint: QueryLintResult | None = None
        rewrites: tuple[str, ...] = ()
        exec_tree = compiled.tree
        if self.analyze_queries and compiled.tree is not None \
                and strategy not in ("naive", "xhive") \
                and choice.strategy not in ("naive", "xhive"):
            # Memo hit inline (the warm-compile common case): one dict
            # lookup, no method call.  Falls back to the full path on a
            # miss or when there is no plan-cache key to derive it from.
            norm = memo_key[0] if memo_key else None
            fp = self._fingerprint_cache
            if norm is not None and fp is not None:
                lint = self._lint_memo.get((norm, fp[-1], self._foreign))
            if lint is None:
                lint = self._lint_compiled(compiled, norm_text=norm)
            if tracer is not NULL_TRACER:
                with tracer.span("query-lint") as span:
                    span.set(findings=len(lint.report.findings),
                             rules=",".join(lint.rules) or "-",
                             static_empty=lint.static_empty)
            if lint.static_empty:
                choice = PlanChoice(
                    "static-empty",
                    f"query lint: {lint.static_empty_reason()}")
                rewrites = ("short-circuit to static empty result: "
                            f"{lint.static_empty_reason()}",)
            else:
                vids = lint.prune_vids()
                if vids:
                    pruned, notes = prune_pattern(compiled.tree, vids)
                    if pruned is not None:
                        exec_tree = pruned
                        rewrites = notes
        artifacts = None
        if exec_tree is not None \
                and choice.strategy not in ("naive", "xhive",
                                            "static-empty"):
            with tracer.span("prepare-artifacts") as span:
                artifacts = prepare_artifacts(exec_tree)
                span.set(noks=len(artifacts.decomposition.noks))
        if choice.strategy == "parallel" and strategy == "auto" \
                and artifacts is not None:
            from repro.analysis.passes import partition_unsafe_noks

            if partition_unsafe_noks(artifacts.decomposition):
                # The decomposition (only now available) revealed a NoK
                # whose match work bypasses the partitioned scan (rule
                # PL004), so the auto upgrade quietly steps back to the
                # serial plan.  An *explicit* strategy="parallel"
                # request keeps the choice and lets the verifier refuse
                # it with PL004.
                choice = PlanChoice(
                    "pipelined",
                    "parallel upgrade withdrawn: plan has non-partition-"
                    "safe NoKs (PL004); serial merged scan instead")
        if self.feedback and strategy == "auto" and isinstance(text, str) \
                and compiled.tree is not None \
                and choice.strategy != "static-empty":
            # The advisor only ever moves between pattern strategies
            # (pipelined/stack/twigstack/parallel), whose artifacts were
            # built above regardless of which of them was static.
            choice = self._advise(compiled, choice,
                                  normalize_query_text(text), backend)
        plan = CachedPlan(compiled, choice, artifacts, strategy,
                          snapshot_id=self.snapshot_id,
                          static_empty=choice.strategy == "static-empty",
                          rewrites=rewrites,
                          lint_rules=lint.rules if lint is not None else ())
        # Validate-on-compile: every stage of the compiled artifact is
        # checked against the invariant catalogue before the plan can be
        # cached or executed; error findings raise PlanInvariantError.
        if memoized:
            VERIFY_MEMO_HITS()
        else:
            with tracer.span("verify-plan") as span:
                # tree_verified: compile_query already ran the AST and
                # BlossomTree passes over these exact objects.  A pruned
                # tree is a *new* object the compiler never saw, so the
                # rewrite forfeits the shortcut and gets the full check.
                tree_verified = (compiled.tree is not None
                                 and exec_tree is compiled.tree)
                report = verify_plan(plan,
                                     recursive_document=self.stats.recursive,
                                     tree_verified=tree_verified)
                span.set(findings=len(report.findings),
                         rules=",".join(report.rule_ids()) or "-")
            if memo_key is not None:
                if len(self._verified_keys) >= 1024:
                    self._verified_keys.pop(next(iter(self._verified_keys)))
                self._verified_keys[memo_key] = None
        plan.verified = True
        return plan

    # ------------------------------------------------------------------
    # Feedback (measured strategy selection; opt-in via feedback=True).
    # ------------------------------------------------------------------

    def _advise(self, compiled: CompiledQuery, static: PlanChoice,
                norm_text: str, backend: ExecutionBackend) -> PlanChoice:
        """Let measured history adjust the static choice for one build."""
        alternative = StrategyAdvisor.alternative(
            static.strategy, self.stats, compiled.tree,
            compiled.is_bare_path, has_index=True)
        return self._advisor.advise(norm_text, self.stats_fingerprint(),
                                    backend.key, static, alternative)

    def _advised_choice(self, plan: CachedPlan, norm_text: str,
                        backend: ExecutionBackend) -> PlanChoice | None:
        """What feedback would choose *now* for a cached plan's query.

        Mirrors the decision sequence of :meth:`_build_plan` (static
        rules → PL004 withdrawal → advisor) against the cached plan's
        compiled artifacts, without rebuilding anything — the cheap
        check that decides whether a cache hit must be re-costed.
        """
        compiled = plan.compiled
        if compiled.tree is None:
            return None
        static = choose_strategy(self.stats, compiled.tree,
                                 compiled.is_bare_path, has_index=True,
                                 parallelism=backend.parallelism)
        if static.strategy == "parallel" and plan.artifacts is not None:
            from repro.analysis.passes import partition_unsafe_noks

            if partition_unsafe_noks(plan.artifacts.decomposition):
                static = PlanChoice(
                    "pipelined",
                    "parallel upgrade withdrawn: plan has non-partition-"
                    "safe NoKs (PL004); serial merged scan instead")
        return self._advise(compiled, static, norm_text, backend)

    def recost(self, text: str | QueryExpr, *,
               parallelism: int | None = None) -> list:
        """Rank the strategies against *observed* selectivities.

        Like the ``strategy="cost"`` ranking, but with every tag
        cardinality the stats store has measured (mean NoK matches per
        pattern root tag, this document version) overriding the static
        estimate.  Returns the
        :class:`~repro.engine.cost.CostEstimate` list, cheapest first;
        falls back to purely static estimates when nothing was observed
        yet.
        """
        from repro.engine.cost import CostModel

        compiled = compile_query(text)
        if compiled.tree is None:
            raise CompileError(
                f"recost unavailable: {compiled.compile_error or 'no tree'}")
        observed = self.stats_store.observed_cardinalities(
            self.stats_fingerprint())
        STATS_RECOSTS.inc()
        model = CostModel(self.doc, self.stats, self.index,
                          observed=observed)
        return model.rank(compiled.tree)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _execute_plan(self, plan: CachedPlan, counters: ScanCounters,
                      budget: int | None, tracer,
                      bindings: dict | None,
                      backend: ExecutionBackend = _SERIAL) -> QueryResult:
        """Run one compiled plan (the execution half of the pipeline)."""
        compiled, choice = plan.compiled, plan.choice
        self.last_plan = str(choice)
        self._last_strategy = choice.strategy
        values = normalize_bindings(compiled.parameters, bindings)

        if plan.static_empty:
            # Query lint proved the pattern matches nothing on this
            # document shape: answer without scanning a single node.
            _QUERYLINT_EMPTY.inc()
            with tracer.span("execute", plan="static-empty"):
                if compiled.query is compiled.flwor:
                    return QueryResult([])
                # The FLWOR core is empty but it sits inside a larger
                # expression (e.g. element construction): substitute []
                # for the core and evaluate the rest normally.
                wrapper = _SubstitutingEvaluator(self.doc,
                                                 self._resolve_doc,
                                                 compiled.flwor, [])
                return QueryResult(
                    wrapper.eval_query_expr(compiled.query, dict(values)))

        if choice.strategy == "naive":
            with tracer.span("execute", plan="naive"):
                evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                            work_budget=budget)
                return QueryResult(
                    evaluator.eval_query_expr(compiled.query, dict(values)))
        if choice.strategy == "xhive":
            from repro.baseline.xhive import XHiveSimulator

            with tracer.span("execute", plan="xhive"):
                simulator = XHiveSimulator(self.doc, self._resolve_doc, counters)
                return simulator.run(compiled.query, values)

        assert compiled.flwor is not None and compiled.tree is not None
        executor = FLWORExecutor(
            self.doc, self._resolve_doc,
            join_algorithm=("auto" if choice.strategy in ("twigstack",
                                                          "parallel")
                            else choice.strategy),
            counters=counters,
            recursive_hint=self.stats.recursive,
            tracer=tracer,
            index=self.index,
            parallelism=(max(2, backend.parallelism)
                         if choice.strategy == "parallel" else 1),
            scan_executor=self.scan_executor,
            scan_backend=("processes" if backend.kind == "processes"
                          else "threads"),
            process_executor=self.process_executor,
            doc_stats=self.stats)
        try:
            with tracer.span("execute", plan=choice.strategy):
                if choice.strategy == "twigstack":
                    items = executor.execute_twigstack(compiled.flwor,
                                                       plan.artifacts)
                else:
                    items = executor.execute(compiled.flwor, plan.artifacts,
                                             values)
        except CompileError:
            if plan.requested != "auto":
                raise
            # Late compile failure under auto: fall back to direct
            # evaluation rather than surfacing an internal limitation.
            with tracer.span("execute", plan="naive (late fallback)"):
                evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                            work_budget=budget)
                self.last_plan = "naive (late fallback)"
                self._last_strategy = "naive"
                return QueryResult(
                    evaluator.eval_query_expr(compiled.query, dict(values)))
        self.last_plan = str(choice) + "; " + "; ".join(executor.plan_notes)
        self._last_match_summary = executor.match_summary

        if compiled.query is compiled.flwor:
            return QueryResult(items)
        with tracer.span("construct-wrapper"):
            wrapper = _SubstitutingEvaluator(self.doc, self._resolve_doc,
                                             compiled.flwor, items)
            return QueryResult(
                wrapper.eval_query_expr(compiled.query, dict(values)))

    def _publish_metrics(self, counters: ScanCounters,
                         before: dict[str, int], elapsed_ms: float) -> None:
        """Feed the registry with this run's counter deltas.

        Deltas (not absolutes) because callers may reuse one
        :class:`ScanCounters` across several queries.
        """
        strategy = self._last_strategy
        _QUERIES.inc(strategy=strategy)
        _LATENCY.observe(elapsed_ms, strategy=strategy)
        _NODES.inc(counters.nodes_scanned - before["nodes_scanned"])
        _SCANS.inc(counters.scans_started - before["scans_started"])
        _COMPARISONS.inc(counters.comparisons - before["comparisons"])
        _INTERMEDIATE.inc(counters.intermediate_results
                          - before["intermediate_results"])
        _PEAK.max(counters.peak_buffered)

    def _record_run(self, source, counters: ScanCounters,
                    before: dict[str, int], elapsed_ms: float,
                    backend: ExecutionBackend, cache_status: str | None,
                    items: int | None) -> None:
        """Feed the stats store with this run's actuals (never raises).

        Recorded under the plan-cache key shape — (normalized text,
        *executed* strategy, fingerprint, executor backend key) — so the
        feedback loop can compare strategies of the same query like the
        cache compares plans.  Runs for pre-parsed expressions record
        under the ``<expr>`` pseudo-text (they bypass the cache too).
        """
        error = sys.exc_info()[0]
        try:
            text = (normalize_query_text(source) if isinstance(source, str)
                    else "<expr>")
            after = counters.snapshot()
            self.stats_store.record(
                text, self._last_strategy, self.stats_fingerprint(),
                backend.key, elapsed_ms=elapsed_ms,
                counters={name: after[name] - before[name]
                          for name in ("nodes_scanned", "comparisons",
                                       "intermediate_results")},
                items=items,
                nok_matches=self._last_match_summary or None,
                cache_status=cache_status,
                error=error.__name__ if error is not None else None)
        except Exception:
            # Statistics are an observer: a recording failure must not
            # mask the query's own outcome (we may already be unwinding
            # a user-visible exception here).
            pass

    def explain(self, text: str | QueryExpr, strategy: str = "auto") -> str:
        """Describe the plan that ``query`` would run (without running it)."""
        compiled = compile_query(text)
        choice = self._resolve_strategy(compiled, strategy)
        lint: QueryLintResult | None = None
        rewrites: list[str] = []
        if self.analyze_queries and compiled.tree is not None \
                and strategy not in ("naive", "xhive") \
                and choice.strategy not in ("naive", "xhive"):
            lint = self._lint_compiled(compiled)
            if lint.static_empty:
                choice = PlanChoice(
                    "static-empty",
                    f"query lint: {lint.static_empty_reason()}")
                rewrites = ["short-circuit to static empty result: "
                            f"{lint.static_empty_reason()}"]
            elif lint.prune_vids():
                _pruned, notes = prune_pattern(compiled.tree,
                                               lint.prune_vids())
                rewrites = list(notes)
        lines = [f"strategy: {choice}"]
        if lint is not None and lint.report.findings:
            lines.append("query lint:")
            lines.extend(f"  {line}" for line in lint.describe())
        for note in rewrites:
            lines.append(f"rewrite: {note}")
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            report = analyze(compiled.flwor)
            if report.correlations:
                lines.append("correlations:")
                for corr in report.correlations:
                    variables = ", ".join(f"${v}" for v in corr.variables)
                    lines.append(f"  [{corr.relation}] {variables}: "
                                 f"{corr.description}")
        if compiled.tree is not None:
            lines.append("BlossomTree:")
            lines.append(compiled.tree.describe())
            from repro.pattern.decompose import decompose

            lines.append("decomposition:")
            lines.append(decompose(compiled.tree).describe())
            from repro.engine.cost import CostModel

            lines.append("cost estimates (expected nodes touched):")
            model = CostModel(self.doc, self.stats, self.index)
            for estimate in model.rank(compiled.tree):
                lines.append(f"  {estimate}")
            observed = self.stats_store.observed_cardinalities(
                self.stats_fingerprint())
            if observed:
                lines.append("re-cost against observed selectivities "
                             "(measured NoK matches):")
                measured = CostModel(self.doc, self.stats, self.index,
                                     observed=observed)
                for estimate in measured.rank(compiled.tree):
                    lines.append(f"  {estimate}")
        elif compiled.compile_error:
            lines.append(f"fallback reason: {compiled.compile_error}")
        return "\n".join(lines)

    def explain_analyze(self, text: str | QueryExpr,
                        strategy: str = "auto",
                        work_budget: int | None = None, *,
                        params: dict | None = None,
                        timeout_ms: float | None = None) -> str:
        """Execute the query under tracing and render per-operator rows.

        Each NoK scan and each inter-NoK join gets one row showing
        measured wall time, nodes scanned, comparisons and output
        cardinality next to the cost model's estimates (both in the
        model's currency, expected nodes touched), so the optimizer's
        predictions are directly auditable against the run.
        """
        from repro.engine.cost import CostModel
        from repro.obs.export import format_table

        counters = ScanCounters()
        tracer = Tracer()
        result = self.query(text, strategy=strategy, counters=counters,
                            work_budget=work_budget, tracer=tracer,
                            params=params, timeout_ms=timeout_ms)
        trace = self.last_trace
        assert trace is not None
        model = CostModel(self.doc, self.stats, self.index)

        rows: list[dict[str, object]] = []
        for span in trace.find_all("nok-scan"):
            attrs = span.attrs
            est_nodes, est_rows = model.nok_estimate(
                str(attrs.get("root_tag", "*")))
            shared = " (shared scan)" if attrs.get("shared_scan") else ""
            rows.append({
                "operator": f"scan NoK#{attrs.get('nok_id')} "
                            f"[{attrs.get('root_tag')}]{shared}",
                "time ms": f"{attrs.get('wall_ms', span.duration_ms):.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": f"{est_nodes:,.0f}",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("matches", 0),
                "est.rows": f"{est_rows:,.0f}",
            })
        for span in trace.find_all("inter-join"):
            attrs = span.attrs
            algorithm = str(attrs.get("algorithm", "?"))
            est_nodes, est_rows = model.edge_estimate(
                str(attrs.get("parent_tag", "*")),
                str(attrs.get("child_tag", "*")), algorithm)
            rows.append({
                "operator": f"join V{attrs.get('parent_vid')}->"
                            f"V{attrs.get('child_vid')} [{algorithm}]",
                "time ms": f"{span.duration_ms:.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": f"{est_nodes:,.0f}",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("pairs", 0),
                "est.rows": f"{est_rows:,.0f}",
            })
        for span in trace.find_all("twigstack"):
            attrs = span.attrs
            rows.append({
                "operator": "twigstack (holistic)",
                "time ms": f"{span.duration_ms:.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": "-",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("matches", 0),
                "est.rows": "-",
            })

        lines = ["EXPLAIN ANALYZE"]
        root = trace.root
        if root is not None and "source" in root.attrs:
            lines.append(f"query: {root.attrs['source']}")
        lines.append(f"plan: {self.last_plan}")
        lines.append(f"total: {trace.total_ms:.3f} ms, {len(result)} item(s)")
        lines.append("")
        if rows:
            lines.append(format_table(
                rows, right_align=("time ms", "nodes", "est.nodes", "cmp",
                                   "rows", "est.rows")))
        else:
            lines.append("(no per-operator spans: plan ran outside the "
                         "BlossomTree pipeline)")
        phases = [s for name in ("match-phase", "join-phase", "bind-phase",
                                 "finish-phase")
                  for s in trace.find_all(name)]
        if phases:
            lines.append("")
            lines.append("phases: " + "  ".join(
                f"{s.name.removesuffix('-phase')}={s.duration_ms:.3f}ms"
                for s in phases))
        lines.append("counters: " + " ".join(
            f"{k}={v}" for k, v in counters.snapshot().items()))
        return "\n".join(lines)

    @property
    def stats(self) -> DocumentStats:
        """Statistics of the primary document (computed once)."""
        if self._stats is None:
            self._stats = compute_stats(self.doc, with_size=False)
        return self._stats

    @property
    def summary(self) -> StructuralSummary:
        """Structural summary of the primary document (computed once).

        Like :attr:`stats`, dropped by :meth:`notify_update`; a
        snapshot-bound engine gets the catalog's per-snapshot instance
        injected instead (see :meth:`Catalog.engine_for
        <repro.serve.catalog.Catalog.engine_for>`).
        """
        if self._summary is None:
            self._summary = build_summary(self.doc)
        return self._summary

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _resolve_doc(self, uri: str) -> Document:
        return self.documents.get(uri, self.doc)

    #: Bound on the lint memo — generous for any real query mix, tight
    #: enough that an adversarial stream of distinct texts stays O(1).
    _LINT_MEMO_MAX = 512

    def _lint_compiled(self, compiled: CompiledQuery,
                       norm_text: str | None = None) -> QueryLintResult:
        """Run (or recall) the QL lint for one compilation.

        Memoized on (normalized text, summary digest, foreign-doc set):
        the lint reads nothing else, and deterministic compilation
        guarantees the memoized prune vertex-ids line up with any fresh
        BlossomTree built from the same text.  This keeps the lint's
        share of a warm compile at dictionary-lookup cost — the ≤2%
        overhead budget the PR-8 benchmark pins.  ``norm_text`` lets
        callers that already normalized the text (the plan-cache key)
        skip re-normalizing it here.
        """
        source = compiled.source
        key = None
        if norm_text is None and isinstance(source, str) and source:
            norm_text = normalize_query_text(source)
        if norm_text:
            # With lint enabled the cached stats fingerprint ends with
            # the summary digest — reuse it instead of re-deriving.
            fp = self._fingerprint_cache
            key = (norm_text,
                   fp[-1] if fp is not None else self.summary.fingerprint(),
                   self._foreign)
            cached = self._lint_memo.get(key)
            if cached is not None:
                return cached
        lint = analyze_query(
            compiled.tree, self.summary,
            flwor=None if compiled.is_bare_path else compiled.flwor,
            source=source if isinstance(source, str) else "<query>",
            foreign_uris=self._foreign)
        if key is not None:
            self._lint_memo[key] = lint
            if len(self._lint_memo) > self._LINT_MEMO_MAX:
                self._lint_memo.popitem(last=False)
        return lint

    def _resolve_strategy(self, compiled: CompiledQuery, strategy: str,
                          tracer: Tracer | None = None,
                          parallelism: int = 1) -> PlanChoice:
        if strategy == "auto":
            return choose_strategy(self.stats, compiled.tree,
                                   compiled.is_bare_path, has_index=True,
                                   tracer=tracer, parallelism=parallelism)
        if strategy == "parallel":
            if compiled.tree is None or compiled.flwor is None:
                raise CompileError(
                    f"parallel strategy unavailable: "
                    f"{compiled.compile_error or 'no FLWOR core'}")
            return PlanChoice(
                "parallel",
                f"explicitly requested ({max(2, parallelism)} partitions)")
        if strategy == "cost":
            return self._cost_based_choice(compiled)
        if strategy in ("naive", "xhive"):
            return PlanChoice(strategy, "explicitly requested")
        if strategy == "twigstack":
            if compiled.tree is None:
                raise CompileError(
                    f"twigstack strategy unavailable: {compiled.compile_error}")
            # Reject inapplicable patterns here, not deep in the executor:
            # the invariant analyzer (rule PL002) refuses to verify a
            # twigstack plan over a non-twig tree.
            from repro.physical.twigstack import twig_supported

            if not twig_supported(compiled.tree):
                raise CompileError(
                    "twigstack strategy unavailable: pattern is not a "
                    "single //-twig (crossing edges, optional modes or "
                    "sibling constraints present)")
            return PlanChoice("twigstack", "explicitly requested")
        if strategy in _BLOSSOM_STRATEGIES:
            if compiled.tree is None or compiled.flwor is None:
                raise CompileError(
                    f"{strategy} strategy unavailable: "
                    f"{compiled.compile_error or 'no FLWOR core'}")
            return PlanChoice(strategy, "explicitly requested")
        raise UsageError(f"unknown strategy {strategy!r}")

    def _cost_based_choice(self, compiled: CompiledQuery) -> PlanChoice:
        """Pick by the Section-6 cost model (expected nodes touched)."""
        if compiled.tree is None:
            return PlanChoice("naive",
                              compiled.compile_error or "no pattern tree")
        from repro.engine.cost import CostModel

        model = CostModel(self.doc, self.stats, self.index)
        for estimate in model.rank(compiled.tree):
            if estimate.cost == float("inf"):
                continue
            if estimate.strategy == "twigstack" and not compiled.is_bare_path:
                continue  # holistic execution only covers bare paths
            return PlanChoice(estimate.strategy, f"cost model: {estimate}")
        return PlanChoice("naive", "cost model found no applicable strategy")
