"""Public API facade: the :class:`Engine`.

Typical use::

    from repro import Engine, parse

    engine = Engine(parse(xml_text))
    result = engine.query('//book[author]/title')
    print(result.pretty())

``Engine.query`` accepts bare path expressions, FLWOR expressions, and
constructor-wrapped FLWORs; ``strategy`` selects the physical plan:

========== ==========================================================
strategy    meaning
========== ==========================================================
``auto``    optimizer picks per the Section-5.2 rules (default)
``pipelined`` BlossomTree with pipelined merge ``//``-joins (PL)
``stack``   BlossomTree with stack-based merge joins
``bnlj``    BlossomTree with bounded nested-loop joins (the paper's NL)
``twigstack`` holistic twig join over the tag index (TS)
``naive``   direct per-iteration FLWOR semantics (the Section-1 strawman)
``xhive``   simulated commercial navigational engine (XH stand-in)
``cost``    pick by the Section-6 cost model (expected nodes touched)
========== ==========================================================

Strategies that do not apply to a query (e.g. ``twigstack`` on a FLWOR
with crossing edges) raise :class:`~repro.errors.CompileError`;
``auto`` never raises — it falls back to ``naive``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import CompileError
from repro.xmlkit.index import TagIndex
from repro.xmlkit.stats import DocumentStats, compute_stats
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document
from repro.xquery.ast import FLWOR, QueryExpr
from repro.engine.compiler import CompiledQuery, compile_query
from repro.engine.construct import DirectEvaluator
from repro.engine.executor import FLWORExecutor
from repro.engine.optimizer import PlanChoice, choose_strategy
from repro.engine.result import Item, QueryResult

__all__ = ["Engine"]

_BLOSSOM_STRATEGIES = {"pipelined", "caching", "stack", "bnlj", "nl"}


class _SubstitutingEvaluator(DirectEvaluator):
    """DirectEvaluator that substitutes a precomputed value for one
    specific FLWOR node (the one the BlossomTree executor ran)."""

    def __init__(self, doc, resolve_doc, target: FLWOR, items: list[Item]) -> None:
        super().__init__(doc, resolve_doc)
        self._target = target
        self._items = items

    def eval_query_expr(self, expr, bindings):  # type: ignore[override]
        if expr is self._target:
            return list(self._items)
        return super().eval_query_expr(expr, bindings)


class Engine:
    """A query engine bound to one primary document.

    Parameters
    ----------
    doc:
        The primary document; ``doc("uri")`` references resolve to it
        unless ``documents`` maps the uri elsewhere.
    documents:
        Optional ``{uri: Document}`` mapping for multi-document queries.
    work_budget:
        Optional cap on scanned nodes per query (DNF emulation); can be
        overridden per call.
    """

    def __init__(self, doc: Document,
                 documents: Optional[dict[str, Document]] = None,
                 work_budget: Optional[int] = None) -> None:
        self.doc = doc
        self.documents = dict(documents or {})
        self.work_budget = work_budget
        self.index = TagIndex(doc)
        self._stats: Optional[DocumentStats] = None
        self.last_plan: Optional[str] = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def query(self, text: Union[str, QueryExpr], strategy: str = "auto",
              counters: Optional[ScanCounters] = None,
              work_budget: Optional[int] = None) -> QueryResult:
        """Evaluate a query and return its result sequence."""
        counters = counters if counters is not None else ScanCounters()
        budget = work_budget if work_budget is not None else self.work_budget
        if budget is not None:
            counters.budget = budget

        compiled = compile_query(text)
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            analyze(compiled.flwor).raise_errors()
        choice = self._resolve_strategy(compiled, strategy)
        self.last_plan = str(choice)

        if choice.strategy == "naive":
            evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                        work_budget=budget)
            return QueryResult(evaluator.eval_query_expr(compiled.query, {}))
        if choice.strategy == "xhive":
            from repro.baseline.xhive import XHiveSimulator

            simulator = XHiveSimulator(self.doc, self._resolve_doc, counters)
            return simulator.run(compiled.query)

        assert compiled.flwor is not None and compiled.tree is not None
        executor = FLWORExecutor(
            self.doc, self._resolve_doc,
            join_algorithm=("auto" if choice.strategy == "twigstack"
                            else choice.strategy),
            counters=counters,
            recursive_hint=self.stats.recursive)
        try:
            if choice.strategy == "twigstack":
                items = executor.execute_twigstack(compiled.flwor)
            else:
                items = executor.execute(compiled.flwor)
        except CompileError:
            if strategy != "auto":
                raise
            # Late compile failure under auto: fall back to direct
            # evaluation rather than surfacing an internal limitation.
            evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                        work_budget=budget)
            self.last_plan = "naive (late fallback)"
            return QueryResult(evaluator.eval_query_expr(compiled.query, {}))
        self.last_plan = str(choice) + "; " + "; ".join(executor.plan_notes)

        if compiled.query is compiled.flwor:
            return QueryResult(items)
        wrapper = _SubstitutingEvaluator(self.doc, self._resolve_doc,
                                         compiled.flwor, items)
        return QueryResult(wrapper.eval_query_expr(compiled.query, {}))

    def explain(self, text: Union[str, QueryExpr], strategy: str = "auto") -> str:
        """Describe the plan that ``query`` would run (without running it)."""
        compiled = compile_query(text)
        choice = self._resolve_strategy(compiled, strategy)
        lines = [f"strategy: {choice}"]
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            report = analyze(compiled.flwor)
            if report.correlations:
                lines.append("correlations:")
                for corr in report.correlations:
                    variables = ", ".join(f"${v}" for v in corr.variables)
                    lines.append(f"  [{corr.relation}] {variables}: "
                                 f"{corr.description}")
        if compiled.tree is not None:
            lines.append("BlossomTree:")
            lines.append(compiled.tree.describe())
            from repro.pattern.decompose import decompose

            lines.append("decomposition:")
            lines.append(decompose(compiled.tree).describe())
            from repro.engine.cost import CostModel

            lines.append("cost estimates (expected nodes touched):")
            model = CostModel(self.doc, self.stats, self.index)
            for estimate in model.rank(compiled.tree):
                lines.append(f"  {estimate}")
        elif compiled.compile_error:
            lines.append(f"fallback reason: {compiled.compile_error}")
        return "\n".join(lines)

    @property
    def stats(self) -> DocumentStats:
        """Statistics of the primary document (computed once)."""
        if self._stats is None:
            self._stats = compute_stats(self.doc, with_size=False)
        return self._stats

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _resolve_doc(self, uri: str) -> Document:
        return self.documents.get(uri, self.doc)

    def _resolve_strategy(self, compiled: CompiledQuery, strategy: str) -> PlanChoice:
        if strategy == "auto":
            return choose_strategy(self.stats, compiled.tree,
                                   compiled.is_bare_path, has_index=True)
        if strategy == "cost":
            return self._cost_based_choice(compiled)
        if strategy in ("naive", "xhive"):
            return PlanChoice(strategy, "explicitly requested")
        if strategy == "twigstack":
            if compiled.tree is None:
                raise CompileError(
                    f"twigstack strategy unavailable: {compiled.compile_error}")
            return PlanChoice("twigstack", "explicitly requested")
        if strategy in _BLOSSOM_STRATEGIES:
            if compiled.tree is None or compiled.flwor is None:
                raise CompileError(
                    f"{strategy} strategy unavailable: "
                    f"{compiled.compile_error or 'no FLWOR core'}")
            return PlanChoice(strategy, "explicitly requested")
        raise ValueError(f"unknown strategy {strategy!r}")

    def _cost_based_choice(self, compiled: CompiledQuery) -> PlanChoice:
        """Pick by the Section-6 cost model (expected nodes touched)."""
        if compiled.tree is None:
            return PlanChoice("naive",
                              compiled.compile_error or "no pattern tree")
        from repro.engine.cost import CostModel

        model = CostModel(self.doc, self.stats, self.index)
        for estimate in model.rank(compiled.tree):
            if estimate.cost == float("inf"):
                continue
            if estimate.strategy == "twigstack" and not compiled.is_bare_path:
                continue  # holistic execution only covers bare paths
            return PlanChoice(estimate.strategy, f"cost model: {estimate}")
        return PlanChoice("naive", "cost model found no applicable strategy")
