"""Public API facade: the :class:`Engine`.

Typical use::

    from repro import Engine, parse

    engine = Engine(parse(xml_text))
    result = engine.query('//book[author]/title')
    print(result.pretty())

``Engine.query`` accepts bare path expressions, FLWOR expressions, and
constructor-wrapped FLWORs; ``strategy`` selects the physical plan:

========== ==========================================================
strategy    meaning
========== ==========================================================
``auto``    optimizer picks per the Section-5.2 rules (default)
``pipelined`` BlossomTree with pipelined merge ``//``-joins (PL)
``stack``   BlossomTree with stack-based merge joins
``bnlj``    BlossomTree with bounded nested-loop joins (the paper's NL)
``twigstack`` holistic twig join over the tag index (TS)
``naive``   direct per-iteration FLWOR semantics (the Section-1 strawman)
``xhive``   simulated commercial navigational engine (XH stand-in)
``cost``    pick by the Section-6 cost model (expected nodes touched)
========== ==========================================================

Strategies that do not apply to a query (e.g. ``twigstack`` on a FLWOR
with crossing edges) raise :class:`~repro.errors.CompileError`;
``auto`` never raises — it falls back to ``naive``.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.errors import CompileError, DNFError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import NULL_TRACER, QueryTrace, Tracer
from repro.xmlkit.index import TagIndex
from repro.xmlkit.stats import DocumentStats, compute_stats
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document
from repro.xquery.ast import FLWOR, QueryExpr
from repro.engine.compiler import CompiledQuery, compile_query
from repro.engine.construct import DirectEvaluator
from repro.engine.executor import FLWORExecutor
from repro.engine.optimizer import PlanChoice, choose_strategy
from repro.engine.result import Item, QueryResult

__all__ = ["Engine"]

_BLOSSOM_STRATEGIES = {"pipelined", "caching", "stack", "bnlj", "nl"}

_QUERIES = REGISTRY.counter("repro_queries_total", "Queries executed")
_LATENCY = REGISTRY.histogram("repro_query_latency_ms",
                              "Query wall time in milliseconds")
_DNF = REGISTRY.counter("repro_dnf_total",
                        "Queries aborted by the work budget (DNF)")
_NODES = REGISTRY.counter("repro_nodes_scanned_total",
                          "Nodes delivered by sequential scans")
_SCANS = REGISTRY.counter("repro_scans_total",
                          "Sequential scans opened")
_COMPARISONS = REGISTRY.counter("repro_comparisons_total",
                                "Structural/value predicate evaluations")
_INTERMEDIATE = REGISTRY.counter("repro_intermediate_results_total",
                                 "NestedLists buffered between operators")
_PEAK = REGISTRY.gauge("repro_peak_buffered",
                       "Peak NestedLists held in memory (max over queries)")


class _SubstitutingEvaluator(DirectEvaluator):
    """DirectEvaluator that substitutes a precomputed value for one
    specific FLWOR node (the one the BlossomTree executor ran)."""

    def __init__(self, doc, resolve_doc, target: FLWOR, items: list[Item]) -> None:
        super().__init__(doc, resolve_doc)
        self._target = target
        self._items = items

    def eval_query_expr(self, expr, bindings):  # type: ignore[override]
        if expr is self._target:
            return list(self._items)
        return super().eval_query_expr(expr, bindings)


class Engine:
    """A query engine bound to one primary document.

    Parameters
    ----------
    doc:
        The primary document; ``doc("uri")`` references resolve to it
        unless ``documents`` maps the uri elsewhere.
    documents:
        Optional ``{uri: Document}`` mapping for multi-document queries.
    work_budget:
        Optional cap on scanned nodes per query (DNF emulation); can be
        overridden per call.
    """

    def __init__(self, doc: Document,
                 documents: Optional[dict[str, Document]] = None,
                 work_budget: Optional[int] = None) -> None:
        self.doc = doc
        self.documents = dict(documents or {})
        self.work_budget = work_budget
        self.index = TagIndex(doc)
        self._stats: Optional[DocumentStats] = None
        self.last_plan: Optional[str] = None
        #: Trace of the most recent ``trace=True`` query (also populated
        #: when the query aborted on a budget trip, so DNFs stay
        #: diagnosable).
        self.last_trace: Optional[QueryTrace] = None
        self._last_strategy: str = "?"

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def query(self, text: Union[str, QueryExpr], strategy: str = "auto",
              counters: Optional[ScanCounters] = None,
              work_budget: Optional[int] = None,
              trace: bool = False,
              tracer: Optional[Tracer] = None) -> QueryResult:
        """Evaluate a query and return its result sequence.

        ``trace=True`` records a span tree over the whole pipeline
        (compile → optimize → match/join/bind/finish, one child span
        per NoK scan and per inter-NoK join) and attaches it to the
        result as ``result.trace`` (also kept as ``self.last_trace``).
        ``tracer`` supplies an external tracer instead.
        """
        counters = counters if counters is not None else ScanCounters()
        budget = work_budget if work_budget is not None else self.work_budget
        if budget is not None:
            counters.budget = budget

        tracer = tracer if tracer is not None else (
            Tracer() if trace else NULL_TRACER)
        tracing = tracer is not NULL_TRACER
        self.last_trace = None
        self._last_strategy = strategy
        before = counters.snapshot()
        started = time.perf_counter_ns()
        try:
            with tracer.span("query", strategy=strategy) as qspan:
                if isinstance(text, str):
                    qspan.set(source=" ".join(text.split())[:160])
                try:
                    result = self._run(text, strategy, counters, budget, tracer)
                except DNFError as exc:
                    qspan.set(budget_tripped=True, budget=exc.budget,
                              nodes_scanned=counters.nodes_scanned)
                    _DNF.inc(strategy=self._last_strategy)
                    raise
                qspan.set(plan=self.last_plan, items=len(result))
        finally:
            elapsed_ms = (time.perf_counter_ns() - started) / 1e6
            self._publish_metrics(counters, before, elapsed_ms)
            if tracing:
                self.last_trace = tracer.finish()
        result.trace = self.last_trace
        result.counters = counters
        return result

    def _run(self, text: Union[str, QueryExpr], strategy: str,
             counters: ScanCounters, budget: Optional[int],
             tracer) -> QueryResult:
        """The planning/execution pipeline behind :meth:`query`."""
        compiled = compile_query(text, tracer=tracer)
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            analyze(compiled.flwor).raise_errors()
        choice = self._resolve_strategy(compiled, strategy, tracer)
        self.last_plan = str(choice)
        self._last_strategy = choice.strategy

        if choice.strategy == "naive":
            with tracer.span("execute", plan="naive"):
                evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                            work_budget=budget)
                return QueryResult(evaluator.eval_query_expr(compiled.query, {}))
        if choice.strategy == "xhive":
            from repro.baseline.xhive import XHiveSimulator

            with tracer.span("execute", plan="xhive"):
                simulator = XHiveSimulator(self.doc, self._resolve_doc, counters)
                return simulator.run(compiled.query)

        assert compiled.flwor is not None and compiled.tree is not None
        executor = FLWORExecutor(
            self.doc, self._resolve_doc,
            join_algorithm=("auto" if choice.strategy == "twigstack"
                            else choice.strategy),
            counters=counters,
            recursive_hint=self.stats.recursive,
            tracer=tracer)
        try:
            with tracer.span("execute", plan=choice.strategy):
                if choice.strategy == "twigstack":
                    items = executor.execute_twigstack(compiled.flwor)
                else:
                    items = executor.execute(compiled.flwor)
        except CompileError:
            if strategy != "auto":
                raise
            # Late compile failure under auto: fall back to direct
            # evaluation rather than surfacing an internal limitation.
            with tracer.span("execute", plan="naive (late fallback)"):
                evaluator = DirectEvaluator(self.doc, self._resolve_doc,
                                            work_budget=budget)
                self.last_plan = "naive (late fallback)"
                self._last_strategy = "naive"
                return QueryResult(evaluator.eval_query_expr(compiled.query, {}))
        self.last_plan = str(choice) + "; " + "; ".join(executor.plan_notes)

        if compiled.query is compiled.flwor:
            return QueryResult(items)
        with tracer.span("construct-wrapper"):
            wrapper = _SubstitutingEvaluator(self.doc, self._resolve_doc,
                                             compiled.flwor, items)
            return QueryResult(wrapper.eval_query_expr(compiled.query, {}))

    def _publish_metrics(self, counters: ScanCounters,
                         before: dict[str, int], elapsed_ms: float) -> None:
        """Feed the registry with this run's counter deltas.

        Deltas (not absolutes) because callers may reuse one
        :class:`ScanCounters` across several queries.
        """
        strategy = self._last_strategy
        _QUERIES.inc(strategy=strategy)
        _LATENCY.observe(elapsed_ms, strategy=strategy)
        _NODES.inc(counters.nodes_scanned - before["nodes_scanned"])
        _SCANS.inc(counters.scans_started - before["scans_started"])
        _COMPARISONS.inc(counters.comparisons - before["comparisons"])
        _INTERMEDIATE.inc(counters.intermediate_results
                          - before["intermediate_results"])
        _PEAK.max(counters.peak_buffered)

    def explain(self, text: Union[str, QueryExpr], strategy: str = "auto") -> str:
        """Describe the plan that ``query`` would run (without running it)."""
        compiled = compile_query(text)
        choice = self._resolve_strategy(compiled, strategy)
        lines = [f"strategy: {choice}"]
        if compiled.flwor is not None and not compiled.is_bare_path:
            from repro.xquery.semantics import analyze

            report = analyze(compiled.flwor)
            if report.correlations:
                lines.append("correlations:")
                for corr in report.correlations:
                    variables = ", ".join(f"${v}" for v in corr.variables)
                    lines.append(f"  [{corr.relation}] {variables}: "
                                 f"{corr.description}")
        if compiled.tree is not None:
            lines.append("BlossomTree:")
            lines.append(compiled.tree.describe())
            from repro.pattern.decompose import decompose

            lines.append("decomposition:")
            lines.append(decompose(compiled.tree).describe())
            from repro.engine.cost import CostModel

            lines.append("cost estimates (expected nodes touched):")
            model = CostModel(self.doc, self.stats, self.index)
            for estimate in model.rank(compiled.tree):
                lines.append(f"  {estimate}")
        elif compiled.compile_error:
            lines.append(f"fallback reason: {compiled.compile_error}")
        return "\n".join(lines)

    def explain_analyze(self, text: Union[str, QueryExpr],
                        strategy: str = "auto",
                        work_budget: Optional[int] = None) -> str:
        """Execute the query under tracing and render per-operator rows.

        Each NoK scan and each inter-NoK join gets one row showing
        measured wall time, nodes scanned, comparisons and output
        cardinality next to the cost model's estimates (both in the
        model's currency, expected nodes touched), so the optimizer's
        predictions are directly auditable against the run.
        """
        from repro.engine.cost import CostModel
        from repro.obs.export import format_table

        counters = ScanCounters()
        tracer = Tracer()
        result = self.query(text, strategy=strategy, counters=counters,
                            work_budget=work_budget, tracer=tracer)
        trace = self.last_trace
        assert trace is not None
        model = CostModel(self.doc, self.stats, self.index)

        rows: list[dict[str, object]] = []
        for span in trace.find_all("nok-scan"):
            attrs = span.attrs
            est_nodes, est_rows = model.nok_estimate(
                str(attrs.get("root_tag", "*")))
            shared = " (shared scan)" if attrs.get("shared_scan") else ""
            rows.append({
                "operator": f"scan NoK#{attrs.get('nok_id')} "
                            f"[{attrs.get('root_tag')}]{shared}",
                "time ms": f"{attrs.get('wall_ms', span.duration_ms):.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": f"{est_nodes:,.0f}",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("matches", 0),
                "est.rows": f"{est_rows:,.0f}",
            })
        for span in trace.find_all("inter-join"):
            attrs = span.attrs
            algorithm = str(attrs.get("algorithm", "?"))
            est_nodes, est_rows = model.edge_estimate(
                str(attrs.get("parent_tag", "*")),
                str(attrs.get("child_tag", "*")), algorithm)
            rows.append({
                "operator": f"join V{attrs.get('parent_vid')}->"
                            f"V{attrs.get('child_vid')} [{algorithm}]",
                "time ms": f"{span.duration_ms:.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": f"{est_nodes:,.0f}",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("pairs", 0),
                "est.rows": f"{est_rows:,.0f}",
            })
        for span in trace.find_all("twigstack"):
            attrs = span.attrs
            rows.append({
                "operator": "twigstack (holistic)",
                "time ms": f"{span.duration_ms:.3f}",
                "nodes": attrs.get("nodes_scanned", 0),
                "est.nodes": "-",
                "cmp": attrs.get("comparisons", 0),
                "rows": attrs.get("matches", 0),
                "est.rows": "-",
            })

        lines = ["EXPLAIN ANALYZE"]
        root = trace.root
        if root is not None and "source" in root.attrs:
            lines.append(f"query: {root.attrs['source']}")
        lines.append(f"plan: {self.last_plan}")
        lines.append(f"total: {trace.total_ms:.3f} ms, {len(result)} item(s)")
        lines.append("")
        if rows:
            lines.append(format_table(
                rows, right_align=("time ms", "nodes", "est.nodes", "cmp",
                                   "rows", "est.rows")))
        else:
            lines.append("(no per-operator spans: plan ran outside the "
                         "BlossomTree pipeline)")
        phases = [s for name in ("match-phase", "join-phase", "bind-phase",
                                 "finish-phase")
                  for s in trace.find_all(name)]
        if phases:
            lines.append("")
            lines.append("phases: " + "  ".join(
                f"{s.name.removesuffix('-phase')}={s.duration_ms:.3f}ms"
                for s in phases))
        lines.append("counters: " + " ".join(
            f"{k}={v}" for k, v in counters.snapshot().items()))
        return "\n".join(lines)

    @property
    def stats(self) -> DocumentStats:
        """Statistics of the primary document (computed once)."""
        if self._stats is None:
            self._stats = compute_stats(self.doc, with_size=False)
        return self._stats

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _resolve_doc(self, uri: str) -> Document:
        return self.documents.get(uri, self.doc)

    def _resolve_strategy(self, compiled: CompiledQuery, strategy: str,
                          tracer: Optional[Tracer] = None) -> PlanChoice:
        if strategy == "auto":
            return choose_strategy(self.stats, compiled.tree,
                                   compiled.is_bare_path, has_index=True,
                                   tracer=tracer)
        if strategy == "cost":
            return self._cost_based_choice(compiled)
        if strategy in ("naive", "xhive"):
            return PlanChoice(strategy, "explicitly requested")
        if strategy == "twigstack":
            if compiled.tree is None:
                raise CompileError(
                    f"twigstack strategy unavailable: {compiled.compile_error}")
            return PlanChoice("twigstack", "explicitly requested")
        if strategy in _BLOSSOM_STRATEGIES:
            if compiled.tree is None or compiled.flwor is None:
                raise CompileError(
                    f"{strategy} strategy unavailable: "
                    f"{compiled.compile_error or 'no FLWOR core'}")
            return PlanChoice(strategy, "explicitly requested")
        raise ValueError(f"unknown strategy {strategy!r}")

    def _cost_based_choice(self, compiled: CompiledQuery) -> PlanChoice:
        """Pick by the Section-6 cost model (expected nodes touched)."""
        if compiled.tree is None:
            return PlanChoice("naive",
                              compiled.compile_error or "no pattern tree")
        from repro.engine.cost import CostModel

        model = CostModel(self.doc, self.stats, self.index)
        for estimate in model.rank(compiled.tree):
            if estimate.cost == float("inf"):
                continue
            if estimate.strategy == "twigstack" and not compiled.is_bare_path:
                continue  # holistic execution only covers bare paths
            return PlanChoice(estimate.strategy, f"cost model: {estimate}")
        return PlanChoice("naive", "cost model found no applicable strategy")
