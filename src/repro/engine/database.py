"""The public database facade: the object :func:`repro.connect` returns.

The paper's setting is a native XML database (its comparator X-Hive is
one); this module provides the corresponding storage-backed entry
point: a :class:`Database` bundles a document stored in the succinct
binary format (:mod:`repro.xmlkit.binary`) with its statistics and a
tag-name index.  The underlying
:class:`~repro.engine.session.Engine` is an implementation detail —
reachable as ``db.engine`` for diagnostics, but the supported surface
is this class plus the serving layer behind :meth:`serve`.

Typical use::

    with repro.connect(xml_text) as db:
        db.save("library.btx")
        db.query("//book[author]//title")
    ...
    with repro.connect("library.btx") as db:
        service = db.serve(workers=8)
        service.query("//book[author]//title", timeout_ms=100)

Updates go through :meth:`updater`, which keeps the index registered
for invalidation — the Section-2.1 maintenance story, wired in — and
the engine's plan cache subscribed: every structural update drops all
cached plans and bumps the document version, so repeated queries never
run against a stale strategy choice.  Once :meth:`serve` is active,
in-place updates are refused: all mutations must go through the
service's snapshot updaters, so concurrent readers keep their isolated
versions.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import UsageError
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer
from repro.xmlkit.binary import dump, load
from repro.xmlkit.parser import parse
from repro.xmlkit.stats import DocumentStats, compute_stats
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document
from repro.xmlkit.update import DocumentUpdater
from repro.engine.backend import ExecutionBackend
from repro.engine.prepared import PreparedQuery
from repro.engine.result import QueryResult
from repro.engine.session import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> engine)
    from repro.serve.server import Server
    from repro.serve.service import QueryService

__all__ = ["Database"]


class Database:
    """A stored document plus its engine, statistics and index.

    ``slow_query_ms`` (or a later :meth:`configure_slow_log` call)
    enables the slow-query log: every query whose wall time crosses the
    threshold is recorded with its text, strategy, chosen plan and the
    run's work counters — see :class:`~repro.obs.slowlog.SlowQueryLog`.
    """

    def __init__(self, doc: Document,
                 slow_query_ms: float | None = None,
                 feedback: bool = False,
                 analyze_queries: bool = True) -> None:
        self.doc = doc
        self.engine = Engine(doc, feedback=feedback,
                             analyze_queries=analyze_queries)
        #: Lazily-spawned scan executors (thread pool + process backend)
        #: owned by this database; every parallel plan of ``self.engine``
        #: rides them, and :meth:`close` shuts them down deterministically.
        from repro.physical.process_scan import ScanPools

        self._scan_pools = ScanPools()
        self._updater: DocumentUpdater | None = None
        self._service: QueryService | None = None
        self._server: Server | None = None
        self._closed = False
        self.slow_log: SlowQueryLog | None = (
            SlowQueryLog(slow_query_ms) if slow_query_ms is not None else None)

    def configure_slow_log(self, threshold_ms: float = 100.0,
                           path: str | Path | None = None,
                           max_entries: int = 1000) -> SlowQueryLog:
        """Enable (or reconfigure) the slow-query log; returns it."""
        self.slow_log = SlowQueryLog(threshold_ms, path, max_entries)
        return self.slow_log

    # ------------------------------------------------------------------
    # Construction / persistence.
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str) -> Database:
        """Build a database from XML text."""
        return cls(parse(text))

    @classmethod
    def open(cls, path: str | Path) -> Database:
        """Open a database stored with :meth:`save`.

        The new instance's plan cache starts empty — compiled plans
        never survive a save/open round-trip (only the document is
        persisted); the explicit ``reopen`` invalidation records the
        boundary in the cache counters.
        """
        db = cls(load(Path(path).read_bytes()))
        db.engine.plan_cache.invalidate("reopen")
        return db

    def save(self, path: str | Path) -> int:
        """Persist to the succinct binary format; returns bytes written."""
        payload = dump(self.doc)
        Path(path).write_bytes(payload)
        return len(payload)

    # ------------------------------------------------------------------
    # Queries and updates.
    # ------------------------------------------------------------------

    def query(self, text: str, *,
              strategy: str = "auto",
              counters: ScanCounters | None = None,
              work_budget: int | None = None,
              trace: bool = False,
              tracer: Tracer | None = None,
              params: dict | None = None,
              timeout_ms: float | None = None,
              executor: ExecutionBackend | str | None = None) -> QueryResult:
        """Evaluate a query (see :meth:`Engine.query` for the options —
        the signatures are identical: the same keyword-only
        ``strategy`` / ``params`` / ``timeout_ms`` / ``executor``
        spelling works here, on the engine, on
        :meth:`QueryService.submit <repro.serve.service.QueryService.submit>`
        and on the network
        :meth:`Client.query <repro.serve.client.Client.query>`).

        When the slow-query log is enabled the call is timed and,
        past the threshold, recorded with plan and counters.
        """
        self._wire_pools()
        if self.slow_log is None:
            return self.engine.query(text, strategy=strategy,
                                     counters=counters,
                                     work_budget=work_budget,
                                     trace=trace, tracer=tracer,
                                     params=params, timeout_ms=timeout_ms,
                                     executor=executor)
        counters = counters if counters is not None else ScanCounters()
        before = counters.snapshot()
        started = time.perf_counter_ns()
        try:
            result = self.engine.query(text, strategy=strategy,
                                       counters=counters,
                                       work_budget=work_budget,
                                       trace=trace, tracer=tracer,
                                       params=params, timeout_ms=timeout_ms,
                                       executor=executor)
        finally:
            elapsed_ms = (time.perf_counter_ns() - started) / 1e6
            snapshot = counters.snapshot()
            delta = {k: snapshot[k] - before[k] for k in snapshot}
            self.slow_log.observe(text, strategy, self.engine.last_plan or "?",
                                  elapsed_ms, delta)
        return result

    def prepare(self, text: str, *, strategy: str = "auto",
                executor: ExecutionBackend | str | None = None
                ) -> PreparedQuery:
        """Compile once for repeated execution (see :meth:`Engine.prepare`)."""
        self._wire_pools()
        return self.engine.prepare(text, strategy=strategy,
                                   executor=executor)

    def _wire_pools(self) -> None:
        """Point the engine's scan executors at the database-owned pools.

        The pools themselves stay lazy — nothing is spawned until a
        parallel plan actually submits a partition task — but ownership
        is fixed here so :meth:`close` can shut down whatever was used.
        """
        if self.engine.scan_executor is None:
            self.engine.scan_executor = self._scan_pools.thread_pool()
        if self.engine.process_executor is None:
            self.engine.process_executor = self._scan_pools.process_backend()

    def explain_analyze(self, text: str, strategy: str = "auto",
                        work_budget: int | None = None, *,
                        params: dict | None = None,
                        timeout_ms: float | None = None) -> str:
        """Per-operator measured-vs-estimated rows (see Engine)."""
        return self.engine.explain_analyze(text, strategy,
                                           work_budget=work_budget,
                                           params=params,
                                           timeout_ms=timeout_ms)

    def explain(self, text: str, strategy: str = "auto") -> str:
        return self.engine.explain(text, strategy)

    @property
    def doc_stats(self) -> DocumentStats:
        """Structural statistics of the stored document (Table 1 row)."""
        return self.engine.stats

    def stats(self, top: int = 10) -> dict:
        """A structured JSON snapshot of the database's runtime state.

        One call, one dict — what an operator (or ``python -m
        repro.obs report``) needs to see where time goes: the document
        summary, plan-cache hit ratios, the runtime statistics store
        (top ``top`` plans by accumulated time, per-strategy win/loss,
        feedback demotions), the slow-query log, and the serving
        layer's own :meth:`QueryService.stats
        <repro.serve.service.QueryService.stats>` when :meth:`serve` is
        active.

        The payload is versioned: ``"schema": 1`` at the top level
        (shared with ``QueryService.stats()`` and the network ``stats``
        frame; the schema is documented in DESIGN.md and ``python -m
        repro.obs report`` refuses versions it does not know).  The
        ``top`` default is 10 on every stats surface.

        .. note:: this used to be a property aliasing the document
           statistics; those now live at :attr:`doc_stats`.
        """
        doc_stats = self.engine.stats
        return {
            "schema": 1,
            "document": {
                "n_nodes": doc_stats.n_nodes,
                "n_elements": doc_stats.n_elements,
                "n_distinct_tags": doc_stats.n_distinct_tags,
                "max_depth": doc_stats.max_depth,
                "recursive": doc_stats.recursive,
                "recursion_degree": doc_stats.recursion_degree,
                "fingerprint": "/".join(
                    str(part) for part in self.engine.stats_fingerprint()),
            },
            "plan_cache": self.engine.plan_cache.stats(),
            "statstore": self.engine.stats_store.snapshot(top=top),
            "slow_queries": (
                None if self.slow_log is None else {
                    "threshold_ms": self.slow_log.threshold_ms,
                    "entries": len(self.slow_log),
                }),
            "service": (self._service.stats()
                        if self._service is not None
                        and not self._service.closed else None),
            "feedback": self.engine.feedback,
            "querylint": {
                "enabled": self.engine.analyze_queries,
                "summary_paths": (len(self.engine.summary)
                                  if self.engine.analyze_queries else None),
                "summary_fingerprint": (
                    self.engine.summary.fingerprint()
                    if self.engine.analyze_queries else None),
            },
        }

    def updater(self) -> DocumentUpdater:
        """The document updater, wired for cache coherence: structural
        updates invalidate the engine's tag index (rebuilt lazily on
        the next join-based query) and its plan cache (stale statistics
        must not steer strategy choice).

        Refused while :meth:`serve` is active: the service's readers
        hold snapshots of this document, and an in-place mutation would
        tear them — use ``service.updater()`` (copy-on-write) instead.
        """
        if self._service is not None and not self._service.closed:
            raise UsageError(
                "in-place updates are disabled while a query service is "
                "running (its readers hold snapshots of this document); "
                "use service.updater() for copy-on-write batches")
        if self._updater is None:
            self._updater = DocumentUpdater(self.doc)
            self._updater.register_index(self.engine.index)
            self._updater.register_listener(
                lambda report: self.engine.notify_update(report))
        return self._updater

    # ------------------------------------------------------------------
    # Serving and lifecycle.
    # ------------------------------------------------------------------

    def serve(self, workers: int = 4, *,
              max_queue: int = 64,
              default_timeout_ms: float | None = None,
              result_cache=None,
              result_cache_size: int | None = None) -> QueryService:
        """Start (or return) the concurrent query service for this
        database.

        The document becomes snapshot 1 of a fresh serving
        :class:`~repro.serve.catalog.Catalog` (registered as
        ``"main"``); queries go through a bounded worker pool with
        admission control and per-query deadlines, and updates through
        copy-on-write snapshot batches — see :mod:`repro.serve`.
        ``result_cache`` configures the byte-accounted result cache
        (see :func:`repro.serve.cachepolicy.resolve_result_cache`; the
        deprecated entry-count ``result_cache_size=`` still maps for
        one release).  The service is owned by the database:
        :meth:`close` drains and stops it.  Calling ``serve()`` again
        while the service runs returns the same instance (the knobs of
        the first call win).
        """
        if self._closed:
            raise UsageError("database is closed")
        if self._service is not None and not self._service.closed:
            return self._service
        from repro.engine._compat import absorb_result_cache
        from repro.serve.catalog import Catalog
        from repro.serve.service import QueryService

        catalog = Catalog(feedback=self.engine.feedback,
                          analyze_queries=self.engine.analyze_queries)
        catalog.register("main", self.doc)
        self._service = QueryService(
            catalog, workers=workers, max_queue=max_queue,
            default_timeout_ms=default_timeout_ms,
            result_cache=absorb_result_cache("Database.serve", result_cache,
                                             result_cache_size),
            slow_log=self.slow_log)
        return self._service

    def listen(self, host: str = "127.0.0.1", port: int = 0, *,
               workers: int = 4, **options) -> Server:
        """Start the network serving front end for this database.

        Starts (or reuses) the in-process service via :meth:`serve`
        and binds a :class:`~repro.serve.server.Server` speaking the
        v1 frame protocol on ``host:port`` (port 0 picks an ephemeral
        port — read it back from ``server.address``).  Remote clients
        connect with :func:`repro.serve.client.connect`, which mirrors
        this API's keyword spelling exactly.  Remaining ``options`` are
        :class:`~repro.serve.server.Server` knobs (``target_ms``,
        ``max_window``, ``default_timeout_ms``, ...).  The server is
        owned by the database: :meth:`close` drains and stops it.
        Calling ``listen()`` again while a server runs returns the
        same instance (the knobs of the first call win).
        """
        if self._closed:
            raise UsageError("database is closed")
        if self._server is not None and not self._server.closed:
            return self._server
        from repro.serve.server import Server

        self._server = Server(self.serve(workers=workers),
                              host=host, port=port, **options)
        return self._server

    def close(self) -> None:
        """Drain and stop the network server and query service (if
        any), shut down the database-owned scan executors (thread and
        process pools), release the document's arena file, and close
        the slow-query log.  Idempotent; the database refuses new
        serving after close, but plain serial :meth:`query` calls keep
        working (they hold no external resources)."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        if self._service is not None:
            self._service.close(drain=True)
        # Deterministic worker-pool cleanup: drain and stop the scan
        # executors this database owns, and release the document's
        # arena file if process-backend queries materialized one.
        self._scan_pools.close(wait=True)
        self.engine.scan_executor = None
        self.engine.process_executor = None
        from repro.xmlkit.arena import release_arena

        release_arena(self.doc)
        if self.slow_log is not None:
            self.slow_log.close()

    def __enter__(self) -> Database:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def refresh_stats(self) -> DocumentStats:
        """Recompute statistics after updates (the optimizer reads them)."""
        self.engine._stats = compute_stats(self.doc, with_size=False)
        return self.engine._stats

    def __repr__(self) -> str:  # pragma: no cover
        stats = self.doc_stats
        return (f"<Database {stats.n_elements} elements, "
                f"{stats.n_distinct_tags} tags, "
                f"{'recursive' if stats.recursive else 'flat'}>")
