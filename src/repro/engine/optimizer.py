"""Rule-based physical-operator selection.

The paper leaves full cost-based optimization to future work but states
the decision rules its experiments support (Section 5.2):

* pipelined merge joins are preferred on **non-recursive** documents —
  they are index-free, scan-friendly and comparable to or faster than
  TwigStack there;
* on **recursive** documents the pipelined join is unsound (Example 5 /
  Theorem 2's precondition fails), so a stack-based merge (bounded
  memory) or bounded nested loop is used instead;
* TwigStack is the choice when a tag-name index exists and the whole
  query is a ``//``-twig — optimal for all-``//`` patterns;
* the naive per-iteration interpreter is the fallback for constructs
  outside the pattern-matching subset.

:func:`choose_strategy` encodes those rules; the engine session calls
it when the caller asks for ``strategy="auto"``.

:class:`StrategyAdvisor` layers measurement on top of the rules: when
the engine runs with feedback enabled, the advisor probes the static
choice against one plausible alternative (a few executions each, read
from the runtime :class:`~repro.obs.statstore.StatsStore`), then
settles on whichever measured faster — demoting the static choice with
hysteresis when the alternative wins (the BENCH_PR5 case: ``parallel``
auto-selected yet measurably slower than the serial pipelined scan).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.statstore import DemotionRecord, StatsStore
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pattern.blossom import MODE_OPTIONAL, BlossomTree, BlossomVertex
from repro.physical.twigstack import twig_supported
from repro.xmlkit.stats import DocumentStats

__all__ = ["PlanChoice", "StrategyAdvisor", "choose_strategy",
           "prune_pattern", "PARALLEL_SCAN_THRESHOLD",
           "MIN_FEEDBACK_SAMPLES", "DEMOTE_MARGIN", "REPROMOTE_MARGIN"]

#: Minimum arena size (in nodes) before ``auto`` trades the serial
#: merged scan for partition-parallel scans when the caller offers
#: ``parallelism > 1``.  Below this the per-partition hand-off costs
#: more than the scan itself; the threshold sits near where the
#: partitioner's own minimum partition size stops cutting anyway.
PARALLEL_SCAN_THRESHOLD = 4_096


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision and its reasoning (for ``explain``)."""

    strategy: str        # "pipelined" | "stack" | "bnlj" | "twigstack" | "naive" | "parallel"
    reason: str

    def __str__(self) -> str:
        return f"{self.strategy} ({self.reason})"


def choose_strategy(stats: DocumentStats, tree: BlossomTree | None,
                    is_bare_path: bool, has_index: bool,
                    tracer: Tracer | None = None,
                    parallelism: int = 1) -> PlanChoice:
    """Pick the physical strategy for a compiled query.

    Parameters
    ----------
    stats:
        Statistics of the (primary) input document.
    tree:
        The BlossomTree, or ``None`` when compilation failed (forces the
        naive fallback).
    is_bare_path:
        Whether the query is a single path expression (TwigStack is only
        applicable there).
    has_index:
        Whether a tag-name index is available (TwigStack requires one).
    tracer:
        Optional tracer; records an ``optimize`` span whose attributes
        carry the decision and its reasoning.
    parallelism:
        Partition budget the caller is willing to spend on the match
        phase.  With ``parallelism > 1`` and a document past
        :data:`PARALLEL_SCAN_THRESHOLD`, the non-recursive merged-scan
        plan upgrades to the ``parallel`` strategy (partition-parallel
        scans, Theorem 1 concatenation); recursive documents keep
        their stack/twigstack choice — the parallel upgrade only
        replaces the pipelined outcome.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("optimize") as span:
        choice = _choose(stats, tree, is_bare_path, has_index, parallelism)
        span.set(strategy=choice.strategy, reason=choice.reason,
                 recursive=stats.recursive)
    return choice


def _choose(stats: DocumentStats, tree: BlossomTree | None,
            is_bare_path: bool, has_index: bool,
            parallelism: int = 1) -> PlanChoice:
    if tree is None:
        return PlanChoice("naive", "query outside the pattern-matching subset")
    if stats.recursive:
        if is_bare_path and has_index and twig_supported(tree):
            return PlanChoice(
                "twigstack",
                f"recursive document (degree {stats.recursion_degree}); "
                "holistic twig join is optimal for //-twigs")
        return PlanChoice(
            "stack",
            f"recursive document (degree {stats.recursion_degree}); "
            "pipelined merge is unsound, stack merge bounds memory by depth")
    if parallelism > 1 and stats.n_nodes >= PARALLEL_SCAN_THRESHOLD:
        return PlanChoice(
            "parallel",
            f"non-recursive document of {stats.n_nodes} nodes >= "
            f"{PARALLEL_SCAN_THRESHOLD}; partition-parallel merged scan "
            f"across {parallelism} partitions (Theorem 1 concatenation)")
    return PlanChoice(
        "pipelined",
        "non-recursive document; index-free merge joins over ordered "
        "NoK streams (Theorem 2)")


# ----------------------------------------------------------------------
# Feedback: measured strategy selection over the static rules.
# ----------------------------------------------------------------------

#: Observations of an arm before its mean is trusted for a decision.
MIN_FEEDBACK_SAMPLES = 2

#: The alternative must measure at least this factor faster before the
#: static choice is demoted.  BENCH_PR5's parallel/serial ratio is
#: ~1.04, so 2% keeps that regression demotable while absorbing timer
#: noise on genuinely-equal arms.
DEMOTE_MARGIN = 1.02

#: Hysteresis: once settled, the decision only flips if the settled arm's
#: measured mean degrades past this factor of the other arm — a much
#: wider band than the demotion margin, so the choice cannot flap on
#: run-to-run noise.
REPROMOTE_MARGIN = 1.25


class StrategyAdvisor:
    """Explore-then-commit strategy selection from measured latencies.

    For each plan-cache key the advisor compares the static rule-based
    choice against **one** alternative strategy (the pair the paper's
    experiments show is workload-dependent): it runs each arm
    :data:`MIN_FEEDBACK_SAMPLES` times, then settles on the measured
    winner.  Settling *against* the static choice is a demotion —
    counted in ``repro_strategy_demotions_total`` and recorded on the
    store for the introspection surface.  All state lives in the
    :class:`~repro.obs.statstore.StatsStore`, so advice is a pure
    function of recorded history: deterministic, and shared across the
    serving layer's snapshot engines exactly like the observations.
    """

    def __init__(self, store: StatsStore) -> None:
        self.store = store

    @staticmethod
    def alternative(static: str, stats: DocumentStats,
                    tree: BlossomTree | None, is_bare_path: bool,
                    has_index: bool) -> str | None:
        """The one strategy worth measuring against the static choice.

        ``parallel`` probes the serial pipelined scan it upgraded from
        (the partition overhead question); on bare twig-supported paths
        the merge-join choices probe TwigStack and vice versa (the
        Table-3 selectivity question).  ``None`` means the rules have
        no credible contender and feedback stays out of the way.
        """
        if tree is None:
            return None
        if static == "parallel":
            return "pipelined"
        twig_ok = is_bare_path and has_index and twig_supported(tree)
        if not twig_ok:
            return None
        if static in ("pipelined", "stack"):
            return "twigstack"
        if static == "twigstack":
            return "stack" if stats.recursive else "pipelined"
        return None

    def advise(self, text: str, fingerprint: tuple, executor: str,
               static: PlanChoice, alternative: str | None) -> PlanChoice:
        """The strategy to execute now, given the measured history.

        Phases per key: settled decision (with hysteresis re-check) →
        probe the static arm → probe the alternative arm → settle on
        the measured winner.  Safe to call repeatedly for one
        execution — nothing is recorded here, only read (and a settle
        written once both arms are measured).
        """
        if alternative is None or alternative == static.strategy:
            return static
        settled = self.store.settled_strategy(text, fingerprint, executor)
        arms = self.store.arms(text, fingerprint, executor)
        if settled is not None:
            return self._hold_or_flip(text, fingerprint, executor,
                                      static, alternative, settled, arms)
        static_arm = arms.get(static.strategy)
        static_n = static_arm.successes if static_arm else 0
        if static_n < MIN_FEEDBACK_SAMPLES:
            return PlanChoice(static.strategy, static.reason)
        alt_arm = arms.get(alternative)
        alt_n = alt_arm.successes if alt_arm else 0
        if alt_n < MIN_FEEDBACK_SAMPLES:
            return PlanChoice(
                alternative,
                f"feedback probe {alt_n + 1}/{MIN_FEEDBACK_SAMPLES} of "
                f"{alternative} vs static {static.strategy} "
                f"({static_arm.mean_ms:.3f} ms measured)")
        return self._settle(text, fingerprint, executor, static,
                            static_arm, alt_arm)

    # -- decision phases ---------------------------------------------------

    def _settle(self, text: str, fingerprint: tuple, executor: str,
                static: PlanChoice, static_arm, alt_arm) -> PlanChoice:
        """Both arms measured: commit to the winner (maybe demoting)."""
        static_ms = static_arm.mean_ms
        alt_ms = alt_arm.mean_ms
        if alt_ms * DEMOTE_MARGIN < static_ms:
            reason = (f"feedback: demoted {static.strategy} "
                      f"({static_ms:.3f} ms measured) to "
                      f"{alt_arm.strategy} ({alt_ms:.3f} ms)")
            record = DemotionRecord(
                query=text, fingerprint="/".join(map(str, fingerprint)),
                executor=executor, from_strategy=static.strategy,
                to_strategy=alt_arm.strategy, from_mean_ms=static_ms,
                to_mean_ms=alt_ms,
                executions=static_arm.executions + alt_arm.executions,
                reason=reason)
            self.store.settle(text, fingerprint, executor,
                              alt_arm.strategy, record)
            return PlanChoice(alt_arm.strategy, reason)
        self.store.settle(text, fingerprint, executor, static.strategy)
        return PlanChoice(
            static.strategy,
            f"{static.reason}; feedback confirmed ({static_ms:.3f} ms vs "
            f"{alt_arm.strategy} {alt_ms:.3f} ms)")

    def _hold_or_flip(self, text: str, fingerprint: tuple, executor: str,
                      static: PlanChoice, alternative: str, settled: str,
                      arms: dict) -> PlanChoice:
        """Settled decision: hold unless it degraded past the hysteresis."""
        other = alternative if settled == static.strategy else static.strategy
        settled_arm = arms.get(settled)
        other_arm = arms.get(other)
        if (settled_arm and other_arm
                and settled_arm.successes >= MIN_FEEDBACK_SAMPLES
                and other_arm.successes >= MIN_FEEDBACK_SAMPLES
                and settled_arm.mean_ms > other_arm.mean_ms * REPROMOTE_MARGIN):
            reason = (f"feedback: settled {settled} degraded to "
                      f"{settled_arm.mean_ms:.3f} ms vs {other} "
                      f"{other_arm.mean_ms:.3f} ms; flipping")
            record = None
            if other != static.strategy:   # flip away from static = demotion
                record = DemotionRecord(
                    query=text, fingerprint="/".join(map(str, fingerprint)),
                    executor=executor, from_strategy=settled,
                    to_strategy=other, from_mean_ms=settled_arm.mean_ms,
                    to_mean_ms=other_arm.mean_ms,
                    executions=settled_arm.executions + other_arm.executions,
                    reason=reason)
            self.store.settle(text, fingerprint, executor, other, record)
            return PlanChoice(other, reason)
        if settled == static.strategy:
            return PlanChoice(settled, f"{static.reason}; feedback holds")
        return PlanChoice(
            settled,
            f"feedback: measured winner over static {static.strategy}")


# ----------------------------------------------------------------------
# Query-lint pruning rewriter.
# ----------------------------------------------------------------------

def prune_pattern(tree: BlossomTree, prune_vids: list[int]
                  ) -> tuple[BlossomTree | None, tuple[str, ...]]:
    """Cut provably-empty optional branches out of a BlossomTree.

    ``prune_vids`` anchors come from the query lint
    (:func:`repro.analysis.query.analyze_query`): each names the
    topmost vertex of an optional branch whose match is provably the
    empty sequence.  A branch is *removable* only when cutting it
    cannot change any tuple: no vertex in it binds a variable, is
    returning (output / join endpoint / crossing endpoint), or anchors
    a crossing edge.  After removal, parents left as inert optional
    leaves (the BT006 shape) are cascaded away.

    Returns ``(pruned copy, notes)`` — the input tree is never mutated
    (cached compilations share it) — or ``(None, ())`` when no anchor
    is removable.  The copy renumbers vertex ids densely and preserves
    root order, variable bindings, crossing edges and residual
    where-conjuncts, so it passes the same BT/NK/DW verification as a
    freshly built tree.
    """
    by_vid = {v.vid: v for v in tree.vertices}
    removed: set[int] = set()
    notes: list[str] = []
    for vid in prune_vids:
        anchor = by_vid.get(vid)
        if anchor is None or anchor.parent_edge is None \
                or vid in removed:
            continue
        subtree = list(tree.iter_subtree(anchor))
        if any(v.variables or v.returning for v in subtree):
            continue
        removed.update(v.vid for v in subtree)
        notes.append(f"pruned empty branch at V{anchor.vid} "
                     f"('{anchor.name}', {len(subtree)} vertex(es))")
    if not removed:
        return None, ()
    # Cascade: a parent reduced to an inert optional leaf goes too.
    changed = True
    while changed:
        changed = False
        for vertex in tree.vertices:
            if vertex.vid in removed or vertex.parent_edge is None:
                continue
            if vertex.parent_edge.mode != MODE_OPTIONAL:
                continue
            if vertex.variables or vertex.returning \
                    or vertex.value_predicates:
                continue
            if all(c.vid in removed for c in vertex.children()):
                removed.add(vertex.vid)
                notes.append(f"cascaded inert optional leaf V{vertex.vid} "
                             f"('{vertex.name}')")
                changed = True
    pruned = BlossomTree()
    mapping: dict[int, BlossomVertex] = {}
    for root in tree.roots:
        for vertex in tree.iter_subtree(root):
            if vertex.vid in removed:
                continue
            copy = (pruned.new_root(vertex.name)
                    if vertex.parent_edge is None
                    else pruned.new_vertex(vertex.name))
            copy.value_predicates = list(vertex.value_predicates)
            mapping[vertex.vid] = copy
    for edge in tree.tree_edges:
        if edge.parent.vid in mapping and edge.child.vid in mapping:
            pruned.add_edge(mapping[edge.parent.vid],
                            mapping[edge.child.vid], edge.axis, edge.mode)
    for vertex in tree.vertices:
        if vertex.vid not in mapping:
            continue
        for name in vertex.variables:
            pruned.bind_variable(name, mapping[vertex.vid],
                                 vertex.var_kinds[name])
    for crossing in tree.crossing_edges:
        pruned.add_crossing(mapping[crossing.u.vid], mapping[crossing.v.vid],
                            crossing.relation, crossing.negated)
    for vertex in tree.vertices:          # returning flags last (upward
        if vertex.vid in mapping:         # closure already held)
            mapping[vertex.vid].returning = vertex.returning
    pruned.residual_where = list(tree.residual_where)
    return pruned, tuple(notes)
