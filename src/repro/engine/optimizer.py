"""Rule-based physical-operator selection.

The paper leaves full cost-based optimization to future work but states
the decision rules its experiments support (Section 5.2):

* pipelined merge joins are preferred on **non-recursive** documents —
  they are index-free, scan-friendly and comparable to or faster than
  TwigStack there;
* on **recursive** documents the pipelined join is unsound (Example 5 /
  Theorem 2's precondition fails), so a stack-based merge (bounded
  memory) or bounded nested loop is used instead;
* TwigStack is the choice when a tag-name index exists and the whole
  query is a ``//``-twig — optimal for all-``//`` patterns;
* the naive per-iteration interpreter is the fallback for constructs
  outside the pattern-matching subset.

:func:`choose_strategy` encodes those rules; the engine session calls
it when the caller asks for ``strategy="auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import NULL_TRACER, Tracer
from repro.pattern.blossom import BlossomTree
from repro.physical.twigstack import twig_supported
from repro.xmlkit.stats import DocumentStats

__all__ = ["PlanChoice", "choose_strategy", "PARALLEL_SCAN_THRESHOLD"]

#: Minimum arena size (in nodes) before ``auto`` trades the serial
#: merged scan for partition-parallel scans when the caller offers
#: ``parallelism > 1``.  Below this the per-partition hand-off costs
#: more than the scan itself; the threshold sits near where the
#: partitioner's own minimum partition size stops cutting anyway.
PARALLEL_SCAN_THRESHOLD = 4_096


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision and its reasoning (for ``explain``)."""

    strategy: str        # "pipelined" | "stack" | "bnlj" | "twigstack" | "naive" | "parallel"
    reason: str

    def __str__(self) -> str:
        return f"{self.strategy} ({self.reason})"


def choose_strategy(stats: DocumentStats, tree: BlossomTree | None,
                    is_bare_path: bool, has_index: bool,
                    tracer: Tracer | None = None,
                    parallelism: int = 1) -> PlanChoice:
    """Pick the physical strategy for a compiled query.

    Parameters
    ----------
    stats:
        Statistics of the (primary) input document.
    tree:
        The BlossomTree, or ``None`` when compilation failed (forces the
        naive fallback).
    is_bare_path:
        Whether the query is a single path expression (TwigStack is only
        applicable there).
    has_index:
        Whether a tag-name index is available (TwigStack requires one).
    tracer:
        Optional tracer; records an ``optimize`` span whose attributes
        carry the decision and its reasoning.
    parallelism:
        Partition budget the caller is willing to spend on the match
        phase.  With ``parallelism > 1`` and a document past
        :data:`PARALLEL_SCAN_THRESHOLD`, the non-recursive merged-scan
        plan upgrades to the ``parallel`` strategy (partition-parallel
        scans, Theorem 1 concatenation); recursive documents keep
        their stack/twigstack choice — the parallel upgrade only
        replaces the pipelined outcome.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("optimize") as span:
        choice = _choose(stats, tree, is_bare_path, has_index, parallelism)
        span.set(strategy=choice.strategy, reason=choice.reason,
                 recursive=stats.recursive)
    return choice


def _choose(stats: DocumentStats, tree: BlossomTree | None,
            is_bare_path: bool, has_index: bool,
            parallelism: int = 1) -> PlanChoice:
    if tree is None:
        return PlanChoice("naive", "query outside the pattern-matching subset")
    if stats.recursive:
        if is_bare_path and has_index and twig_supported(tree):
            return PlanChoice(
                "twigstack",
                f"recursive document (degree {stats.recursion_degree}); "
                "holistic twig join is optimal for //-twigs")
        return PlanChoice(
            "stack",
            f"recursive document (degree {stats.recursion_degree}); "
            "pipelined merge is unsound, stack merge bounds memory by depth")
    if parallelism > 1 and stats.n_nodes >= PARALLEL_SCAN_THRESHOLD:
        return PlanChoice(
            "parallel",
            f"non-recursive document of {stats.n_nodes} nodes >= "
            f"{PARALLEL_SCAN_THRESHOLD}; partition-parallel merged scan "
            f"across {parallelism} partitions (Theorem 1 concatenation)")
    return PlanChoice(
        "pipelined",
        "non-recursive document; index-free merge joins over ordered "
        "NoK streams (Theorem 2)")
