"""Result construction: turning bound variables into output XML.

Both the BlossomTree engine and the naive oracle interpreter construct
results with these helpers, so any disagreement between them in tests is
a disagreement about *matching*, never about output formatting.

Construction copies matched nodes into a fresh result document (XQuery
constructor semantics: constructed content is a copy, detached from the
input document).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ExecutionError
from repro.xmlkit.serialize import pretty, serialize
from repro.xmlkit.tree import ELEMENT, TEXT, DocumentBuilder, Node
from repro.xpath.evaluator import AttrNode

__all__ = ["QueryResult", "ResultBuilder", "copy_into", "atom_text"]

Item = Node | AttrNode | str | float | bool


def atom_text(item: Item) -> str:
    """Render a non-node item (or a node's string value) as text."""
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return str(int(item)) if item == int(item) else str(item)
    if isinstance(item, str):
        return item
    return item.string_value()


def copy_into(builder: DocumentBuilder, node: Node | AttrNode) -> None:
    """Deep-copy a source node into the document being built."""
    if isinstance(node, AttrNode):
        # Attributes selected as items serialize as their value text.
        builder.text(node.value)
        return
    if node.kind == TEXT:
        builder.text(node.text or "")
        return
    if node.kind == ELEMENT:
        builder.start_element(node.tag, node.attrs or None)  # type: ignore[arg-type]
        for child in node.children:
            copy_into(builder, child)
        builder.end_element()
        return
    # Document node: copy its element children.
    for child in node.children:
        copy_into(builder, child)


class ResultBuilder:
    """Builds one constructed element tree (constructor semantics)."""

    def __init__(self) -> None:
        self._builder = DocumentBuilder()
        self._depth = 0

    def start_element(self, tag: str, attrs: dict[str, str] | None = None) -> None:
        self._builder.start_element(tag, attrs)
        self._depth += 1

    def end_element(self) -> None:
        if self._depth == 0:
            raise ExecutionError("unbalanced result construction")
        self._builder.end_element()
        self._depth -= 1

    def text(self, content: str) -> None:
        self._builder.text(content)

    def add_item(self, item: Item) -> None:
        """Add one sequence item inside the current element."""
        if isinstance(item, (Node, AttrNode)):
            copy_into(self._builder, item)
        else:
            self._builder.text(atom_text(item))

    def add_items(self, items: Iterable[Item]) -> None:
        """Add a sequence of items, space-separating adjacent atoms
        (XQuery content-sequence rule)."""
        previous_was_atom = False
        for item in items:
            is_atom = not isinstance(item, (Node, AttrNode))
            if is_atom and previous_was_atom:
                self._builder.text(" ")
            self.add_item(item)
            previous_was_atom = is_atom

    def finish(self) -> Node:
        """Return the constructed root element."""
        if self._depth != 0:
            raise ExecutionError("unbalanced result construction")
        doc = self._builder.finish()
        assert doc.root is not None
        return doc.root


class QueryResult:
    """The value of a query: an ordered sequence of items.

    Items are nodes (from the input document or freshly constructed) or
    atoms.  Provides canonical serializations used throughout the tests
    to compare engines.

    When the query ran with ``trace=True``, ``trace`` holds the
    finished :class:`~repro.obs.trace.QueryTrace`; ``counters`` holds
    the run's :class:`~repro.xmlkit.storage.ScanCounters` whenever the
    session had them (all non-naive paths).
    """

    def __init__(self, items: Sequence[Item]) -> None:
        self.items = list(items)
        self.trace = None       # QueryTrace | None, set by the session
        self.counters = None    # ScanCounters | None, set by the session

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def nodes(self) -> list[Node]:
        """Only the element/text node items."""
        return [i for i in self.items if isinstance(i, Node)]

    def serialize(self) -> str:
        """Compact serialization of all items, concatenated."""
        parts: list[str] = []
        previous_was_atom = False
        for item in self.items:
            if isinstance(item, Node):
                parts.append(serialize(item))
                previous_was_atom = False
            elif isinstance(item, AttrNode):
                parts.append(item.value)
                previous_was_atom = False
            else:
                if previous_was_atom:
                    parts.append(" ")
                parts.append(atom_text(item))
                previous_was_atom = True
        return "".join(parts)

    def pretty(self) -> str:
        """Indented serialization (display form)."""
        parts: list[str] = []
        for item in self.items:
            if isinstance(item, Node):
                parts.append(pretty(item))
            elif isinstance(item, AttrNode):
                parts.append(item.value + "\n")
            else:
                parts.append(atom_text(item) + "\n")
        return "".join(parts)

    def string_values(self) -> list[str]:
        """String value of each item (handy in tests)."""
        return [atom_text(i) if not isinstance(i, (Node, AttrNode))
                else i.string_value() for i in self.items]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<QueryResult {len(self.items)} items>"
