"""One-release compatibility shims for the unified query-call API.

PR 7 made the query options — ``strategy`` / ``params`` /
``timeout_ms`` / ``parallelism`` and the diagnostics knobs — strictly
keyword-only on every call surface (``Engine.query``,
``Database.query``, ``PreparedQuery.execute``, ``QueryService.submit``
and the network ``Client.query``), so the five surfaces expose
*identical* signatures (a contract test pins this).  Positional call
sites from earlier releases keep working for one release through
:func:`absorb_positional`, which maps leading positional values onto
their keywords and emits a :class:`DeprecationWarning`.

PR 9 redesigned the parallel-execution knob: ``parallelism: int`` was
replaced by the unified ``executor=`` backend spec
(:mod:`repro.engine.backend`) on the same five surfaces.
:func:`absorb_executor` keeps old ``parallelism=N`` call sites working
for one release by mapping them onto the equivalent thread backend with
a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.engine.backend import (ExecutionBackend, backend_from_parallelism,
                                  resolve_backend)
from repro.errors import UsageError

__all__ = ["absorb_positional", "absorb_executor"]


def absorb_executor(surface: str,
                    executor: ExecutionBackend | str | None,
                    parallelism: int | None,
                    strategy: str = "auto") -> ExecutionBackend:
    """Resolve the ``executor=`` spec, honouring the deprecated
    ``parallelism=`` integer for one release.

    ``parallelism=N`` maps onto ``executor="threads:N"`` (serial for
    ``N <= 1``) with a :class:`DeprecationWarning`; passing both knobs
    is an error rather than a silent precedence rule.
    """
    if parallelism is not None:
        if executor is not None:
            raise UsageError(
                f"{surface}() got both executor= and the deprecated "
                "parallelism=; pass only executor=")
        warnings.warn(
            f"parallelism= is deprecated for {surface}(); pass "
            f"executor=\"threads:{parallelism}\" (or \"serial\" / "
            "\"processes:N\") — the spelling shared by Engine.query, "
            "Database.query, PreparedQuery.execute, QueryService.submit "
            "and the network Client.query",
            DeprecationWarning, stacklevel=3)
        return backend_from_parallelism(parallelism, strategy)
    return resolve_backend(executor, strategy)


def absorb_positional(surface: str, names: tuple[str, ...],
                      args: tuple, current: tuple) -> tuple:
    """Map deprecated positional option values onto their keywords.

    ``names`` is the pre-unification positional order, ``current`` the
    keyword values the call actually passed (signature defaults where
    it did not).  Positional values win over their keyword twins — the
    historical call sites this shim exists for never passed both.
    Returns the merged value tuple in ``names`` order.
    """
    if len(args) > len(names):
        raise UsageError(
            f"{surface}() takes at most {len(names)} deprecated positional "
            f"options ({', '.join(names)}), got {len(args)}")
    taken = ", ".join(names[:len(args)])
    warnings.warn(
        f"passing {taken} positionally to {surface}() is deprecated; "
        "these options are keyword-only — the spelling shared by "
        "Engine.query, Database.query, PreparedQuery.execute, "
        "QueryService.submit and the network Client.query",
        DeprecationWarning, stacklevel=3)
    return args + current[len(args):]
