"""One-release compatibility shims for the unified query-call API.

The PR 7 positional-options shim (``absorb_positional``) and the PR 9
``parallelism=`` → ``executor=`` shim (``absorb_executor``) both served
their one release and are gone: the five query surfaces
(``Engine.query``, ``Database.query``, ``PreparedQuery.execute``,
``QueryService.submit``, ``Client.query``) now reject positional
options and ``parallelism=`` with a plain :class:`TypeError`, exactly
like any other unknown argument — the contract test pins this.

What lives here now is the current one-release shim:
:func:`absorb_result_cache` maps the retired entry-count knob
``result_cache_size=N`` onto the byte-accounted ``result_cache=`` spec
(:mod:`repro.serve.cachepolicy`) with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.errors import UsageError

__all__ = ["absorb_result_cache"]

_SENTINEL = object()


def absorb_result_cache(surface: str, result_cache: Any,
                        result_cache_size: int | None) -> Any:
    """Honour the deprecated ``result_cache_size=`` knob for one release.

    ``result_cache_size=N`` maps onto ``result_cache={"max_entries": N}``
    — the old entry-count semantics under the new byte-accounted
    storage (the default byte budget still applies on top).  Passing
    both knobs is an error rather than a silent precedence rule.
    """
    if result_cache_size is None:
        return result_cache
    if result_cache is not None:
        raise UsageError(
            f"{surface}() got both result_cache= and the deprecated "
            "result_cache_size=; pass only result_cache=")
    warnings.warn(
        f"result_cache_size= is deprecated for {surface}(); pass "
        f"result_cache={{'max_entries': {result_cache_size}}} (or a "
        "byte budget like result_cache=\"16mb\", or 0 to disable) — "
        "see repro.serve.cachepolicy.resolve_result_cache",
        DeprecationWarning, stacklevel=3)
    if result_cache_size == 0:
        return 0
    return {"max_entries": result_cache_size}
