"""The BlossomTree FLWOR executor.

Execution pipeline (Figure 2's data flow, made concrete):

1. **Match** — every NoK pattern tree is evaluated with the merged
   sequential scan (one document pass per distinct document, Section
   4.2 technique 1), producing per-NoK NestedList sequences in document
   order.
2. **Join** — every inter-NoK edge is evaluated with the physical join
   the optimizer picked (pipelined merge, stack merge, or bounded
   nested loop), producing ancestor→matches adjacency.  Mandatory
   inter edges then run a bottom-up semi-join reduction: nodes without
   a partner are σ-filtered out of their NestedLists, cascading through
   the mandatory-edge rules.
3. **Bind** — tuples are enumerated in clause order.  A for-variable's
   candidates are found by walking its vertex chain from its anchor
   (the variable it dereferences, or the document root), moving through
   NestedList groups on local edges and through join adjacency on cut
   edges; a let-variable binds the whole candidate sequence.  This
   walk-based enumeration deduplicates by node, reproducing XPath's
   set semantics exactly.
4. **Finish** — the original where clause is re-verified per tuple
   (crossing-edge relationships like ``<<``/``deep-equal`` are checked
   here, which *is* the paper's nested-loop value join), then order by
   and return-clause construction run through the same
   :class:`~repro.engine.construct.DirectEvaluator` the oracle uses.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.errors import CompileError, UsageError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.pattern.artifact import PatternArtifacts, prepare_artifacts
from repro.pattern.blossom import MODE_MANDATORY, BlossomTree, BlossomVertex, TreeEdge
from repro.pattern.build import RESULT_VAR, build_blossom_tree
from repro.pattern.decompose import Decomposition, InterEdge, NoKTree
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.tree import Document
from repro.xquery.ast import FLWOR, ForClause, LetClause
from repro.algebra.env import Env
from repro.algebra.nested_list import NLEntry
from repro.algebra.operators import select
from repro.physical.nested_loop import (
    bounded_nested_loop_join,
    naive_nested_loop_join,
)
from repro.physical.nok_merge import merged_scan
from repro.physical.parallel_scan import parallel_merged_scan
from repro.physical.pipelined_join import caching_desc_join, pipelined_desc_join
from repro.physical.stack_join import stack_desc_join
from repro.physical.structural import JoinResult, left_projection
from repro.physical.twigstack import TwigStackOperator, twig_supported
from repro.engine.construct import DirectEvaluator
from repro.engine.result import Item

__all__ = ["FLWORExecutor", "JOIN_ALGORITHMS"]

#: Join-algorithm names the optimizer / harness may request per edge.
JOIN_ALGORITHMS = ("pipelined", "caching", "stack", "bnlj", "nl")

_JOIN_SELECTED = REGISTRY.counter(
    "repro_join_selected_total",
    "Per-edge physical join algorithm selections")


class FLWORExecutor:
    """Executes one FLWOR expression through the BlossomTree pipeline.

    Parameters
    ----------
    doc:
        Default document (``doc(uri)`` resolves to it unless
        ``resolve_doc`` is given).
    resolve_doc:
        Optional URI resolver for multi-document queries.
    join_algorithm:
        One of :data:`JOIN_ALGORITHMS`, or ``"auto"`` to let the
        executor pick per edge (pipelined on non-recursive documents,
        stack merge on recursive ones — the optimizer policy Section
        5.2's analysis suggests).
    counters:
        Shared work counters (created if omitted; exposed as
        ``self.counters``).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When given, each of
        the four pipeline phases opens a span, with one child span per
        NoK scan and per inter-NoK join; defaults to the no-op tracer.
    index:
        Optional shared :class:`~repro.xmlkit.index.TagIndex` over
        ``doc`` (serving snapshots cache one per version); passed to
        the TwigStack operator instead of letting it build its own.
    parallelism:
        Partition count for the match phase.  With ``parallelism > 1``
        the merged NoK scan runs partition-parallel
        (:func:`~repro.physical.parallel_scan.parallel_merged_scan`);
        the default of 1 keeps the serial scan.
    scan_executor:
        Executor for partition scan tasks (``None`` uses the shared
        process-wide pool; the query service passes its own).
    scan_backend:
        ``"threads"`` (default) or ``"processes"`` — which execution
        backend the parallel match phase runs on.  ``"processes"``
        replays the dispatch loop in worker processes over the
        mmap-shared arena (:mod:`repro.physical.process_scan`).
    process_executor:
        The owning stack's
        :class:`~repro.physical.process_scan.ProcessScanBackend`
        (``None`` uses the shared process-wide pool).
    doc_stats:
        Precomputed statistics of ``doc``, used to size partitions.
    """

    def __init__(self, doc: Document,
                 resolve_doc: Callable[[str], Document] | None = None,
                 join_algorithm: str = "auto",
                 counters: ScanCounters | None = None,
                 recursive_hint: bool | None = None,
                 tracer: Tracer | None = None,
                 *, index=None, parallelism: int = 1,
                 scan_executor=None, scan_backend: str = "threads",
                 process_executor=None, doc_stats=None) -> None:
        self.doc = doc
        self.resolve_doc = resolve_doc if resolve_doc is not None else (lambda uri: doc)
        if join_algorithm != "auto" and join_algorithm not in JOIN_ALGORITHMS:
            raise UsageError(f"unknown join algorithm {join_algorithm!r}")
        self.join_algorithm = join_algorithm
        self.counters = counters if counters is not None else ScanCounters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer is not NULL_TRACER
        self._recursive_hint = recursive_hint
        self.index = index
        self.parallelism = max(1, parallelism)
        self.scan_executor = scan_executor
        self.scan_backend = scan_backend
        self.process_executor = process_executor
        self._doc_stats = doc_stats
        self._direct = DirectEvaluator(doc, self.resolve_doc)
        #: (parent_vid, child_vid) -> JoinResult, filled during execute()
        self._adjacency: dict[tuple[int, int], JoinResult] = {}
        #: filled during execute(), for explain()
        self.plan_notes: list[str] = []
        #: Observed NoK selectivities of this run — one
        #: ``(pattern root tag, match count)`` pair per NoK scanned
        #: (or per twig output vertex).  The session feeds these into
        #: the runtime statistics store after every execution, where
        #: they become the observed cardinalities the re-coster uses.
        self.match_summary: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def execute(self, flwor: FLWOR,
                artifacts: PatternArtifacts | None = None,
                bindings: dict | None = None) -> list[Item]:
        """Run the full pipeline; raises CompileError for unsupported
        constructs (callers fall back to direct evaluation).

        ``artifacts`` replays a precomputed pattern compilation (tree +
        NoK decomposition + Dewey IDs) instead of rebuilding it — the
        prepared-query / plan-cache hot path.  ``bindings`` supplies
        values for the query's external ``$parameters``; they are merged
        under every tuple's own bindings for where re-verification,
        order by and return construction (query variables shadow
        externals, matching static scoping).
        """
        if artifacts is None:
            external = frozenset(bindings) if bindings else frozenset()
            tree = build_blossom_tree(flwor, external=external)
            # Dewey IDs are global (Theorem 2 precondition); prepare_
            # artifacts assigns them alongside the decomposition.
            artifacts = prepare_artifacts(tree)
        tree = artifacts.tree
        dec = artifacts.decomposition
        base = dict(bindings) if bindings else {}

        with self.tracer.span("match-phase") as span:
            matches = self._match_phase(dec)
            span.set(noks=len(dec.noks),
                     entries=sum(len(v) for v in matches.values()))
        with self.tracer.span("join-phase") as span:
            matches = self._join_phase(dec, matches)
            span.set(edges=len(dec.inter_edges))
        with self.tracer.span("bind-phase") as span:
            envs = self._bind_phase(flwor, tree, dec, matches)
            span.set(tuples=len(envs))

        # Finish: where re-verification, order by, return construction.
        with self.tracer.span("finish-phase") as span:
            surviving: list[dict] = []
            for env in envs:
                self.counters.comparisons += 1
                merged = {**base, **env.as_variables()} if base \
                    else env.as_variables()
                if self._direct.check_where(flwor.where, merged):
                    surviving.append(merged)
            surviving = self._direct.order_tuples(flwor.order_by, surviving)
            items: list[Item] = []
            for bindings in surviving:
                items.extend(self._direct.eval_query_expr(flwor.return_expr,
                                                          bindings))
            span.set(surviving=len(surviving), items=len(items))
        return items

    def execute_twigstack(self, flwor: FLWOR,
                          artifacts: PatternArtifacts | None = None,
                          ) -> list[Item]:
        """Evaluate a bare-path FLWOR holistically with TwigStack.

        Only applicable when the BlossomTree is a single twig and the
        query is the synthetic ``for $#result in path return $#result``
        wrapper (Table 3's TS column runs path queries).
        """
        tree = artifacts.tree if artifacts is not None \
            else build_blossom_tree(flwor)
        if not twig_supported(tree):
            raise CompileError("TwigStack requires a single //-twig pattern")
        if set(tree.var_vertex) != {RESULT_VAR} or flwor.where or flwor.order_by:
            raise CompileError("TwigStack strategy only runs bare path queries")
        with self.tracer.span("twigstack") as span:
            before = self.counters.snapshot()
            target = self._doc_for_root(tree.roots[0])
            operator = TwigStackOperator(
                tree, target,
                index=self.index if target is self.doc else None,
                counters=self.counters)
            output = tree.var_vertex[RESULT_VAR]
            nodes = list(operator.matching_nodes(output))
            self.match_summary.append((output.name, len(nodes)))
            span.set(matches=len(nodes),
                     nodes_scanned=self.counters.nodes_scanned
                     - before["nodes_scanned"],
                     comparisons=self.counters.comparisons
                     - before["comparisons"])
        return nodes

    # ------------------------------------------------------------------
    # Phase 1: NoK matching (merged scans, Section 4.2 technique 1).
    # ------------------------------------------------------------------

    def _match_phase(self, dec: Decomposition) -> dict[int, list[NLEntry]]:
        by_doc: dict[int, tuple[Document, list[NoKTree]]] = {}
        for nok in dec.noks:
            doc = self._doc_for_nok(dec, nok)
            by_doc.setdefault(id(doc), (doc, []))[1].append(nok)
        matches: dict[int, list[NLEntry]] = {}
        parallel = self.parallelism > 1
        for doc, noks in by_doc.values():
            self.plan_notes.append(
                f"{'partition-parallel' if parallel else 'merged'} scan: "
                f"{len(noks)} NoK(s) in one pass over "
                f"{len(doc.nodes)} nodes")
            with self.tracer.span("merged-scan", noks=len(noks),
                                  doc_nodes=len(doc.nodes),
                                  parallelism=self.parallelism) as scan_span:
                before_nodes = self.counters.nodes_scanned
                before_cmp = self.counters.comparisons
                per_nok: dict[int, ScanCounters] | None = (
                    {} if self._tracing else None)
                started = time.perf_counter_ns()
                if parallel:
                    result = parallel_merged_scan(
                        noks, doc, self.counters, per_nok,
                        parallelism=self.parallelism,
                        stats=self._doc_stats if doc is self.doc else None,
                        executor=self.scan_executor,
                        backend=self.scan_backend,
                        process_backend=self.process_executor,
                        tracer=self.tracer if self._tracing else None)
                else:
                    result = merged_scan(noks, doc, self.counters, per_nok)
                wall_ms = (time.perf_counter_ns() - started) / 1e6
                scan_nodes = self.counters.nodes_scanned - before_nodes
                scan_span.set(
                    nodes_scanned=scan_nodes,
                    comparisons=self.counters.comparisons - before_cmp)
                matches.update(result)
                if self._tracing:
                    self._trace_noks(noks, result, per_nok or {},
                                     scan_nodes, wall_ms)
        for nok_id, entries in matches.items():
            self.counters.intermediate_results += len(entries)
        self.match_summary.extend(
            (nok.root.name, len(matches.get(nok.nok_id, [])))
            for nok in dec.noks)
        return matches

    def _trace_noks(self, noks: list[NoKTree],
                    result: dict[int, list[NLEntry]],
                    per_nok: dict[int, ScanCounters],
                    scan_nodes: int, wall_ms: float) -> None:
        """One child span per NoK tree under the merged-scan span.

        The driving scan is shared across the NoKs (that is the point of
        merging), so each span reports the shared scan's node count and
        wall time with ``shared_scan=True``, plus the per-NoK work
        (comparisons, matches) attributed privately by ``merged_scan``.
        """
        for nok in noks:
            entries = result.get(nok.nok_id, [])
            private = per_nok.get(nok.nok_id)
            with self.tracer.span("nok-scan") as span:
                span.set(nok_id=nok.nok_id,
                         root_tag=nok.root.name,
                         matches=len(entries),
                         nodes_scanned=scan_nodes,
                         comparisons=private.comparisons if private else 0,
                         shared_scan=True,
                         wall_ms=round(wall_ms, 3))

    def _doc_for_nok(self, dec: Decomposition, nok: NoKTree) -> Document:
        return self._doc_for_root(dec.tree.pattern_root_of(nok.root))

    def _doc_for_root(self, root: BlossomVertex) -> Document:
        uri = getattr(root, "doc_uri", "")
        if uri == "":
            return self.doc
        return self.resolve_doc(uri)

    # ------------------------------------------------------------------
    # Phase 2: structural joins + bottom-up semi-join reduction.
    # ------------------------------------------------------------------

    def _join_phase(self, dec: Decomposition,
                    matches: dict[int, list[NLEntry]]) -> dict[int, list[NLEntry]]:
        self._adjacency = {}
        depth = _nok_depths(dec)
        # Deepest NoKs first, so every edge sees an already-reduced
        # right side and reductions cascade toward the roots.
        edges = sorted(dec.inter_edges, key=lambda e: depth[e.nok_to], reverse=True)
        for edge in edges:
            right = matches.get(edge.nok_to, [])
            left = matches.get(edge.nok_from, [])
            with self.tracer.span("inter-join",
                                  parent_vid=edge.parent.vid,
                                  child_vid=edge.child.vid,
                                  parent_tag=edge.parent.name,
                                  child_tag=edge.child.name,
                                  axis=edge.axis) as span:
                before_nodes = self.counters.nodes_scanned
                before_cmp = self.counters.comparisons
                result = self._run_join(dec, edge, left, right, span)
                span.set(left=len(left), right=len(right),
                         pairs=result.pair_count(),
                         nodes_scanned=self.counters.nodes_scanned
                         - before_nodes,
                         comparisons=self.counters.comparisons - before_cmp)
            self._adjacency[(edge.parent.vid, edge.child.vid)] = result
            if edge.mode == MODE_MANDATORY:
                adjacency = result.adjacency
                matches[edge.nok_from] = select(
                    left, edge.parent, lambda node: node.nid in adjacency)
        return matches

    def _run_join(self, dec: Decomposition, edge: InterEdge,
                  left: list[NLEntry], right: list[NLEntry],
                  span: Span | None = None) -> JoinResult:
        if edge.axis != "descendant":
            raise CompileError(f"inter-NoK axis {edge.axis!r} has no join "
                               "operator (navigational fallback required)")
        if not left or not right:
            if span is not None:
                span.set(algorithm="empty-input")
            return JoinResult(edge)

        # Vacuous join: everything is a descendant of the document node.
        if edge.parent.name == "#root":
            result = JoinResult(edge)
            doc_node = left[0].node
            assert doc_node is not None
            for entry in right:
                result.add(doc_node, entry)
            self.plan_notes.append(
                f"join V{edge.parent.vid}->V{edge.child.vid}: vacuous (document root)")
            if span is not None:
                span.set(algorithm="vacuous")
            return result

        algorithm = self._pick_algorithm(dec, edge)
        self.plan_notes.append(
            f"join V{edge.parent.vid}->V{edge.child.vid}: {algorithm}")
        _JOIN_SELECTED.inc(algorithm=algorithm)
        if span is not None:
            span.set(algorithm=algorithm)
        projection = left_projection(left, edge)
        if algorithm == "pipelined":
            return pipelined_desc_join(projection, right, edge, self.counters)
        if algorithm == "caching":
            return caching_desc_join(projection, right, edge, self.counters)
        if algorithm == "stack":
            return stack_desc_join(projection, right, edge, self.counters)
        inner_nok = dec.nok_of(edge.child)
        doc = self._doc_for_nok(dec, dec.noks[edge.nok_from])
        # The nested loops re-discover inner matches by scanning; the
        # canonical map reconciles them with the bottom-up-reduced right
        # entries so deeper mandatory joins stay enforced.
        canonical = {e.node.nid: e for e in right if e.node is not None}
        if algorithm == "bnlj":
            return bounded_nested_loop_join(projection, inner_nok, doc, edge,
                                            self.counters, canonical)
        assert algorithm == "nl"
        return naive_nested_loop_join(projection, inner_nok, doc, edge,
                                      self.counters, canonical)

    def _pick_algorithm(self, dec: Decomposition, edge: InterEdge) -> str:
        if self.join_algorithm != "auto":
            return self.join_algorithm
        recursive = self._recursive_hint
        if recursive is None:
            from repro.xmlkit.stats import compute_stats

            doc = self._doc_for_nok(dec, dec.noks[edge.nok_from])
            recursive = compute_stats(doc, with_size=False).recursive
            self._recursive_hint = recursive
        return "stack" if recursive else "pipelined"

    # ------------------------------------------------------------------
    # Phase 3: tuple enumeration (variable binding).
    # ------------------------------------------------------------------

    def _bind_phase(self, flwor: FLWOR, tree: BlossomTree, dec: Decomposition,
                    matches: dict[int, list[NLEntry]]) -> list[Env]:
        root_entries: dict[int, list[NLEntry]] = {}
        for nok in dec.root_noks():
            root_entries[nok.root.vid] = matches.get(nok.nok_id, [])

        envs: list[Env] = []
        self._enumerate(flwor, tree, root_entries, 0, Env(), envs)
        return envs

    def _enumerate(self, flwor: FLWOR, tree: BlossomTree,
                   root_entries: dict[int, list[NLEntry]], index: int,
                   env: Env, out: list[Env]) -> None:
        if index == len(flwor.clauses):
            out.append(env)
            return
        clause = flwor.clauses[index]
        candidates = self._candidates(tree, root_entries, clause.var, env)
        if isinstance(clause, ForClause):
            for entry in candidates:
                self._enumerate(flwor, tree, root_entries, index + 1,
                                env.bind_for(clause.var, entry), out)
        else:
            assert isinstance(clause, LetClause)
            self._enumerate(flwor, tree, root_entries, index + 1,
                            env.bind_let(clause.var, candidates), out)

    def _candidates(self, tree: BlossomTree,
                    root_entries: dict[int, list[NLEntry]], var: str,
                    env: Env) -> list[NLEntry]:
        """Walk the variable's vertex chain from its anchor, producing the
        document-ordered, deduplicated candidate entries."""
        vertex = tree.var_vertex[var]
        chain: list[TreeEdge] = []
        anchor = vertex
        while True:
            edge = anchor.parent_edge
            if edge is None:
                break
            chain.append(edge)
            anchor = edge.parent
            if anchor.variables or anchor.parent_edge is None:
                break
        chain.reverse()

        if anchor.variables:
            anchor_var = anchor.variables[0]
            frontier = list(env.anchors.get(anchor_var, []))
        else:
            frontier = list(root_entries.get(anchor.vid, []))

        for edge in chain:
            next_frontier: list[NLEntry] = []
            if getattr(edge, "cut", False):
                adjacency = self._adjacency.get((edge.parent.vid, edge.child.vid))
                for entry in frontier:
                    node = entry.node
                    if node is None or adjacency is None:
                        continue
                    next_frontier.extend(adjacency.partners(node))
            else:
                for entry in frontier:
                    for sub in entry.group_for(edge.child):
                        if sub is not None:
                            next_frontier.append(sub)
            frontier = next_frontier

        # Deduplicate by node and restore document order (descendant
        # hops can reach the same node through different ancestors).
        seen: set[int] = set()
        unique: list[NLEntry] = []
        for entry in frontier:
            node = entry.node
            if node is not None and node.nid not in seen:
                seen.add(node.nid)
                unique.append(entry)
        unique.sort(key=lambda e: e.node.nid)  # type: ignore[union-attr]
        return unique


def _nok_depths(dec: Decomposition) -> dict[int, int]:
    """Distance of each NoK from its root NoK in the inter-edge forest."""
    depth: dict[int, int] = {nok.nok_id: 0 for nok in dec.root_noks()}
    changed = True
    while changed:
        changed = False
        for edge in dec.inter_edges:
            if edge.nok_from in depth:
                want = depth[edge.nok_from] + 1
                if depth.get(edge.nok_to, -1) < want:
                    depth[edge.nok_to] = want
                    changed = True
    for nok in dec.noks:
        depth.setdefault(nok.nok_id, 0)
    return depth
