"""Query compilation: text → (query expression, FLWOR core, BlossomTree).

The compiler normalizes the three query shapes the public API accepts —
bare path expressions, FLWOR expressions, and element constructors
wrapping a FLWOR — into one :class:`CompiledQuery` that the session
executes.  Compilation of the BlossomTree may fail with
:class:`~repro.errors.CompileError` for constructs outside the
pattern-matching subset; the failure is *recorded*, not raised, so the
session can fall back to direct evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import verify_tree
from repro.errors import CompileError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pattern.blossom import BlossomTree
from repro.pattern.build import build_blossom_tree, path_as_flwor
from repro.xpath.ast import LocationPath, RootContext
from repro.xquery.ast import ElementConstructor, Enclosed, FLWOR, QueryExpr
from repro.xquery.parser import parse_query
from repro.xquery.semantics import free_variables

__all__ = ["CompiledQuery", "compile_query"]


@dataclass
class CompiledQuery:
    """A parsed query, its FLWOR core (if any), and its BlossomTree."""

    source: str
    query: QueryExpr                   # the full query expression
    flwor: FLWOR | None             # the FLWOR to optimize (None: static)
    is_bare_path: bool                 # query was a single path expression
    tree: BlossomTree | None        # None when compilation failed
    compile_error: str | None       # reason for fallback, if any
    #: External ``$parameters`` — variables the query references but never
    #: binds; execution requires a binding for each (prepared queries).
    parameters: frozenset[str] = frozenset()

    @property
    def optimizable(self) -> bool:
        return self.flwor is not None and self.tree is not None


def compile_query(text: str | QueryExpr,
                  tracer: Tracer | None = None,
                  verify: bool = True) -> CompiledQuery:
    """Parse and compile a query string (or pre-parsed expression).

    Free variables are detected and recorded as the query's external
    ``parameters`` — the BlossomTree builder routes conjuncts that
    mention them to the residual where clause, so the compiled plan has
    execution-time slots instead of baked-in values.

    ``tracer`` (optional) records a ``compile`` span covering parse and
    BlossomTree construction, with the outcome as attributes.

    ``verify=False`` skips validate-on-compile; the engine passes it
    when an identical (query, strategy, statistics) triple already
    verified clean this process — compilation is deterministic, so the
    rebuild produces structurally identical artifacts.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("compile") as span:
        source = text if isinstance(text, str) else str(text)
        query = parse_query(text) if isinstance(text, str) else text

        is_bare_path = isinstance(query, LocationPath)
        if is_bare_path:
            # A top-level path starting with '/' parses with a non-absolute
            # root (predicate convention); at query top level the context
            # item is the document node, so absolutizing is an identity.
            query = _absolutize(query)
            flwor: FLWOR | None = path_as_flwor(query)
            # The query to evaluate IS the synthetic wrapper.
            query = flwor
        else:
            flwor = _locate_single_flwor(query)

        parameters = free_variables(query)
        tree: BlossomTree | None = None
        error: str | None = None
        if flwor is not None:
            try:
                tree = build_blossom_tree(flwor, external=parameters)
            except CompileError as exc:
                error = str(exc)
        if tree is not None and verify:
            # Validate-on-compile: a malformed tree is an internal bug,
            # not a fallback condition — PlanInvariantError propagates.
            # Bare paths skip the AST pass: their FLWOR is synthesized
            # right here, so user-variable scoping (AST001/AST002)
            # cannot be violated.
            verify_report = verify_tree(
                tree, source=source,
                flwor=None if is_bare_path else flwor,
                external=parameters)
            span.set(verify_findings=len(verify_report.findings))
        span.set(bare_path=is_bare_path, optimizable=tree is not None)
        if parameters:
            span.set(parameters=",".join(sorted(parameters)))
        if error:
            span.set(compile_error=error)
    return CompiledQuery(source, query, flwor, is_bare_path, tree, error,
                         parameters)


def _absolutize(path: LocationPath) -> LocationPath:
    if isinstance(path.root, RootContext) and not path.root.absolute:
        return LocationPath(RootContext(absolute=True), path.steps)
    return path


def _locate_single_flwor(expr: QueryExpr) -> FLWOR | None:
    """Find exactly one FLWOR to optimize inside the query expression.

    Nested or multiple FLWORs are left to direct evaluation (returning
    ``None`` here means "static / fallback", not an error).
    """
    if isinstance(expr, FLWOR):
        return expr
    if isinstance(expr, ElementConstructor):
        found: FLWOR | None = None
        for item in expr.content:
            if isinstance(item, Enclosed):
                for sub in item.exprs:
                    inner = _locate_single_flwor(sub)
                    if inner is not None:
                        if found is not None:
                            return None
                        found = inner
            elif isinstance(item, ElementConstructor):
                inner = _locate_single_flwor(item)
                if inner is not None:
                    if found is not None:
                        return None
                    found = inner
        return found
    return None
