"""Exception hierarchy for the BlossomTree reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  More specific
subclasses identify the failing layer (XML parsing, query parsing,
compilation, execution), which keeps error handling explicit without
forcing callers to know internal module structure.

Parse- and compile-time errors carry the offending query text and
position when the raising layer knows them, so API users can render a
caret without re-threading context through every call site.

The hierarchy is also the **wire contract** of the network serving
layer (:mod:`repro.serve.server` / :mod:`repro.serve.client`): every
class maps 1:1 onto a stable string code in :data:`WIRE_CODES`.  The
server turns a raised error into an ``error`` frame via
:func:`wire_code`; the client reconstructs the same class via
:func:`error_for_code`, so ``except repro.QueryTimeoutError`` works
identically against an in-process service and a remote one.
"""

from __future__ import annotations

class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class XMLSyntaxError(ReproError):
    """Raised when the XML tokenizer or parser rejects its input.

    Carries the 1-based line and column of the offending position so that
    callers can point users at the exact spot in the document.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QuerySyntaxError(ReproError):
    """Raised when an XPath or FLWOR expression fails to parse."""

    def __init__(self, message: str, position: int = -1, query: str = ""):
        self.position = position
        self.query = query
        if position >= 0 and query:
            caret = " " * position + "^"
            message = f"{message}\n  {query}\n  {caret}"
        super().__init__(message)


class StaticError(ReproError):
    """Raised for static (compile-time) semantic errors.

    Examples: reference to an unbound variable, an ``order by`` clause with
    no enclosing binding, or a crossing edge between vertices that belong to
    no pattern tree.
    """

    def __init__(self, message: str, query: str = ""):
        self.query = query
        if query:
            message = f"{message}\n  in query: {query}"
        super().__init__(message)


class BindingError(StaticError):
    """Raised when a query's external ``$parameters`` and the bindings
    supplied at execution time do not line up (missing parameter, or a
    binding value outside the XPath value model)."""


class CompileError(ReproError):
    """Raised when a BlossomTree cannot be translated to a physical plan.

    ``query`` and ``position`` are filled in when the compiling layer
    knows them (the pattern builder itself sees only ASTs).
    """

    def __init__(self, message: str, query: str = "", position: int = -1):
        self.query = query
        self.position = position
        if query:
            message = f"{message}\n  in query: {query}"
        super().__init__(message)


class PlanInvariantError(ReproError):
    """Raised when the plan invariant analyzer rejects a compiled artifact.

    Carries the offending :class:`~repro.analysis.report.AnalysisReport`
    (as ``report``) so callers can inspect individual findings — rule
    IDs, locations, remediation hints — instead of parsing the message.
    A plan that trips this is *malformed*: executing it could silently
    violate the paper's ordering/duplicate guarantees, so the engine
    refuses to cache or run it.
    """

    def __init__(self, report: object = None, message: str = ""):
        self.report = report
        if not message:
            if report is not None and hasattr(report, "format"):
                message = "compiled plan failed invariant verification:\n" \
                    + report.format()
            else:
                message = "compiled plan failed invariant verification"
        super().__init__(message)

    @property
    def rule_ids(self) -> list[str]:
        """Distinct rule IDs that fired, when a report is attached."""
        if self.report is not None and hasattr(self.report, "rule_ids"):
            return self.report.rule_ids()
        return []


class UsageError(ReproError, ValueError):
    """Raised for invalid arguments to the public API (unknown strategy
    or join-algorithm names, bad cache capacity, ...).

    Also a :class:`ValueError`, because these are argument errors first
    and foremost — ``except ReproError`` and ``except ValueError`` both
    work at the boundary.
    """


class UpdateError(ReproError):
    """Raised for structurally invalid document-update requests."""


class ExecutionError(ReproError):
    """Raised when a physical operator fails at run time."""


class QueryTimeoutError(ExecutionError):
    """Raised when a query exceeds its ``timeout_ms`` deadline.

    Deadlines are enforced cooperatively: the physical operators check a
    :class:`~repro.xmlkit.storage.CancellationToken` at their scan-loop
    checkpoints, so a timed-out query stops within one checkpoint stride
    of the deadline rather than at an arbitrary preemption point.
    """

    def __init__(self, message: str = "query deadline exceeded",
                 timeout_ms: float | None = None):
        self.timeout_ms = timeout_ms
        if timeout_ms is not None:
            message = f"{message} (timeout_ms={timeout_ms:g})"
        super().__init__(message)


class QueryCancelledError(ExecutionError):
    """Raised when a query is cancelled via its cancellation token.

    Distinct from :class:`QueryTimeoutError` so callers can tell an
    explicit ``cancel()`` (service shutdown, client disconnect) apart
    from a deadline expiry.
    """

    def __init__(self, message: str = "query cancelled"):
        super().__init__(message)


class ServiceOverloadedError(ReproError):
    """Raised by :class:`~repro.serve.QueryService` admission control
    when the bounded request queue is full.

    Carries the queue depth observed at rejection time so callers can
    implement informed backoff.
    """

    def __init__(self, message: str = "service queue is full",
                 queue_depth: int | None = None):
        self.queue_depth = queue_depth
        if queue_depth is not None:
            message = f"{message} (queue_depth={queue_depth})"
        super().__init__(message)


class DNFError(ExecutionError):
    """Raised when an operator exceeds its work budget (the paper's "DNF").

    The experimental harness converts this into a ``DNF`` table entry, the
    same way the paper reports runs that did not finish within 15 minutes.
    """

    def __init__(self, message: str = "work budget exhausted", budget: int | None = None):
        self.budget = budget
        if budget is not None:
            message = f"{message} (budget={budget})"
        super().__init__(message)


class ProtocolError(ReproError):
    """Raised for violations of the network wire protocol.

    Covers both directions: a server rejecting a malformed, oversized
    or wrong-version frame, and a client receiving bytes it cannot
    decode.  Wire-level, not query-level — a well-formed frame whose
    *query* fails raises the query's own error class instead.
    """


#: Stable wire codes for the error hierarchy, most specific first.
#: The order matters: :func:`wire_code` walks this list and returns the
#: first entry the exception is an instance of, so subclasses must
#: precede their bases.  Codes are part of the v1 wire protocol —
#: never renumber or reuse them.
WIRE_CODES: tuple[tuple[str, type[ReproError]], ...] = (
    ("TIMEOUT", QueryTimeoutError),
    ("CANCELLED", QueryCancelledError),
    ("DNF", DNFError),
    ("EXECUTION", ExecutionError),
    ("BINDING", BindingError),
    ("STATIC", StaticError),
    ("XML_SYNTAX", XMLSyntaxError),
    ("QUERY_SYNTAX", QuerySyntaxError),
    ("COMPILE", CompileError),
    ("PLAN_INVARIANT", PlanInvariantError),
    ("OVERLOADED", ServiceOverloadedError),
    ("UPDATE", UpdateError),
    ("PROTOCOL", ProtocolError),
    ("USAGE", UsageError),
    ("INTERNAL", ReproError),
)

_CODE_TO_CLASS: dict[str, type[ReproError]] = {
    code: cls for code, cls in WIRE_CODES}


def wire_code(error: BaseException) -> str:
    """The stable wire code for an exception (``INTERNAL`` fallback).

    Any exception is accepted: non-``ReproError`` failures inside the
    server serialize as ``INTERNAL`` so a crash in one request never
    leaks a raw traceback type onto the wire.
    """
    for code, cls in WIRE_CODES:
        if isinstance(error, cls):
            return code
    return "INTERNAL"


def error_for_code(code: str, message: str) -> ReproError:
    """Reconstruct the error class a wire code stands for.

    Unknown codes (a newer server speaking to an older client) degrade
    to the root :class:`ReproError` rather than failing the decode.
    """
    cls = _CODE_TO_CLASS.get(code, ReproError)
    if cls is PlanInvariantError:
        return PlanInvariantError(message=message)
    return cls(message)
