"""Command-line entry point: ``python -m repro.bench <table>``.

Regenerates the paper's tables from the command line::

    python -m repro.bench table1 [--scale S]
    python -m repro.bench table2 [--scale S]
    python -m repro.bench table3 [--scale S] [--repeat N] [--datasets d1,d2]

The pytest-benchmark suites under ``benchmarks/`` drive the same
harness per cell; this entry point prints whole tables at once.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import table1_rows, table2_rows, table3_rows
from repro.bench.reporting import format_dict_table, format_table3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument("table", choices=["table1", "table2", "table3"])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="table3: wall-clock repetitions per cell")
    parser.add_argument("--datasets", type=str, default="",
                        help="table3: comma-separated subset, e.g. d1,d4")
    parser.add_argument("--counters", action="store_true",
                        help="table3: include total nodes-scanned per row")
    args = parser.parse_args(argv)

    if args.table == "table1":
        print(format_dict_table(table1_rows(args.scale)))
    elif args.table == "table2":
        print(format_dict_table(table2_rows(args.scale)))
    else:
        names = [d for d in args.datasets.split(",") if d] or None
        rows = table3_rows(args.scale, repeat=args.repeat, datasets=names)
        print(format_table3(rows, show_counters=args.counters))
    return 0


if __name__ == "__main__":
    sys.exit(main())
