"""Benchmark harness reproducing the paper's evaluation tables."""

from repro.bench.harness import (
    SYSTEMS,
    CellResult,
    Table3Row,
    prepare_dataset,
    run_cell,
    systems_for,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.bench.reporting import format_dict_table, format_table3

__all__ = [
    "SYSTEMS",
    "CellResult",
    "Table3Row",
    "format_dict_table",
    "format_table3",
    "prepare_dataset",
    "run_cell",
    "systems_for",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
