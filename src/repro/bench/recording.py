"""In-process recording of benchmark runs for machine-readable export.

The harness appends one record per :func:`~repro.bench.harness.run_cell`
execution; the benchmark suite's ``pytest_sessionfinish`` hook dumps
everything to ``BENCH_PR1.json`` so a CI run leaves behind a queryable
artifact (query text, strategy, wall time, counters snapshot) instead
of only rendered tables.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["RECORDS", "record_run", "write_json", "clear"]

#: All records accumulated in this process, in execution order.
RECORDS: list[dict[str, object]] = []


def record_run(query: str, strategy: str, wall_ms: float | None,
               counters: dict[str, int], **extra: object) -> dict[str, object]:
    """Append one benchmark measurement.

    ``wall_ms`` is ``None`` for runs that did not finish (DNF).  Extra
    keyword fields (dataset name, system label, result count, ...) are
    stored verbatim.
    """
    record: dict[str, object] = {
        "query": query,
        "strategy": strategy,
        "wall_ms": wall_ms,
        "counters": dict(counters),
    }
    record.update(extra)
    RECORDS.append(record)
    return record


def write_json(path: str | Path,
               meta: dict[str, object] | None = None) -> Path:
    """Write all accumulated records (plus optional metadata) as JSON."""
    path = Path(path)
    payload = {"meta": meta or {}, "runs": RECORDS}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def clear() -> None:
    """Drop all accumulated records (tests use this for isolation)."""
    RECORDS.clear()
