"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.harness import Table3Row

__all__ = ["format_dict_table", "format_table3"]


def format_dict_table(rows: Sequence[dict[str, object]]) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines = [
        "  ".join(str(c).ljust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def format_table3(rows: Sequence[Table3Row], show_counters: bool = False) -> str:
    """Render Table-3 rows in the paper's layout (file / sys / Q1..Q6)."""
    qids = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
    out: list[dict[str, object]] = []
    for row in rows:
        line: dict[str, object] = {"file": row.dataset, "sys.": row.system}
        for qid in qids:
            cell = row.cells.get(qid)
            line[qid] = cell.display() if cell else ""
        if show_counters:
            scanned = sum((c.counters.get("nodes_scanned", 0)
                           for c in row.cells.values()), 0)
            line["nodes scanned"] = scanned
        out.append(line)
    return format_dict_table(out)
