"""Benchmark harness: regenerates the paper's experimental tables.

The paper's evaluation (Section 5) compares, per dataset and query
category, the physical strategies:

* **XH** — X-Hive/DB 6.0, simulated by the navigational engine
  (:mod:`repro.baseline.xhive`);
* **TS** — TwigStack over tag-name indexes;
* **NL** — the (bounded) nested-loop join;
* **PL** — the pipelined merge join.

Exactly as in Table 3, recursive datasets (d1, d4) run XH/TS/NL (the
pipelined join is order-unsound there, Example 5) and non-recursive
datasets (d2, d3, d5) run XH/TS/PL (naive NL lost on every
non-recursive query and was dropped by the authors).

Runs that exceed the per-run work budget report ``DNF``, mirroring the
paper's 15-minute timeouts with a deterministic, machine-independent
criterion (nodes scanned relative to document size).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import DNFError
from repro.xmlkit.stats import compute_stats
from repro.xmlkit.storage import ScanCounters
from repro.bench.recording import record_run
from repro.engine.session import Engine
from repro.datagen.workload import DATASETS, DatasetSpec, measure_selectivity

__all__ = [
    "SYSTEMS",
    "CellResult",
    "Table3Row",
    "prepare_dataset",
    "run_cell",
    "systems_for",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]

#: system label -> engine strategy
SYSTEMS = {
    "XH": "xhive",
    "TS": "twigstack",
    "NL": "nl",
    "PL": "pipelined",
}

#: Work budget per run, as a multiple of the document's node count —
#: i.e. "how many document scans' worth of work before we call it DNF".
#: The paper's 15-minute timeout corresponds to a low-hundreds scan
#: budget at its scale; 120 reproduces which cells DNF (the nested loop
#: re-scans the input once per outer match and blows through it, while
#: XH's worst navigational query stays under ~10 scans).
DEFAULT_BUDGET_FACTOR = 120


@dataclass
class CellResult:
    """One (dataset, query, system) measurement."""

    system: str
    seconds: float | None          # None => DNF
    counters: dict[str, int] = field(default_factory=dict)
    n_results: int = 0

    @property
    def dnf(self) -> bool:
        return self.seconds is None

    def display(self) -> str:
        if self.dnf:
            return "DNF"
        return f"{self.seconds:.3f}"


@dataclass
class Table3Row:
    dataset: str
    system: str
    cells: dict[str, CellResult]      # qid -> cell


class PreparedDataset:
    """A generated document with its engine and statistics, reused
    across the cells of one table row."""

    def __init__(self, spec: DatasetSpec, scale: float) -> None:
        self.spec = spec
        self.doc = spec.generate(scale=scale)
        self.stats = compute_stats(self.doc, with_size=False)
        self.engine = Engine(self.doc)
        # Build the tag index up front: the paper gives TwigStack its
        # indexes for free and measures join time only.
        self.engine.index.build()


_CACHE: dict[tuple[str, float], PreparedDataset] = {}


def prepare_dataset(name: str, scale: float) -> PreparedDataset:
    """Generate (and memoize) a dataset at a given scale."""
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = PreparedDataset(DATASETS[name], scale)
    return _CACHE[key]


def systems_for(name: str) -> list[str]:
    """The paper's system selection per dataset (Table 3)."""
    if DATASETS[name].recursive:
        return ["XH", "TS", "NL"]
    return ["XH", "TS", "PL"]


def run_cell(prepared: PreparedDataset, query: str, system: str,
             budget_factor: int = DEFAULT_BUDGET_FACTOR,
             repeat: int = 1) -> CellResult:
    """Run one query under one system, with DNF budgeting.

    ``repeat`` > 1 averages wall-clock time over several executions
    (the paper averages three); counters come from the last run.
    """
    strategy = SYSTEMS[system]
    budget = budget_factor * len(prepared.doc.nodes)
    counters = ScanCounters()
    total = 0.0
    n_results = 0
    for _ in range(repeat):
        counters = ScanCounters()
        started = time.perf_counter()
        try:
            result = prepared.engine.query(query, strategy=strategy,
                                           counters=counters,
                                           work_budget=budget)
        except DNFError:
            record_run(query, strategy, None, counters.snapshot(),
                       dataset=prepared.spec.name, system=system, dnf=True)
            return CellResult(system, None, counters.snapshot())
        total += time.perf_counter() - started
        n_results = len(result)
    wall_ms = total / repeat * 1000.0
    record_run(query, strategy, wall_ms, counters.snapshot(),
               dataset=prepared.spec.name, system=system, dnf=False,
               n_results=n_results)
    return CellResult(system, total / repeat, counters.snapshot(), n_results)


# ----------------------------------------------------------------------
# Tables.
# ----------------------------------------------------------------------

def table1_rows(scale: float = 1.0) -> list[dict[str, object]]:
    """Reproduce Table 1: per-dataset statistics (at our scale)."""
    rows = []
    for name, spec in DATASETS.items():
        doc = prepare_dataset(name, scale).doc
        stats = compute_stats(doc, with_size=True)
        row = stats.table1_row(name)
        row["origin"] = spec.origin
        rows.append(row)
    return rows


def table2_rows(scale: float = 1.0) -> list[dict[str, object]]:
    """Reproduce Table 2: per-query measured selectivity vs category."""
    rows = []
    for name, spec in DATASETS.items():
        prepared = prepare_dataset(name, scale)
        n_elements = prepared.stats.n_elements
        for query in spec.queries:
            selectivity = measure_selectivity(prepared.doc, query.text, n_elements)
            rows.append({
                "data set": name,
                "query": query.qid,
                "category": query.category or "-",
                "path": query.text,
                "selectivity": f"{selectivity * 100:.2f}%",
            })
    return rows


def table3_rows(scale: float = 1.0, repeat: int = 1,
                budget_factor: int = DEFAULT_BUDGET_FACTOR,
                datasets: list[str] | None = None) -> list[Table3Row]:
    """Reproduce Table 3: running time per dataset × system × query."""
    rows: list[Table3Row] = []
    for name in (datasets or list(DATASETS)):
        prepared = prepare_dataset(name, scale)
        for system in systems_for(name):
            cells: dict[str, CellResult] = {}
            for query in DATASETS[name].queries:
                cells[query.qid] = run_cell(prepared, query.text, system,
                                            budget_factor, repeat)
            rows.append(Table3Row(name, system, cells))
    return rows
