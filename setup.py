"""Setuptools shim for environments whose pip needs the legacy editable path."""
from setuptools import setup

setup()
