"""Integration tests for the engine: executor, session, strategies."""

import pytest

from repro.errors import CompileError, DNFError
from repro.engine import Engine, compile_query
from repro.xmlkit.storage import ScanCounters

ALL_BLOSSOM = ["pipelined", "caching", "stack", "bnlj", "nl"]


@pytest.fixture
def engine(small_bib):
    return Engine(small_bib)


class TestBarePaths:
    PATHS = [
        "//book/title",
        "//book//last",
        "//book[author]//title",
        "//book[author][price]/title",
        '//book[@year = "2000"]//last',
        '//book[author/last = "Stevens"]/title',
        "/bib/book/price",
        "//author//last",
    ]

    @pytest.mark.parametrize("path", PATHS)
    def test_all_strategies_match_naive(self, engine, path):
        reference = engine.query(path, strategy="naive").serialize()
        for strategy in ALL_BLOSSOM + ["twigstack", "xhive", "auto"]:
            if strategy == "twigstack":
                try:
                    got = engine.query(path, strategy=strategy)
                except CompileError:
                    continue
            else:
                got = engine.query(path, strategy=strategy)
            assert got.serialize() == reference, strategy

    def test_results_are_input_nodes(self, engine, small_bib):
        result = engine.query("//book")
        assert all(n.doc is small_bib for n in result.nodes())

    def test_positional_query_falls_back(self, engine):
        result = engine.query("//book[2]/title")
        assert result.string_values() == ["Data on the Web"]
        assert "naive" in engine.last_plan

    def test_count_expression(self, engine):
        result = engine.query("count(//author)")
        assert result.items == [3.0]


class TestFLWOR:
    def test_basic_for(self, engine):
        result = engine.query(
            "for $b in //book return $b/title", strategy="pipelined")
        assert len(result) == 3

    def test_let_binds_sequence(self, engine):
        result = engine.query(
            "for $b in //book let $a := $b/author "
            "return <n>{ count($a) }</n>", strategy="pipelined")
        assert [n.string_value() for n in result.nodes()] == ["1", "2", "0"]

    def test_where_with_value_comparison(self, engine):
        result = engine.query(
            "for $b in //book where $b/price > 30 return $b/title",
            strategy="pipelined")
        assert result.string_values() == ["TCP/IP Illustrated", "Data on the Web"]

    def test_where_on_attribute(self, engine):
        result = engine.query(
            'for $b in //book where $b/@year = "2000" return $b/title',
            strategy="pipelined")
        assert result.string_values() == ["Data on the Web"]

    def test_cartesian_with_order_comparison(self, engine):
        result = engine.query(
            "for $a in //book, $b in //book where $a << $b "
            "return <p>{ $a/@year }</p>", strategy="pipelined")
        assert len(result) == 3  # (b1,b2) (b1,b3) (b2,b3)

    def test_order_by(self, engine):
        result = engine.query(
            "for $b in //book order by $b/title return $b/title",
            strategy="pipelined")
        titles = result.string_values()
        assert titles == sorted(titles)

    def test_order_by_descending_numeric(self, engine):
        result = engine.query(
            "for $b in //book order by $b/price descending return $b/price",
            strategy="pipelined")
        prices = [float(v) for v in result.string_values()]
        assert prices == sorted(prices, reverse=True)

    def test_nested_variable_anchor(self, engine):
        result = engine.query(
            "for $b in //book, $a in $b/author, $l in $a/last "
            "return $l", strategy="pipelined")
        assert result.string_values() == ["Stevens", "Abiteboul", "Buneman"]

    def test_descendant_from_variable(self, engine):
        result = engine.query(
            "for $b in //book, $l in $b//last return $l",
            strategy="pipelined")
        assert len(result) == 3

    def test_let_from_let(self, engine):
        result = engine.query(
            "let $books := //book let $authors := $books/author "
            "return count($authors)", strategy="pipelined")
        assert result.items == [3.0]

    def test_for_over_let(self, engine):
        result = engine.query(
            "let $books := //book for $t in $books/title return $t",
            strategy="pipelined")
        assert len(result) == 3

    def test_tuple_order_is_nested_loop_order(self, engine):
        result = engine.query(
            "for $a in //book/title, $b in //book/price "
            "return <p>{ $a }{ $b }</p>", strategy="pipelined")
        assert len(result) == 9
        first = result.nodes()[0]
        assert "TCP/IP" in first.string_value()

    def test_constructor_wrapper(self, engine):
        result = engine.query(
            "<all>{ for $t in //title return $t }</all>", strategy="pipelined")
        assert len(result) == 1
        assert result.nodes()[0].tag == "all"
        assert len(result.nodes()[0].children) == 3

    def test_strategies_agree_on_flwor(self, engine):
        query = ("for $b in //book, $a in $b/author "
                 "where $b/price > 30 return <r>{ $a/last }</r>")
        reference = engine.query(query, strategy="naive").serialize()
        for strategy in ALL_BLOSSOM + ["xhive", "auto"]:
            assert engine.query(query, strategy=strategy).serialize() == \
                reference, strategy


class TestSessionMachinery:
    def test_unknown_strategy(self, engine):
        with pytest.raises(ValueError):
            engine.query("//book", strategy="quantum")

    def test_twigstack_rejects_flwor_with_where(self, engine):
        with pytest.raises(CompileError):
            engine.query("for $a in //book, $b in //book "
                         "where $a << $b return $a", strategy="twigstack")

    def test_explain_mentions_strategy_and_tree(self, engine):
        text = engine.explain("//book[author]//last")
        assert "strategy:" in text
        assert "BlossomTree" in text
        assert "NoK" in text

    def test_explain_fallback_reason(self, engine):
        text = engine.explain("//book[2]")
        assert "fallback reason" in text

    def test_work_budget_dnf(self, engine):
        with pytest.raises(DNFError):
            engine.query("//book//last", strategy="pipelined", work_budget=3)

    def test_counters_populated(self, engine, small_bib):
        counters = ScanCounters()
        engine.query("//book//last", strategy="pipelined", counters=counters)
        assert counters.nodes_scanned == len(small_bib.nodes)
        assert counters.scans_started == 1

    def test_auto_picks_pipelined_on_flat(self, engine):
        engine.query("for $b in //book return $b/title")
        assert "pipelined" in engine.last_plan

    def test_auto_picks_stack_on_recursive(self, recursive_doc):
        engine = Engine(recursive_doc)
        engine.query("for $s in //section, $t in $s//title return $t")
        assert "stack" in engine.last_plan

    def test_auto_picks_twigstack_on_recursive_path(self, recursive_doc):
        engine = Engine(recursive_doc)
        result = engine.query("//section//title")
        assert "twigstack" in engine.last_plan
        assert len(result) == 4

    def test_multi_document_join(self, small_bib, recursive_doc):
        engine = Engine(small_bib, documents={"sections.xml": recursive_doc})
        result = engine.query(
            'for $b in doc("bib.xml")//book, '
            '$s in doc("sections.xml")//section '
            'return <p/>', strategy="stack")
        assert len(result) == 3 * 4

    def test_compile_query_classification(self):
        compiled = compile_query("//a//b")
        assert compiled.is_bare_path and compiled.optimizable
        compiled = compile_query("count(//a)")
        assert compiled.flwor is None
        compiled = compile_query("for $a in //x[1] return $a")
        assert compiled.compile_error is not None


class TestStatic:
    def test_static_constructor(self, engine):
        result = engine.query("<out><fixed/></out>")
        assert result.serialize() == "<out><fixed/></out>"

    def test_sequence_query(self, engine):
        result = engine.query("(//title, //price)")
        assert len(result) == 6
