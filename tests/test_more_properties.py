"""Additional property-based suites: updates, streaming, correlated FLWOR."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.engine import Engine
from repro.pattern import build_from_path, decompose
from repro.physical import NoKMatcher
from repro.physical.streaming import StreamingNoKMatcher
from repro.xmlkit import parse, serialize
from repro.xmlkit.sax import parse_string
from repro.xmlkit.update import DocumentUpdater
from repro.xpath import parse_xpath

from tests.test_property_based import COMMON_SETTINGS, TAGS, xml_documents


def _chain_paths():
    return st.lists(st.sampled_from(TAGS), min_size=1, max_size=3) \
        .map(lambda tags: "//" + "/".join(tags))


class TestStreamingEquivalence:
    @COMMON_SETTINGS
    @given(doc=xml_documents(), path=_chain_paths())
    def test_stream_count_matches_tree_matcher(self, doc, path):
        tree = build_from_path(parse_xpath(path))
        dec = decompose(tree)
        [nok] = [n for n in dec.noks if n.root.name != "#root"]
        tree_matches = len(NoKMatcher(nok, doc).matches())
        handler = StreamingNoKMatcher(nok)
        parse_string(serialize(doc.root), handler)
        assert handler.count == tree_matches


class TestUpdateInvariants:
    @COMMON_SETTINGS
    @given(doc=xml_documents(), victim=st.integers(0, 30),
           tag=st.sampled_from(TAGS))
    def test_labels_valid_after_random_delete_and_insert(self, doc, victim, tag):
        updater = DocumentUpdater(doc)
        elements = [n for n in doc.elements() if n is not doc.root]
        if elements:
            updater.delete_subtree(elements[victim % len(elements)])
        updater.insert_subtree(doc.root, parse(f"<{tag}/>").root)

        # Full structural invariant sweep.
        assert [n.nid for n in doc.nodes] == list(range(len(doc.nodes)))
        for node in doc.nodes:
            for child in node.children:
                assert child.parent is node
                assert node.start < child.start < child.end < node.end
                assert child.level == node.level + 1

    @COMMON_SETTINGS
    @given(doc=xml_documents(), tag=st.sampled_from(TAGS))
    def test_queries_agree_after_update(self, doc, tag):
        updater = DocumentUpdater(doc)
        updater.insert_subtree(doc.root, parse(f"<{tag}><a/></{tag}>").root)
        engine = Engine(doc)
        query = f"//{tag}/a"
        reference = [n.nid for n in engine.query(query, strategy="naive").nodes()]
        for strategy in ("stack", "bnlj", "twigstack"):
            got = [n.nid for n in engine.query(query, strategy=strategy).nodes()]
            assert got == reference, strategy


class TestCorrelatedFLWOR:
    @COMMON_SETTINGS
    @given(doc=xml_documents(), t1=st.sampled_from(TAGS),
           t2=st.sampled_from(TAGS))
    def test_node_order_correlation(self, doc, t1, t2):
        engine = Engine(doc)
        query = (f"for $x in //{t1}, $y in //{t2} "
                 "where $x << $y return <p/>")
        reference = len(engine.query(query, strategy="naive"))
        for strategy in ("stack", "bnlj", "cost"):
            assert len(engine.query(query, strategy=strategy)) == reference, \
                strategy

    @COMMON_SETTINGS
    @given(doc=xml_documents(), t1=st.sampled_from(TAGS))
    def test_deep_equal_correlation(self, doc, t1):
        engine = Engine(doc)
        query = (f"for $x in //{t1}, $y in //{t1} "
                 "where $x << $y and deep-equal($x/a, $y/a) "
                 "return <p/>")
        reference = engine.query(query, strategy="naive").serialize()
        assert engine.query(query, strategy="stack").serialize() == reference

    @COMMON_SETTINGS
    @given(doc=xml_documents(), t1=st.sampled_from(TAGS),
           t2=st.sampled_from(TAGS))
    def test_let_then_for_correlation(self, doc, t1, t2):
        engine = Engine(doc)
        query = (f"let $xs := //{t1} for $y in $xs/{t2} "
                 "return $y")
        reference = [n.nid for n in engine.query(query, strategy="naive").nodes()]
        for strategy in ("stack", "caching"):
            got = [n.nid for n in engine.query(query, strategy=strategy).nodes()]
            assert got == reference, strategy
