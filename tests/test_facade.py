"""The public facade: ``repro.connect``, ``Database`` lifecycle and the
unified ``strategy``/``params``/``timeout_ms`` keyword surface."""

import inspect

import pytest

import repro
from repro.engine.database import Database
from repro.engine.session import Engine
from repro.errors import UsageError
from repro.xmlkit.parser import parse

LIBRARY = """
<library>
  <shelf genre="systems">
    <book id="b1"><author>Gray</author><title>Transaction</title></book>
    <book id="b2"><author>Codd</author><title>Relational</title></book>
  </shelf>
  <shelf genre="theory">
    <book id="b3"><title>Automata</title></book>
  </shelf>
</library>
"""


class TestConnect:
    def test_xml_text(self):
        with repro.connect(LIBRARY) as db:
            assert len(db.query("//book/title")) == 3

    def test_document_instance(self):
        doc = parse(LIBRARY)
        with repro.connect(doc) as db:
            assert db.doc is doc
            assert len(db.query("//book")) == 3

    def test_xml_file_path(self, tmp_path):
        path = tmp_path / "library.xml"
        path.write_text(LIBRARY, encoding="utf-8")
        for source in (path, str(path)):
            with repro.connect(source) as db:
                assert len(db.query("//shelf")) == 2

    def test_binary_file_path(self, tmp_path):
        path = tmp_path / "library.btx"
        Database.from_xml(LIBRARY).save(path)
        with repro.connect(str(path)) as db:
            assert len(db.query("//book[author]")) == 2

    def test_binary_magic_is_sniffed_not_suffixed(self, tmp_path):
        # Extension is irrelevant; only the magic bytes decide.
        path = tmp_path / "library.xml"
        Database.from_xml(LIBRARY).save(path)
        with repro.connect(path) as db:
            assert len(db.query("//book")) == 3

    def test_missing_file_is_a_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="no such file"):
            repro.connect(str(tmp_path / "nope.xml"))

    def test_bad_type_is_a_usage_error(self):
        with pytest.raises(UsageError, match="expected XML text"):
            repro.connect(42)

    def test_slow_query_log_knob(self):
        with repro.connect(LIBRARY, slow_query_ms=10_000.0) as db:
            assert db.slow_log is not None
            db.query("//book/title")
            assert db.slow_log.entries == []


class TestDatabaseLifecycle:
    def test_context_manager_closes(self):
        db = repro.connect(LIBRARY)
        with db:
            pass
        with pytest.raises(UsageError, match="closed"):
            db.serve()

    def test_close_is_idempotent(self):
        db = repro.connect(LIBRARY)
        db.close()
        db.close()
        # Plain queries still work on the in-process engine.
        assert len(db.query("//book")) == 3

    def test_serve_returns_same_instance_while_running(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=2)
            assert db.serve(workers=8) is service

    def test_serve_roundtrip(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=2)
            served = service.query("//book/title")
            assert served.serialize() == db.query("//book/title").serialize()

    def test_in_place_updates_refused_while_serving(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=1)
            with pytest.raises(UsageError, match="query service"):
                db.updater()
            service.close()
            db.updater()  # allowed again once the service stops


def _five_surfaces():
    from repro.engine.prepared import PreparedQuery
    from repro.serve.client import Client
    from repro.serve.service import QueryService

    return [
        (Engine, "query"),
        (Database, "query"),
        (PreparedQuery, "execute"),
        (QueryService, "submit"),
        (Client, "query"),
    ]


class TestUnifiedKeywords:
    """One spelling everywhere: the contract test pinning the redesigned
    v1 call surface.  ``strategy`` / ``params`` / ``timeout_ms`` /
    ``executor`` must be spelled identically — and be keyword-only —
    on all five query surfaces: ``Engine.query``, ``Database.query``,
    ``PreparedQuery.execute``, ``QueryService.submit`` and the network
    ``Client.query``.  The one-release shims are gone: positional
    options and ``parallelism=`` now raise a plain :class:`TypeError`
    on every surface."""

    UNIFIED = ("params", "timeout_ms", "executor")

    @pytest.mark.parametrize("owner, method",
                             _five_surfaces(),
                             ids=[f"{o.__name__}.{m}"
                                  for o, m in _five_surfaces()])
    def test_unified_kwargs_are_keyword_only_everywhere(self, owner, method):
        sig = inspect.signature(getattr(owner, method))
        # PreparedQuery pins strategy at prepare() time; every other
        # surface takes it per call, spelled identically.
        wanted = self.UNIFIED if method == "execute" \
            else self.UNIFIED + ("strategy",)
        where = f"{owner.__name__}.{method}"
        for name in wanted:
            assert name in sig.parameters, f"{where} is missing {name}"
            assert sig.parameters[name].kind is inspect.Parameter.KEYWORD_ONLY, \
                f"{where}({name}=...) must be keyword-only"
        # The PR 9 parallelism= shim completed its deprecation cycle.
        assert "parallelism" not in sig.parameters, \
            f"{where} still accepts the removed parallelism= kwarg"
        # No *args escape hatch either: stray positionals must be a
        # TypeError, not silently absorbed.
        assert not any(
            p.kind is inspect.Parameter.VAR_POSITIONAL
            for p in sig.parameters.values()), \
            f"{where} still absorbs positional options"

    @pytest.mark.parametrize("owner, method", [
        (Database, "explain_analyze"), (Engine, "explain_analyze")])
    def test_diagnostic_surfaces_accept_the_unified_kwargs(self, owner,
                                                           method):
        sig = inspect.signature(getattr(owner, method))
        for name in ("strategy", "params", "timeout_ms"):
            assert name in sig.parameters, f"{owner.__name__}.{method}"

    def test_params_flow_through_database(self):
        with repro.connect(LIBRARY) as db:
            result = db.query("//book[author = $who]/title",
                              params={"who": "Gray"})
            assert result.string_values() == ["Transaction"]

    def test_prepared_execute_params(self):
        with repro.connect(LIBRARY) as db:
            prepared = db.prepare("//book[author = $who]/title")
            assert len(prepared.execute(params={"who": "Codd"})) == 1

    def test_bindings_spelling_is_removed(self):
        # The PR-4 ``bindings=`` alias completed its deprecation cycle;
        # ``params=`` is the only spelling now (see README).
        with repro.connect(LIBRARY) as db:
            prepared = db.prepare("//book[author = $who]/title")
            with pytest.raises(TypeError, match="bindings"):
                prepared.execute(bindings={"who": "Gray"})

    def test_positional_options_are_a_type_error(self):
        # The PR 7 positional-absorption shim completed its deprecation
        # cycle: options are strictly keyword-only now.
        with repro.connect(LIBRARY) as db:
            with pytest.raises(TypeError):
                db.query("//book/title", "naive")
            prepared = db.prepare("//book[author = $who]/title")
            with pytest.raises(TypeError):
                prepared.execute({"who": "Gray"})

    def test_parallelism_kwarg_is_a_type_error(self):
        # The PR 9 parallelism= → executor= shim is gone too.
        with repro.connect(LIBRARY) as db:
            with pytest.raises(TypeError, match="parallelism"):
                db.query("//book", parallelism=4)
            with pytest.raises(TypeError, match="parallelism"):
                db.prepare("//book", parallelism=4)
            service = db.serve(workers=1)
            with pytest.raises(TypeError, match="parallelism"):
                service.submit("//book", parallelism=4)
