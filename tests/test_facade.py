"""The public facade: ``repro.connect``, ``Database`` lifecycle and the
unified ``strategy``/``params``/``timeout_ms`` keyword surface."""

import inspect

import pytest

import repro
from repro.engine.database import Database
from repro.engine.session import Engine
from repro.errors import BindingError, UsageError
from repro.xmlkit.parser import parse

LIBRARY = """
<library>
  <shelf genre="systems">
    <book id="b1"><author>Gray</author><title>Transaction</title></book>
    <book id="b2"><author>Codd</author><title>Relational</title></book>
  </shelf>
  <shelf genre="theory">
    <book id="b3"><title>Automata</title></book>
  </shelf>
</library>
"""


class TestConnect:
    def test_xml_text(self):
        with repro.connect(LIBRARY) as db:
            assert len(db.query("//book/title")) == 3

    def test_document_instance(self):
        doc = parse(LIBRARY)
        with repro.connect(doc) as db:
            assert db.doc is doc
            assert len(db.query("//book")) == 3

    def test_xml_file_path(self, tmp_path):
        path = tmp_path / "library.xml"
        path.write_text(LIBRARY, encoding="utf-8")
        for source in (path, str(path)):
            with repro.connect(source) as db:
                assert len(db.query("//shelf")) == 2

    def test_binary_file_path(self, tmp_path):
        path = tmp_path / "library.btx"
        Database.from_xml(LIBRARY).save(path)
        with repro.connect(str(path)) as db:
            assert len(db.query("//book[author]")) == 2

    def test_binary_magic_is_sniffed_not_suffixed(self, tmp_path):
        # Extension is irrelevant; only the magic bytes decide.
        path = tmp_path / "library.xml"
        Database.from_xml(LIBRARY).save(path)
        with repro.connect(path) as db:
            assert len(db.query("//book")) == 3

    def test_missing_file_is_a_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="no such file"):
            repro.connect(str(tmp_path / "nope.xml"))

    def test_bad_type_is_a_usage_error(self):
        with pytest.raises(UsageError, match="expected XML text"):
            repro.connect(42)

    def test_slow_query_log_knob(self):
        with repro.connect(LIBRARY, slow_query_ms=10_000.0) as db:
            assert db.slow_log is not None
            db.query("//book/title")
            assert db.slow_log.entries == []


class TestDatabaseLifecycle:
    def test_context_manager_closes(self):
        db = repro.connect(LIBRARY)
        with db:
            pass
        with pytest.raises(UsageError, match="closed"):
            db.serve()

    def test_close_is_idempotent(self):
        db = repro.connect(LIBRARY)
        db.close()
        db.close()
        # Plain queries still work on the in-process engine.
        assert len(db.query("//book")) == 3

    def test_serve_returns_same_instance_while_running(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=2)
            assert db.serve(workers=8) is service

    def test_serve_roundtrip(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=2)
            served = service.query("//book/title")
            assert served.serialize() == db.query("//book/title").serialize()

    def test_in_place_updates_refused_while_serving(self):
        with repro.connect(LIBRARY) as db:
            service = db.serve(workers=1)
            with pytest.raises(UsageError, match="query service"):
                db.updater()
            service.close()
            db.updater()  # allowed again once the service stops


class TestUnifiedKeywords:
    """One spelling everywhere: strategy / params / timeout_ms."""

    SURFACES = [
        (Database, "query"),
        (Database, "explain_analyze"),
        (Engine, "query"),
        (Engine, "explain_analyze"),
    ]

    @pytest.mark.parametrize("owner, method", SURFACES,
                             ids=[f"{o.__name__}.{m}" for o, m in SURFACES])
    def test_query_surfaces_accept_the_unified_kwargs(self, owner, method):
        sig = inspect.signature(getattr(owner, method))
        for name in ("strategy", "params", "timeout_ms"):
            assert name in sig.parameters, f"{owner.__name__}.{method}"

    def test_service_submit_accepts_the_unified_kwargs(self):
        from repro.serve.service import QueryService

        sig = inspect.signature(QueryService.submit)
        for name in ("strategy", "params", "timeout_ms"):
            assert name in sig.parameters

    def test_params_flow_through_database(self):
        with repro.connect(LIBRARY) as db:
            result = db.query("//book[author = $who]/title",
                              params={"who": "Gray"})
            assert result.string_values() == ["Transaction"]

    def test_prepared_execute_params(self):
        with repro.connect(LIBRARY) as db:
            prepared = db.prepare("//book[author = $who]/title")
            assert len(prepared.execute(params={"who": "Codd"})) == 1

    def test_bindings_spelling_is_deprecated_but_works(self):
        with repro.connect(LIBRARY) as db:
            prepared = db.prepare("//book[author = $who]/title")
            with pytest.warns(DeprecationWarning, match="params"):
                result = prepared.execute(bindings={"who": "Gray"})
            assert len(result) == 1

    def test_both_spellings_together_is_an_error(self):
        with repro.connect(LIBRARY) as db:
            prepared = db.prepare("//book[author = $who]/title")
            with pytest.raises(BindingError, match="not both"):
                prepared.execute(params={"who": "Gray"},
                                 bindings={"who": "Codd"})
