"""Tests for the PathStack chain join, including hypothesis equivalence."""

import pytest

from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.pattern import build_from_path
from repro.physical.pathstack import PathStackOperator, chain_supported
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import evaluate_xpath, parse_xpath

from tests.test_property_based import COMMON_SETTINGS, TAGS, xml_documents


def pathstack_nodes(doc, query):
    tree = build_from_path(parse_xpath(query))
    operator = PathStackOperator(tree, doc)
    return [n.nid for n in operator.matching_nodes(tree.var_vertex["#result"])]


class TestSupport:
    def test_descendant_chains_supported(self):
        assert chain_supported(build_from_path(parse_xpath("//a//b//c")))
        assert chain_supported(build_from_path(parse_xpath("//a")))

    def test_branching_unsupported(self):
        assert not chain_supported(build_from_path(parse_xpath("//a[//b]//c")))

    def test_child_steps_unsupported(self):
        assert not chain_supported(build_from_path(parse_xpath("//a/b//c")))

    def test_operator_rejects_non_chain(self, small_bib):
        tree = build_from_path(parse_xpath("//book[author]//last"))
        with pytest.raises(ExecutionError):
            PathStackOperator(tree, small_bib)


class TestAgainstOracle:
    CASES = [
        ("<r><a><b><c/></b></a></r>", "//a//b//c"),
        ("<r><a><a><b/></a><b/></a></r>", "//a//b"),
        ("<r><a><a><a><b/></a></a></a></r>", "//a//a//b"),
        ("<r><b/><a><b/></a><b/></r>", "//a//b"),
    ]

    @pytest.mark.parametrize("xml,query", CASES)
    def test_handcrafted(self, xml, query):
        doc = parse(xml)
        assert pathstack_nodes(doc, query) == \
            [n.nid for n in evaluate_xpath(doc, query)]

    def test_output_at_interior_level(self, recursive_doc):
        # Extract the MIDDLE of the chain: sections that contain a
        # title somewhere below AND sit under doc.
        query = "//doc//section//title"
        tree = build_from_path(parse_xpath(query))
        section_vertex = tree.var_vertex["#result"].parent_edge.parent
        operator = PathStackOperator(tree, recursive_doc)
        got = {n.attrs.get("id") for n in operator.matching_nodes(section_vertex)}
        assert got == {"1", "1.1", "1.1.1", "2"}

    def test_with_value_predicate(self, small_bib):
        query = '//book//last[. = "Knuth"]'
        # small_bib has no Knuth: empty everywhere.
        assert pathstack_nodes(small_bib, query) == \
            [n.nid for n in evaluate_xpath(small_bib, query)] == []

    @COMMON_SETTINGS
    @given(doc=xml_documents(),
           tags=st.lists(st.sampled_from(TAGS), min_size=1, max_size=3))
    def test_random_chains_match_oracle(self, doc, tags):
        query = "//" + "//".join(tags)
        assert pathstack_nodes(doc, query) == \
            [n.nid for n in evaluate_xpath(doc, query)]


class TestCounters:
    def test_io_is_stream_sum(self, small_bib):
        tree = build_from_path(parse_xpath("//book//last"))
        counters = ScanCounters()
        operator = PathStackOperator(tree, small_bib, counters=counters)
        operator.matching_nodes(tree.var_vertex["#result"])
        assert counters.nodes_scanned == 6  # 3 books + 3 lasts

    def test_memory_tracks_stacks(self, recursive_doc):
        tree = build_from_path(parse_xpath("//section//section"))
        counters = ScanCounters()
        operator = PathStackOperator(tree, recursive_doc, counters=counters)
        operator.matching_nodes(tree.var_vertex["#result"])
        assert counters.peak_buffered >= 2
