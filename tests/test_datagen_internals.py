"""Unit tests for the generator machinery itself."""

import random

import pytest

from repro.datagen.core import GenContext, WeightedTags, sentence, word


class TestWeightedTags:
    def test_respects_weights_roughly(self):
        chooser = WeightedTags([("common", 9.0), ("rare", 1.0)])
        rng = random.Random(42)
        draws = [chooser.choose(rng) for _ in range(2000)]
        share = draws.count("common") / len(draws)
        assert 0.85 < share < 0.95

    def test_single_option(self):
        chooser = WeightedTags([("only", 1.0)])
        rng = random.Random(0)
        assert all(chooser.choose(rng) == "only" for _ in range(10))

    def test_deterministic_given_seed(self):
        chooser = WeightedTags([("a", 1.0), ("b", 1.0), ("c", 2.0)])
        first = [chooser.choose(random.Random(7)) for _ in range(1)]
        second = [chooser.choose(random.Random(7)) for _ in range(1)]
        assert first == second


class TestGenContext:
    def test_budget_tracking(self):
        ctx = GenContext(seed=1, target_elements=3)
        assert not ctx.exhausted()
        ctx.start("r")
        ctx.leaf("x")
        ctx.leaf("y", "text")
        assert ctx.exhausted()
        ctx.end()
        doc = ctx.finish()
        assert doc.root.tag == "r"
        assert len(list(doc.elements())) == 3

    def test_leaf_with_attrs_and_text(self):
        ctx = GenContext(seed=1, target_elements=10)
        ctx.start("r")
        ctx.leaf("item", "hello", {"k": "v"})
        ctx.end()
        doc = ctx.finish()
        item = doc.elements_by_tag("item")[0]
        assert item.attrs == {"k": "v"}
        assert item.string_value() == "hello"

    def test_unbalanced_rejected(self):
        ctx = GenContext(seed=1, target_elements=5)
        ctx.start("r")
        ctx.start("x")
        with pytest.raises(ValueError):
            ctx.finish()


class TestTextHelpers:
    def test_word_from_alphabet(self):
        rng = random.Random(3)
        assert word(rng).isalpha()

    def test_sentence_word_count(self):
        rng = random.Random(3)
        assert len(sentence(rng, 5).split()) == 5
