"""File-level tests: the datagen CLI and parse_file round trips."""


from repro.datagen import DATASETS
from repro.datagen import __main__ as datagen_cli
from repro.xmlkit import parse_file, serialize


class TestDatagenCLI:
    def test_writes_requested_datasets(self, tmp_path, capsys):
        code = datagen_cli.main(["--out", str(tmp_path), "--scale", "0.02",
                                 "--datasets", "d2,d5"])
        assert code == 0
        assert (tmp_path / "d2.xml").exists()
        assert (tmp_path / "d5.xml").exists()
        assert not (tmp_path / "d1.xml").exists()
        manifest = (tmp_path / "MANIFEST.txt").read_text()
        assert "d2:" in manifest and "non-recursive" in manifest

    def test_unknown_dataset(self, tmp_path):
        assert datagen_cli.main(["--out", str(tmp_path),
                                 "--datasets", "nope"]) == 2

    def test_seed_override_changes_content(self, tmp_path):
        datagen_cli.main(["--out", str(tmp_path / "a"), "--scale", "0.02",
                          "--datasets", "d5", "--seed", "1"])
        datagen_cli.main(["--out", str(tmp_path / "b"), "--scale", "0.02",
                          "--datasets", "d5", "--seed", "2"])
        first = (tmp_path / "a" / "d5.xml").read_text()
        second = (tmp_path / "b" / "d5.xml").read_text()
        assert first != second

    def test_files_parse_back_identically(self, tmp_path):
        datagen_cli.main(["--out", str(tmp_path), "--scale", "0.02",
                          "--datasets", "d3"])
        doc = parse_file(tmp_path / "d3.xml")
        direct = DATASETS["d3"].generate(scale=0.02)
        assert serialize(doc.root) == serialize(direct.root)

    def test_parse_file_runs_queries(self, tmp_path):
        from repro.engine import Engine
        datagen_cli.main(["--out", str(tmp_path), "--scale", "0.02",
                          "--datasets", "d2"])
        engine = Engine(parse_file(tmp_path / "d2.xml"))
        result = engine.query("//address[//zip_code]")
        assert len(result) > 0
